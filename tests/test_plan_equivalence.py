"""Cross-plan equivalence: every access path and optimization mode must
return identical results for the same query.

These tests guard the engine's core soundness property — the one the §5.1
equivalence rules and the summary-index side conditions exist to protect:
NoIndex scans, Summary-BTree probes, Baseline-index probes (with either
propagation mode), and rule-rewritten plans are interchangeable.
"""

import pytest

from repro.bench.queries import (
    equality_constant,
    range_bounds,
    sp_equality_query,
    two_predicate_query,
)
from repro.workload.generator import WorkloadConfig, build_database

MODES = {
    "noindex": ("none", False),
    "summary_btree": ("summary_btree", False),
    "baseline": ("baseline", False),
    "baseline_normalized": ("baseline", True),
}


def run_in_mode(db, query, mode):
    scheme, normalized = MODES[mode]
    db.options.index_scheme = scheme
    db.options.normalized_propagation = normalized
    db.options.force_access = "index" if scheme != "none" else None
    try:
        result = db.sql(query)
        return sorted(
            tuple(str(v) for v in t.values) for t in result.tuples
        )
    finally:
        db.options.index_scheme = "summary_btree"
        db.options.normalized_propagation = False
        db.options.force_access = None


@pytest.fixture(scope="module")
def db():
    database = build_database(WorkloadConfig(
        num_birds=40, annotations_per_tuple=30, indexes="both",
        cell_fraction=0.0, seed=3,
    ))
    database.create_normalized_replicas("birds")
    return database


@pytest.fixture(scope="module")
def db_cells():
    """Same workload but with cell-level annotations: the planner must
    reject summary-index paths (elimination-active side condition) and all
    plans must still agree."""
    return build_database(WorkloadConfig(
        num_birds=30, annotations_per_tuple=20, indexes="both",
        cell_fraction=0.4, seed=5,
    ))


class TestAccessPathEquivalence:
    @pytest.mark.parametrize("mode", list(MODES))
    def test_equality_query_all_paths_agree(self, db, mode):
        constant = equality_constant(db, "Disease", 0.05)
        query = sp_equality_query("Disease", constant)
        assert run_in_mode(db, query, mode) == run_in_mode(
            db, query, "noindex"
        )

    @pytest.mark.parametrize("mode", list(MODES))
    def test_two_predicate_query_all_paths_agree(self, db, mode):
        lo, hi = range_bounds(db, "Anatomy", 0.2)
        query = two_predicate_query(lo, hi, "experiment")
        baseline = run_in_mode(db, query, "noindex")
        assert baseline  # the keyword appears in the Other vocabulary
        assert run_in_mode(db, query, mode) == baseline

    @pytest.mark.parametrize("mode", list(MODES))
    def test_range_query_all_paths_agree(self, db, mode):
        lo, hi = range_bounds(db, "Behavior", 0.3)
        query = (
            "Select common_name From birds r Where "
            "r.$.getSummaryObject('ClassBird1').getLabelValue('Behavior')"
            f" in [{lo}, {hi}]"
        )
        assert run_in_mode(db, query, mode) == run_in_mode(
            db, query, "noindex"
        )

    def test_summary_propagation_identical(self, db):
        """Normalized propagation must reproduce the de-normalized summary
        objects representative-for-representative."""
        constant = equality_constant(db, "Disease", 0.05)
        query = sp_equality_query("Disease", constant)
        db.options.force_access = "index"
        try:
            db.options.index_scheme = "summary_btree"
            denorm = db.sql(query)
            db.options.index_scheme = "baseline"
            db.options.normalized_propagation = True
            norm = db.sql(query)
        finally:
            db.options.index_scheme = "summary_btree"
            db.options.normalized_propagation = False
            db.options.force_access = None
        assert len(denorm) == len(norm)
        for i in range(len(denorm)):
            a, b = denorm.summaries(i), norm.summaries(i)
            assert a.keys() == b.keys()
            assert a["ClassBird1"] == b["ClassBird1"]
            assert sorted(a["TextSummary1"]) == sorted(b["TextSummary1"])


class TestCellAnnotationSideCondition:
    def test_has_cell_annotations_tracked(self, db, db_cells):
        assert not db.manager.has_cell_annotations("birds")
        assert db_cells.manager.has_cell_annotations("birds")

    def test_index_rejected_when_elimination_active(self, db_cells):
        constant = equality_constant(db_cells, "Disease", 0.1)
        report = db_cells.explain(sp_equality_query("Disease", constant))
        assert "SummaryIndexScan" not in report.physical
        assert "SeqScan" in report.physical

    def test_index_allowed_for_star_projection(self, db_cells):
        constant = equality_constant(db_cells, "Disease", 0.1)
        query = (
            "Select * From birds r Where "
            "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease')"
            f" = {constant}"
        )
        db_cells.options.force_access = "index"
        try:
            report = db_cells.explain(query)
        finally:
            db_cells.options.force_access = None
        assert "SummaryIndexScan" in report.physical

    def test_all_paths_agree_with_cell_annotations(self, db_cells):
        constant = equality_constant(db_cells, "Disease", 0.1)
        query = sp_equality_query("Disease", constant)
        results = {
            mode: run_in_mode(db_cells, query, mode)
            for mode in ("noindex", "summary_btree", "baseline")
        }
        assert results["noindex"] == results["summary_btree"]
        assert results["noindex"] == results["baseline"]


class TestRuleModesEquivalence:
    QUERY_TEMPLATE = (
        "Select r.common_name, s.synonym From birds r, synonyms s "
        "Where r.oid = s.bird_id And "
        "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > {c} "
        "Order By "
        "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') Desc"
    )

    def test_rules_on_off_same_rows(self, db):
        lo, hi = range_bounds(db, "Disease", 0.8)
        query = self.QUERY_TEMPLATE.format(c=hi)
        db.options.enable_rules = True
        on = db.sql(query)
        db.options.enable_rules = False
        off = db.sql(query)
        db.options.enable_rules = True
        assert len(on) == len(off)
        key = (
            "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease')"
        )
        # Same multiset of rows and same (descending) key sequence.
        assert sorted(map(str, on.tuples)) == sorted(map(str, off.tuples))

    def test_forced_join_modes_same_rows(self, db):
        lo, hi = range_bounds(db, "Disease", 0.8)
        query = self.QUERY_TEMPLATE.format(c=hi)
        outs = []
        for force in (None, "nloop", "index"):
            db.options.force_join = force
            outs.append(sorted(map(str, db.sql(query).tuples)))
        db.options.force_join = None
        assert outs[0] == outs[1] == outs[2]

    def test_forced_sort_modes_same_order(self, db):
        lo, hi = range_bounds(db, "Disease", 0.5)
        query = self.QUERY_TEMPLATE.format(c=hi)
        orders = []
        for force in ("mem", "disk"):
            db.options.force_sort = force
            result = db.sql(query)
            orders.append([t.get("r.common_name") for t in result.tuples])
        db.options.force_sort = None
        # Key sequence must match; ties may permute, so compare key values.
        assert len(orders[0]) == len(orders[1])
