"""Page-based B-Tree index.

The tree stores ``(key, value)`` byte-string entries ordered by the composite
``(key, value)`` pair, so duplicate keys are supported while deletes remain
deterministic. Nodes occupy one disk page each and travel through the buffer
pool, so index traversals are charged page I/Os like any other access path.
"""

from repro.btree.tree import BTree

__all__ = ["BTree"]
