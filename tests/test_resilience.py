"""Tests for the resilience layer (repro.resilience + its integrations).

Covers, matching DESIGN.md §5e:

* retry policy determinism and bounded backoff,
* DiskGuard retry/metrics semantics over an injecting disk,
* circuit-breaker state machine (closed/open/half-open) under a fake
  clock, including the device-vs-media error distinction,
* statement deadlines and cooperative cancellation checkpointed through
  every physical operator type,
* degraded-mode planning: health-registry quarantine, heap-scan fallback
  equivalence (against both the healthy index run and the pure-heap
  ``index_scheme="none"`` oracle), mid-query index corruption
  quarantining + one transparent statement retry, the integrity-audit
  feed, and repair's restore-all,
* the Database.execute surface (timeout, cancel_running, env default)
  and image round-trips keeping the guard attached, and
* the REPL step surviving timeouts/cancellations/crashes.
"""

from __future__ import annotations

import pickle

import pytest

from repro.cli import repl_step
from repro.errors import (
    CircuitOpenError,
    CorruptPageError,
    InjectedFaultError,
    QueryCancelledError,
    QueryTimeoutError,
    StorageError,
    TransientIOError,
)
from repro.faults import FaultPlan, FaultyDiskManager, installed_faults
from repro.obs.metrics import MetricsRegistry
from repro.query.parser import parse_sql
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    AccessPathHealth,
    CircuitBreaker,
    DiskGuard,
    ExecutionContext,
    RetryPolicy,
)
from repro.workload.generator import WorkloadConfig, build_database

SP_QUERY = (
    "Select common_name From birds r Where "
    "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 0"
)


@pytest.fixture(scope="module")
def db():
    database = build_database(WorkloadConfig(
        num_birds=30, annotations_per_tuple=20, indexes="both",
        cell_fraction=0.0, seed=6,
    ))
    database.guard.policy.base_delay = 0  # no real sleeps in tests
    return database


@pytest.fixture(autouse=True)
def _healthy(db):
    """Every test starts and ends with a fully healthy database."""
    db.health.restore_all()
    db.guard.breaker.reset()
    yield
    db.health.restore_all()
    db.guard.breaker.reset()
    db.options.force_access = None
    db.options.index_scheme = "summary_btree"


def names(result):
    return sorted(t.get("common_name") for t in result.tuples)


def run(db, sql):
    return names(db.sql(sql))


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# -- retry policy -------------------------------------------------------------


class TestRetryPolicy:
    def test_deterministic_from_seed(self):
        a = RetryPolicy(max_attempts=5, base_delay=0.01, jitter=0.005, seed=7)
        b = RetryPolicy(max_attempts=5, base_delay=0.01, jitter=0.005, seed=7)
        assert a.delays() == b.delays()

    def test_different_seeds_differ(self):
        a = RetryPolicy(max_attempts=5, base_delay=0.01, jitter=0.005, seed=1)
        b = RetryPolicy(max_attempts=5, base_delay=0.01, jitter=0.005, seed=2)
        assert a.delays() != b.delays()

    def test_exponential_and_bounded(self):
        policy = RetryPolicy(max_attempts=8, base_delay=0.001, jitter=0.0,
                             max_delay=0.01)
        delays = policy.delays()
        assert delays[0] == pytest.approx(0.001)
        assert delays[1] == pytest.approx(0.002)
        assert delays[2] == pytest.approx(0.004)
        assert all(d <= 0.01 for d in delays)
        assert delays[-1] == pytest.approx(0.01)  # clamped at max_delay

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


# -- disk guard ---------------------------------------------------------------


def make_faulty_disk(plan: FaultPlan, pages: int = 2) -> FaultyDiskManager:
    disk = FaultyDiskManager(page_size=256)
    for i in range(pages):
        disk.write_page(disk.allocate_page(), bytes([i + 1]) * 256)
    disk.plan = plan
    disk.read_ops = disk.write_ops = 0
    return disk


class TestDiskGuard:
    def guard(self, metrics=None, attempts=3):
        return DiskGuard(
            policy=RetryPolicy(max_attempts=attempts, base_delay=0),
            breaker=CircuitBreaker(metrics=metrics),
            metrics=metrics,
        )

    def test_recovers_within_budget(self):
        disk = make_faulty_disk(FaultPlan().transient_read(at=0))
        metrics = MetricsRegistry()
        guard = self.guard(metrics)
        data = guard.read_page(disk, 0)
        assert data == bytearray([1]) * 256
        assert metrics.get("resilience.retries") == 1
        assert metrics.get("resilience.retries.read") == 1
        assert metrics.get("resilience.recovered") == 1
        assert metrics.get("resilience.failures") == 0

    def test_exhausted_budget_raises_typed(self):
        # period=1: every read faults, so all three attempts fail.
        disk = make_faulty_disk(FaultPlan().transient_read(at=0, period=1))
        metrics = MetricsRegistry()
        guard = self.guard(metrics)
        with pytest.raises(TransientIOError):
            guard.read_page(disk, 0)
        assert metrics.get("resilience.retries") == 2  # attempts - 1
        assert metrics.get("resilience.failures") == 1
        assert metrics.get("resilience.recovered") == 0

    def test_success_counts_nothing(self):
        disk = make_faulty_disk(FaultPlan())
        metrics = MetricsRegistry()
        guard = self.guard(metrics)
        guard.read_page(disk, 0)
        assert metrics.get("resilience.retries") == 0
        assert metrics.get("resilience.recovered") == 0

    def test_permanent_error_not_retried(self):
        disk = make_faulty_disk(FaultPlan().fail_read(at=0))
        metrics = MetricsRegistry()
        guard = self.guard(metrics)
        with pytest.raises(InjectedFaultError):
            guard.read_page(disk, 0)
        assert metrics.get("resilience.retries") == 0
        assert metrics.get("resilience.failures") == 1

    def test_write_retries_counted_per_op(self):
        disk = make_faulty_disk(FaultPlan().transient_write(at=0))
        metrics = MetricsRegistry()
        guard = self.guard(metrics)
        guard.write_page(disk, 0, bytes([7]) * 256)
        assert metrics.get("resilience.retries.write") == 1
        assert disk.read_page(0) == bytearray([7]) * 256

    def test_also_transient_opt_in(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise CorruptPageError("transient rot")
            return "clean"

        guard = self.guard()
        # Without the opt-in, corruption is a permanent (media) error.
        with pytest.raises(CorruptPageError):
            guard.call("read", flaky)
        calls["n"] = 0
        assert guard.call(
            "read", flaky, also_transient=(CorruptPageError,)
        ) == "clean"


# -- circuit breaker ----------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = FakeClock()
        metrics = MetricsRegistry()
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=5.0,
                                 clock=clock, metrics=metrics)
        for _ in range(3):
            breaker.before_call()
            breaker.record_failure(TransientIOError("x"))
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            breaker.before_call()
        assert metrics.get("resilience.breaker.open") == 1
        assert metrics.get("resilience.breaker.rejected") == 1

    def test_half_open_trial_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0,
                                 clock=clock)
        breaker.record_failure(TransientIOError("x"))
        assert breaker.state == OPEN
        clock.advance(5.0)
        breaker.before_call()  # admitted as the trial call
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.failures == 0

    def test_half_open_trial_reopens_on_failure(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=5.0,
                                 clock=clock)
        breaker.record_failure(TransientIOError("x"))
        breaker.record_failure(TransientIOError("x"))
        clock.advance(5.0)
        breaker.before_call()
        assert breaker.state == HALF_OPEN
        # One failure in half-open re-opens regardless of the threshold.
        breaker.record_failure(TransientIOError("x"))
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure(TransientIOError("x"))
        breaker.record_success()
        breaker.record_failure(TransientIOError("x"))
        assert breaker.state == CLOSED  # never two *consecutive* failures

    def test_media_errors_do_not_trip_it(self):
        breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock())
        for _ in range(10):
            breaker.record_failure(CorruptPageError("rotten page"))
        assert breaker.state == CLOSED

    def test_state_codes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0,
                                 clock=clock)
        assert breaker.state_code == 0
        breaker.record_failure(TransientIOError("x"))
        assert breaker.state_code == 2
        clock.advance(5.0)
        breaker.before_call()
        assert breaker.state_code == 1

    def test_circuit_open_error_is_storage_error(self):
        assert issubclass(CircuitOpenError, StorageError)

    def test_guard_fast_fails_through_open_breaker(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=10.0,
                                 clock=clock)
        guard = DiskGuard(policy=RetryPolicy(max_attempts=1, base_delay=0),
                          breaker=breaker)
        disk = make_faulty_disk(FaultPlan().fail_read(at=0))
        with pytest.raises(InjectedFaultError):
            guard.read_page(disk, 0)
        calls = {"n": 0}

        def count():
            calls["n"] += 1

        with pytest.raises(CircuitOpenError):
            guard.call("read", count)
        assert calls["n"] == 0  # rejected before touching the device


# -- access-path health -------------------------------------------------------


class TestAccessPathHealth:
    def test_quarantine_restore_cycle(self):
        metrics = MetricsRegistry()
        health = AccessPathHealth(metrics=metrics)
        assert health.is_healthy("summary", "Birds", "C")
        assert health.quarantine("summary", "Birds", "C", reason="rot")
        assert not health.is_healthy("summary", "birds", "C")  # case-folded
        assert health.reason("summary", "birds", "C") == "rot"
        assert not health.quarantine("summary", "birds", "C")  # not fresh
        assert health.unhealthy() == [("summary", "birds", "C")]
        assert health.restore("summary", "birds", "C")
        assert health.is_healthy("summary", "birds", "C")
        assert metrics.get("resilience.quarantined") == 1
        assert metrics.get("resilience.restored") == 1

    def test_restore_all(self):
        health = AccessPathHealth()
        health.quarantine("summary", "t", "a")
        health.quarantine("keyword", "t", "b")
        assert len(health) == 2 and bool(health)
        assert health.restore_all() == 2
        assert not health

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            AccessPathHealth().quarantine("btree", "t", "i")


# -- deadlines and cancellation through every operator ------------------------

#: queries whose plans cover every physical operator family: scans
#: (sequential, summary-index), residual filters, sort, group/aggregate,
#: distinct, limit, projection, and both join shapes.
OPERATOR_QUERIES = [
    "Select common_name From birds r",
    "Select common_name From birds r Where r.aou_id > 10005",
    SP_QUERY,
    ("Select common_name From birds r Where "
     "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 3"),
    ("Select common_name From birds r Order By "
     "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease')"),
    "Select family, count(*) From birds Group By family",
    "Select Distinct family From birds",
    "Select common_name From birds Limit 5",
    ("Select r.common_name, s.synonym From birds r, synonyms s "
     "Where r.oid = s.bird_id"),
    ("Select r.common_name From birds r, synonyms s "
     "Where r.oid = s.bird_id And "
     "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 0"),
]


class TestDeadlinesAndCancellation:
    @pytest.mark.parametrize("sql", OPERATOR_QUERIES)
    def test_zero_timeout_trips_first_checkpoint(self, db, sql):
        with pytest.raises(QueryTimeoutError) as err:
            db.execute(sql, timeout=0)
        assert err.value.partial["checks"] >= 1

    @pytest.mark.parametrize("sql", OPERATOR_QUERIES)
    def test_pre_cancelled_context_stops_every_plan(self, db, sql):
        physical, _logical, _cost = db.planner.plan(parse_sql(sql))
        ctx = ExecutionContext()
        ctx.attach(physical)
        ctx.cancel()
        with pytest.raises(QueryCancelledError):
            list(physical.rows())

    def test_deadline_fires_mid_stream(self, db):
        clock = FakeClock()
        physical, _logical, _cost = db.planner.plan(parse_sql(SP_QUERY))
        ctx = ExecutionContext(timeout=10.0, clock=clock)
        ctx.attach(physical)
        rows = physical.rows()
        first = next(rows)
        assert first is not None
        clock.advance(11.0)
        with pytest.raises(QueryTimeoutError) as err:
            list(rows)
        assert err.value.partial["rows"] >= 1
        assert "timed out" in str(err.value)

    def test_cancel_mid_stream(self, db):
        physical, _logical, _cost = db.planner.plan(parse_sql(SP_QUERY))
        ctx = ExecutionContext()
        ctx.attach(physical)
        rows = physical.rows()
        next(rows)
        ctx.cancel()
        with pytest.raises(QueryCancelledError):
            list(rows)

    def test_timeout_metrics_counted(self, db):
        before = db.metrics.get("resilience.timeouts")
        with pytest.raises(QueryTimeoutError):
            db.execute(SP_QUERY, timeout=0)
        assert db.metrics.get("resilience.timeouts") == before + 1

    def test_generous_timeout_equals_plain_run(self, db):
        assert names(db.execute(SP_QUERY, timeout=3600)) == run(db, SP_QUERY)

    def test_statement_timeout_default(self, db):
        db.statement_timeout = 0
        try:
            with pytest.raises(QueryTimeoutError):
                db.execute(SP_QUERY)
        finally:
            db.statement_timeout = None
        assert len(db.execute(SP_QUERY)) > 0

    def test_cancel_running_without_statement(self, db):
        assert db.cancel_running() is False

    def test_env_timeout_seeds_new_databases(self, monkeypatch):
        from repro.core.database import Database

        monkeypatch.setenv("REPRO_STATEMENT_TIMEOUT", "2.5")
        assert Database().statement_timeout == 2.5
        monkeypatch.delenv("REPRO_STATEMENT_TIMEOUT")
        assert Database().statement_timeout is None


# -- degraded-mode planning ---------------------------------------------------


def heap_oracle(db, sql):
    """Reference result through the pure heap path (no index schemes)."""
    saved = db.options.index_scheme
    db.options.index_scheme = "none"
    try:
        return run(db, sql)
    finally:
        db.options.index_scheme = saved


class TestDegradedPlanning:
    def test_quarantined_summary_path_falls_back_to_heap(self, db):
        db.options.force_access = "index"
        report = db.explain(SP_QUERY)
        assert "SummaryIndexScan" in report.physical
        healthy = run(db, SP_QUERY)
        db.health.quarantine("summary", "birds", "ClassBird1")
        degraded_report = db.explain(SP_QUERY)
        assert "SummaryIndexScan" not in degraded_report.physical
        assert "SeqScan" in degraded_report.physical
        assert ("summary", "birds", "ClassBird1") in degraded_report.degraded
        assert "Degraded:" in str(degraded_report)
        before = db.metrics.get("resilience.degraded_plans")
        degraded = run(db, SP_QUERY)
        assert degraded == healthy
        assert degraded == heap_oracle(db, SP_QUERY)
        assert db.metrics.get("resilience.degraded_plans") == before + 1

    def test_fallback_equivalence_across_predicates(self, db):
        db.options.force_access = "index"
        cases = [("Disease", "=", 3), ("Anatomy", ">=", 2), ("Other", "<", 5)]
        for label, op, constant in cases:
            sql = (
                "Select common_name From birds r Where "
                f"r.$.getSummaryObject('ClassBird1').getLabelValue"
                f"('{label}') {op} {constant}"
            )
            healthy = run(db, sql)
            db.health.quarantine("summary", "birds", "ClassBird1")
            try:
                assert run(db, sql) == healthy
                assert healthy == heap_oracle(db, sql)
            finally:
                db.health.restore_all()

    def test_quarantined_baseline_path_excluded(self, db):
        db.options.index_scheme = "baseline"
        db.options.force_access = "index"
        assert "BaselineIndexScan" in db.explain(SP_QUERY).physical
        healthy = run(db, SP_QUERY)
        db.health.quarantine("baseline", "birds", "ClassBird1")
        report = db.explain(SP_QUERY)
        assert "BaselineIndexScan" not in report.physical
        assert run(db, SP_QUERY) == healthy

    def test_mid_query_corruption_retries_once_on_fallback(self, db):
        db.options.force_access = "index"
        reference = run(db, SP_QUERY)
        index = db.summary_indexes[("birds", "ClassBird1")]
        original = index.lookup_range

        def rot(*args, **kwargs):
            raise CorruptPageError("synthetic index rot")

        index.lookup_range = rot
        before = db.metrics.get("resilience.statement_retries")
        try:
            got = run(db, SP_QUERY)
        finally:
            index.lookup_range = original
        assert got == reference
        assert db.metrics.get("resilience.statement_retries") == before + 1
        assert not db.health.is_healthy("summary", "birds", "ClassBird1")

    def test_degraded_plan_avoids_rotten_index(self, db):
        db.options.force_access = "index"
        index = db.summary_indexes[("birds", "ClassBird1")]
        original = index.lookup_range
        index.lookup_range = lambda *a, **k: (_ for _ in ()).throw(
            CorruptPageError("rot")
        )
        db.health.quarantine("summary", "birds", "ClassBird1")
        try:
            # Already degraded: the fallback plan has no summary-index
            # path, so the statement succeeds without touching the index.
            assert len(db.sql(SP_QUERY)) > 0
        finally:
            index.lookup_range = original

    def test_integrity_audit_feeds_health(self, db):
        db.options.force_access = "index"
        index = db.summary_indexes[("birds", "ClassBird1")]
        first_oid = next(iter(db.catalog.table("birds").scan()))[0]
        # Plant a stale entry the cross-structure audit must flag.
        index.tree.insert(b"bogus:0042", index._pointer_for(first_oid))
        report = db.check_integrity()
        assert not report.ok
        assert ("summary", "birds", "ClassBird1") in report.unhealthy_paths()
        assert not db.health.is_healthy("summary", "birds", "ClassBird1")
        # The planner degrades immediately.
        assert "SummaryIndexScan" not in db.explain(SP_QUERY).physical
        repair = db.repair()
        assert repair.converged
        # A converged repair restores every quarantined path.
        assert db.health.is_healthy("summary", "birds", "ClassBird1")
        assert "SummaryIndexScan" in db.explain(SP_QUERY).physical

    def test_unhealthy_paths_parses_violation_locations(self):
        from repro.core.integrity import IntegrityReport, Violation

        report = IntegrityReport(violations=[
            Violation("table birds", "count-mismatch", "x"),
            Violation("summary index birds.C page 3", "checksum", "x"),
            Violation("keyword index birds.K postings", "btree", "x"),
            Violation("replica birds.S norm-table", "mismatch", "x"),
            Violation("baseline index birds.B norm-table page 1", "x", "x"),
        ])
        assert report.unhealthy_paths() == [
            ("baseline", "birds", "B"),
            ("keyword", "birds", "K"),
            ("replica", "birds", "S"),
            ("summary", "birds", "C"),
        ]


# -- persistence and the guard ------------------------------------------------


class TestResilienceSurvivesImages:
    def test_pickled_database_keeps_guard_attached(self, db, tmp_path):
        path = tmp_path / "db.image"
        db.save(path)
        from repro.core.database import Database

        loaded = Database.load(path)
        assert loaded.pool.guard is loaded.guard
        assert loaded.guard.breaker.state == CLOSED
        # And it still retries: inject one transient read fault.
        loaded.guard.policy.base_delay = 0
        with installed_faults(loaded, FaultPlan().transient_read(at=0)):
            loaded.pool.clear()
            assert run(loaded, SP_QUERY) == run(db, SP_QUERY)
        assert loaded.metrics.get("resilience.retries") >= 1

    def test_pre_resilience_state_gets_fresh_guard(self, db):
        state = db.__getstate__()
        state.pop("health")
        state.pop("guard")
        state.pop("statement_timeout")
        clone = object.__new__(type(db))
        clone.__setstate__(pickle.loads(pickle.dumps(state)))
        assert clone.statement_timeout is None
        assert clone.pool.guard is clone.guard
        assert len(clone.health) == 0


# -- REPL surface -------------------------------------------------------------


class TestReplResilience:
    def test_step_renders_timeout(self, db):
        db.statement_timeout = 0
        try:
            out = repl_step(db, SP_QUERY)
        finally:
            db.statement_timeout = None
        assert out.startswith("timeout:")

    def test_step_renders_engine_error(self, db):
        assert repl_step(db, "SELECT FROM nowhere").startswith("error:")

    def test_step_survives_unexpected_crash(self, db, monkeypatch):
        monkeypatch.setattr(
            type(db), "execute",
            lambda self, *a, **k: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        out = repl_step(db, SP_QUERY)
        assert out == "unexpected RuntimeError: boom"

    def test_step_survives_keyboard_interrupt(self, db, monkeypatch):
        monkeypatch.setattr(
            type(db), "execute",
            lambda self, *a, **k: (_ for _ in ()).throw(KeyboardInterrupt()),
        )
        assert repl_step(db, SP_QUERY) == "cancelled"

    def test_step_lets_quit_escape(self, db):
        with pytest.raises(EOFError):
            repl_step(db, "\\quit")

    def test_timeout_command(self, db):
        assert repl_step(db, "\\timeout") == "statement timeout = off"
        assert repl_step(db, "\\timeout 1.5") == "statement timeout = 1.5s"
        assert db.statement_timeout == 1.5
        assert repl_step(db, "\\timeout") == "statement timeout = 1.5s"
        assert repl_step(db, "\\timeout off") == "statement timeout = off"
        assert db.statement_timeout is None
        assert "usage" in repl_step(db, "\\timeout -3")

    def test_cancelled_statement_keeps_session_usable(self, db):
        db.statement_timeout = 0
        try:
            assert repl_step(db, SP_QUERY).startswith("timeout:")
        finally:
            db.statement_timeout = None
        assert len(db.sql(SP_QUERY)) > 0
