"""Black-box summary-set UDFs (§3.2): registration, evaluation in every
clause, bind-time validation, and optimizer interaction."""

import pytest

from repro import Column, Database, ValueType
from repro.errors import BindError


def make_db() -> Database:
    db = Database()
    db.create_table("t", [Column("name", ValueType.TEXT),
                          Column("grp", ValueType.TEXT)])
    db.create_classifier_instance(
        "C", ["Disease", "Other"],
        [("flu outbreak infection", "Disease"), ("survey note", "Other")],
    )
    db.manager.link("t", "C")
    for i in range(4):
        oid = db.insert("t", {"name": f"n{i}", "grp": "g"})
        for _ in range(i):
            db.add_annotation("flu outbreak infection symptoms",
                              table="t", oid=oid)
    return db


def disease_count(sset) -> int:
    obj = sset.get_summary_object("C")
    return obj.get_label_value("Disease") if obj is not None else 0


class TestRegistrationAndEvaluation:
    def test_udf_in_where(self):
        db = make_db()
        db.register_udf("hot", lambda s: disease_count(s) >= 2)
        result = db.sql("Select name From t r Where hot(r.$)")
        assert sorted(t.get("name") for t in result.tuples) == ["n2", "n3"]

    def test_udf_with_extra_literal_argument(self):
        db = make_db()
        db.register_udf("atLeast", lambda s, n: disease_count(s) >= n)
        result = db.sql("Select name From t r Where atLeast(r.$, 3)")
        assert [t.get("name") for t in result.tuples] == ["n3"]

    def test_udf_in_select_list(self):
        db = make_db()
        db.register_udf("dcount", disease_count)
        result = db.sql("Select name, dcount(r.$) d From t r Order By name")
        assert result.column("d") == [0, 1, 2, 3]

    def test_udf_in_order_by(self):
        db = make_db()
        db.register_udf("dcount", disease_count)
        result = db.sql("Select name From t r Order By dcount(r.$) Desc")
        assert result.column("name") == ["n3", "n2", "n1", "n0"]

    def test_udf_combined_with_data_predicate(self):
        db = make_db()
        db.register_udf("hot", lambda s: disease_count(s) >= 1)
        result = db.sql(
            "Select name From t r Where hot(r.$) And name <> 'n1'"
        )
        assert sorted(t.get("name") for t in result.tuples) == ["n2", "n3"]

    def test_udf_plans_as_summary_select(self):
        db = make_db()
        db.register_udf("hot", lambda s: True)
        report = db.explain("Select name From t r Where hot(r.$)")
        assert "SummarySelect" in report.logical

    def test_udf_sees_summary_set_interface(self):
        db = make_db()
        seen = {}

        def probe(sset):
            seen["size"] = sset.get_size()
            return True

        db.register_udf("probe", probe)
        db.sql("Select name From t r Where probe(r.$)")
        assert seen["size"] == 1  # one linked instance


class TestValidation:
    def test_unknown_udf_rejected_at_bind_time(self):
        db = make_db()
        with pytest.raises(BindError):
            db.sql("Select name From t r Where nosuch(r.$)")

    def test_bare_dollar_outside_udf_rejected(self):
        db = make_db()
        with pytest.raises(BindError):
            db.sql("Select name From t r Where r.$ = 2")

    def test_udf_with_unknown_alias_rejected(self):
        db = make_db()
        db.register_udf("hot", lambda s: True)
        with pytest.raises(BindError):
            db.sql("Select name From t r Where hot(zz.$)")

    def test_udf_exception_propagates(self):
        db = make_db()

        def broken(_s):
            raise RuntimeError("boom")

        db.register_udf("broken", broken)
        with pytest.raises(RuntimeError):
            db.sql("Select name From t r Where broken(r.$)")


class TestOptimizerInteraction:
    def test_udf_predicate_never_uses_summary_index(self):
        # Black-box UDFs cannot be matched to index keys — the plan must
        # scan (the paper's "system can reason about ... explicit
        # predicates" distinction, §3.2).
        db = make_db()
        db.create_summary_index("t", "C")
        db.register_udf("hot", lambda s: disease_count(s) >= 2)
        report = db.explain("Select * From t r Where hot(r.$)")
        assert "SummaryIndexScan" not in report.physical

    def test_explicit_predicate_same_rows_as_equivalent_udf(self):
        db = make_db()
        db.register_udf("hot", lambda s: disease_count(s) >= 2)
        via_udf = db.sql("Select name From t r Where hot(r.$)")
        via_expr = db.sql(
            "Select name From t r Where "
            "r.$.getSummaryObject('C').getLabelValue('Disease') >= 2"
        )
        assert sorted(map(str, via_udf.tuples)) == sorted(
            map(str, via_expr.tuples)
        )
