"""Query results.

A :class:`ResultSet` materializes the output tuples together with their
propagated summary objects — what the paper's Figure 1 L.H.S shows the user:
each row plus the Rep[] arrays of its attached summary objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.tuples import QTuple


@dataclass
class ResultSet:
    """Materialized query output."""

    columns: list[str]
    tuples: list[QTuple]
    #: Optional execution metadata filled in by the executor.
    stats: dict = field(default_factory=dict)
    #: Per-row summary freshness ("fresh" | "stale"), parallel to
    #: ``tuples``; only populated by deferred-maintenance databases (None
    #: everywhere else — sync and coherent modes never serve staleness).
    summary_status: list[str] | None = None

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    @property
    def rows(self) -> list[dict[str, object]]:
        """Rows as plain dicts (data values only)."""
        return [dict(zip(t.columns, t.values)) for t in self.tuples]

    def column(self, name: str) -> list[object]:
        """All values of one output column."""
        return [t.get(name) for t in self.tuples]

    def summaries(self, i: int) -> dict[str, list]:
        """Propagated summary display (instance -> Rep[]) of row ``i``."""
        return self.tuples[i].merged_summary_set().to_display()

    def scalar(self) -> object:
        """The single value of a 1x1 result."""
        if len(self.tuples) != 1 or len(self.columns) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.tuples)}x{len(self.columns)}"
            )
        return self.tuples[0].values[0]

    def to_table(self, max_rows: int = 20) -> str:
        """Simple fixed-width text rendering (examples/demos)."""
        shown = self.tuples[:max_rows]
        cells = [[str(v) for v in t.values] for t in shown]
        widths = [
            max([len(c)] + [len(row[i]) for row in cells])
            for i, c in enumerate(self.columns)
        ]
        def fmt(row):
            return " | ".join(v.ljust(w) for v, w in zip(row, widths))
        lines = [fmt(self.columns), "-+-".join("-" * w for w in widths)]
        lines += [fmt(row) for row in cells]
        if len(self.tuples) > max_rows:
            lines.append(f"... ({len(self.tuples)} rows total)")
        return "\n".join(lines)


class ZoomResult(list):
    """Zoom-in output: the raw annotation texts, plus the freshness of the
    summary objects they were selected through.

    A plain ``list`` subclass so every existing caller (and the wire
    protocol, which renders lists) keeps working; deferred-maintenance
    databases attach ``summary_status`` so callers can tell whether the
    selection reflects all raw annotations (``"fresh"``) or the
    last-generated objects (``"stale"``)."""

    def __init__(self, texts=(), summary_status: str = "fresh"):
        super().__init__(texts)
        self.summary_status = summary_status
