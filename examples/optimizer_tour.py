"""A tour of the summary-aware query optimizer (§5).

Walks Example 4 of the paper through the optimizer's ablation knobs:

1. the default rule-rewritten plan (summary selection pushed below the
   join onto the Summary-BTree, sort eliminated by the index order),
2. the same query with the §5.1 transformation rules disabled,
3. forced join/sort algorithm choices (Figure 14's four configurations),

printing EXPLAIN output and measured times for each — a miniature of the
Figure 14 experiment.

Run with::

    python examples/optimizer_tour.py
"""

import time

from repro.bench.queries import example4_query, range_bounds
from repro.workload.generator import WorkloadConfig, build_database

print("Building the Birds + Synonyms workload with a Summary-BTree on")
print("ClassBird1 (synonyms does NOT link ClassBird1 — Rule 2's Case II)...")
db = build_database(WorkloadConfig(
    num_birds=100, annotations_per_tuple=60, cell_fraction=0.0, seed=17,
))

_lo, hi = range_bounds(db, "Disease", 0.9)
query = example4_query(threshold=hi)
print(f"\nQuery (Example 4):\n  {query}\n")


def show(title: str) -> None:
    report = db.explain(query)
    started = time.perf_counter()
    result = db.sql(query)
    elapsed = (time.perf_counter() - started) * 1e3
    print(f"--- {title}")
    print(f"    cost={report.estimated_cost:.1f}  rows={len(result)}  "
          f"time={elapsed:.1f} ms")
    for line in report.physical.splitlines():
        print(f"    {line}")
    print()


show("Optimized (rules on: S pushed below the join — Rule 2)")

db.options.force_access = "index"
show("Index access pinned: the Summary-BTree answers the predicate in "
     "sorted order,\n    so Rule 5 deletes the Sort operator entirely")
db.options.force_access = None

db.options.enable_rules = False
show("Rules disabled (S stays above the join; explicit sort needed)")

db.options.force_join = "nloop"
show("Rules disabled + block nested-loop join forced")

db.options.enable_rules = True
db.options.force_join = "nloop"
db.options.force_sort = "disk"
show("Rules on, but NLoop join + external (disk) sort forced")

db.options.force_join = None
db.options.force_sort = None

print("Statistics the cost model consulted (Figure 6):")
stats = db.statistics.table_stats("birds")
label = stats.instances["ClassBird1"].labels["Disease"]
print(f"  birds: rows={stats.row_count}, heap_pages={stats.heap_pages}")
print(f"  ClassBird1.Disease: min={label.min} max={label.max} "
      f"ndistinct={label.ndistinct}")
print(f"  equi-width histogram buckets: {label.histogram.buckets}")
