"""The index-based implementation of the summary join J (§5.2).

The paper names exactly two implementation choices for J — block
nested-loop and index-based.  These tests pin the index-based variant:
plan selection, result equivalence with the nested-loop J across all
comparison operators, residual predicate handling, and the elimination
side condition.
"""

import pytest

from repro import Column, Database, ValueType

EXPR = "$.getSummaryObject('C').getLabelValue('X')"


def make_db(rows: int = 5, cell_annotations: bool = False) -> Database:
    db = Database()
    for t in ("a", "b"):
        db.create_table(t, [Column("name", ValueType.TEXT),
                            Column("k", ValueType.INT)])
    db.create_classifier_instance(
        "C", ["X", "Y"],
        [("xray xenon xylophone", "X"), ("yellow yak yarn", "Y")],
    )
    db.manager.link("a", "C")
    db.manager.link("b", "C")
    for i in range(rows):
        oa = db.insert("a", {"name": f"a{i}", "k": i})
        ob = db.insert("b", {"name": f"b{i}", "k": i})
        columns = ("k",) if cell_annotations else ()
        for _ in range(i):
            db.add_annotation("xray xenon xylophone note", table="a",
                              oid=oa, columns=columns)
            db.add_annotation("xray xenon xylophone note", table="b",
                              oid=ob, columns=columns)
    db.create_summary_index("b", "C")
    db.analyze("a")
    db.analyze("b")
    return db


def pairs(result):
    return sorted((t.get("r.name"), t.get("s.name")) for t in result.tuples)


def run_both(db, query):
    db.options.force_join = "index"
    via_index = pairs(db.sql(query))
    db.options.force_join = "nloop"
    via_nloop = pairs(db.sql(query))
    db.options.force_join = None
    return via_index, via_nloop


class TestPlanSelection:
    def test_index_variant_available(self):
        db = make_db()
        db.options.force_join = "index"
        report = db.explain(
            f"Select r.name, s.name From a r, b s Where r.{EXPR} = s.{EXPR}"
        )
        db.options.force_join = None
        assert "SummaryIndexNLJoin" in report.physical

    def test_requires_inner_summary_index(self):
        db = make_db()
        # the index is on b; making b the OUTER side leaves no usable index
        db.options.force_join = "index"
        report = db.explain(
            f"Select s.name From b s, a r Where s.{EXPR} = r.{EXPR}"
        )
        db.options.force_join = None
        assert "SummaryIndexNLJoin" not in report.physical

    def test_elimination_side_condition_blocks_index_j(self):
        db = make_db(cell_annotations=True)
        report_star = None
        db.options.force_join = "index"
        # Projecting a column subset with cell-level annotations on the
        # inner table disables the index variant (DESIGN.md §6)...
        narrow = db.explain(
            f"Select r.name From a r, b s Where r.{EXPR} = s.{EXPR}"
        )
        # ...while SELECT * keeps it legal.
        star = db.explain(
            f"Select * From a r, b s Where r.{EXPR} = s.{EXPR}"
        )
        db.options.force_join = None
        assert "SummaryIndexNLJoin" not in narrow.physical
        assert "SummaryIndexNLJoin" in star.physical

    def test_disabled_with_summary_indexes_off(self):
        db = make_db()
        db.options.enable_summary_indexes = False
        db.options.force_join = "index"
        report = db.explain(
            f"Select r.name, s.name From a r, b s Where r.{EXPR} = s.{EXPR}"
        )
        db.options.enable_summary_indexes = True
        db.options.force_join = None
        assert "SummaryIndexNLJoin" not in report.physical


class TestEquivalenceAcrossOperators:
    @pytest.mark.parametrize("op", ["=", "<", "<=", ">", ">="])
    def test_same_pairs_as_nested_loop(self, op):
        db = make_db()
        query = (
            f"Select r.name, s.name From a r, b s "
            f"Where r.{EXPR} {op} s.{EXPR}"
        )
        via_index, via_nloop = run_both(db, query)
        assert via_index == via_nloop
        assert via_index  # non-empty for every operator at this data shape

    def test_with_residual_data_condition(self):
        db = make_db()
        query = (
            f"Select r.name, s.name From a r, b s "
            f"Where r.{EXPR} = s.{EXPR} And r.k = s.k"
        )
        via_index, via_nloop = run_both(db, query)
        assert via_index == via_nloop

    def test_with_residual_summary_conjunct(self):
        db = make_db()
        y = "$.getSummaryObject('C').getLabelValue('Y')"
        query = (
            f"Select r.name, s.name From a r, b s "
            f"Where r.{EXPR} = s.{EXPR} And r.{y} = s.{y}"
        )
        via_index, via_nloop = run_both(db, query)
        assert via_index == via_nloop

    def test_merged_summaries_identical(self):
        db = make_db()
        query = (
            f"Select r.name, s.name From a r, b s Where r.{EXPR} = s.{EXPR}"
        )
        db.options.force_join = "index"
        a = db.sql(query)
        db.options.force_join = "nloop"
        b = db.sql(query)
        db.options.force_join = None
        by_key_a = {
            (t.get("r.name"), t.get("s.name")): a.summaries(i)
            for i, t in enumerate(a.tuples)
        }
        by_key_b = {
            (t.get("r.name"), t.get("s.name")): b.summaries(i)
            for i, t in enumerate(b.tuples)
        }
        assert by_key_a == by_key_b


class TestMaintenanceInteraction:
    def test_join_sees_incremental_updates(self):
        db = make_db(rows=3)
        query = (
            f"Select r.name, s.name From a r, b s Where r.{EXPR} = s.{EXPR}"
        )
        db.options.force_join = "index"
        before = pairs(db.sql(query))
        # bump b2's X count from 2 to 3 -> now matches a3 wait... a? rows=3
        ob = 3  # b2's oid (OIDs start at 1)
        db.add_annotation("xray xenon xylophone extra", table="b", oid=ob)
        after = pairs(db.sql(query))
        db.options.force_join = None
        assert before != after
        assert ("a2", "b2") in before and ("a2", "b2") not in after
