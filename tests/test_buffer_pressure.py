"""Engine correctness under buffer-pool pressure: a pool far smaller than
the working set forces evictions and re-reads mid-query; results must not
change, and I/O counters must show the thrashing."""

import pytest

from repro import Column, Database, ValueType
from repro.optimizer.planner import PlannerOptions

SEEDS = [
    ("flu virus infection outbreak", "Disease"),
    ("survey checklist volunteer", "Other"),
]
DISEASE = "$.getSummaryObject('C').getLabelValue('Disease')"


def build(buffer_pages: int) -> Database:
    db = Database(buffer_pages=buffer_pages)
    db.create_table("t", [
        Column("name", ValueType.TEXT), Column("blob", ValueType.TEXT),
    ])
    db.create_classifier_instance("C", ["Disease", "Other"], SEEDS)
    db.sql("Alter Table t Add Indexable C")
    for i in range(40):
        # pad rows so the working set spans many pages
        oid = db.insert("t", {"name": f"n{i:02d}", "blob": "x" * 500})
        for _ in range(i % 5):
            db.add_annotation(
                "flu virus infection outbreak " + "filler " * 30,
                table="t", oid=oid,
            )
    db.analyze("t")
    return db


class TestTinyPool:
    def test_results_identical_across_pool_sizes(self):
        roomy = build(buffer_pages=4096)
        tiny = build(buffer_pages=8)
        query = f"Select name From t r Where r.{DISEASE} >= 2 Order By name"
        assert roomy.sql(query).column("name") == tiny.sql(query).column(
            "name"
        )

    def test_tiny_pool_actually_evicts(self):
        tiny = build(buffer_pages=4)
        before = tiny.disk.stats.snapshot()
        tiny.sql("Select name From t")
        tiny.sql("Select name From t")  # second pass cannot be fully cached
        delta = tiny.disk.stats.delta(before)
        assert delta.reads > 0

    def test_roomy_pool_serves_repeats_from_cache(self):
        roomy = build(buffer_pages=4096)
        roomy.sql("Select name From t")  # warm
        before = roomy.disk.stats.snapshot()
        roomy.sql("Select name From t")
        assert roomy.disk.stats.delta(before).reads == 0

    def test_index_queries_survive_eviction(self):
        tiny = build(buffer_pages=8)
        query = f"Select name From t r Where r.{DISEASE} = 4"
        expected = tiny.sql(query).column("name")
        tiny.options.force_access = "index"
        try:
            via_index = tiny.sql(query).column("name")
        finally:
            tiny.options.force_access = None
        assert sorted(via_index) == sorted(expected)

    def test_external_sort_under_pressure(self):
        tiny = build(buffer_pages=8)
        tiny.options.force_sort = "disk"
        try:
            result = tiny.sql("Select name From t Order By name Desc")
        finally:
            tiny.options.force_sort = None
        names = result.column("name")
        assert names == sorted(names, reverse=True)

    def test_mutations_under_pressure(self):
        tiny = build(buffer_pages=8)
        oid = tiny.insert("t", {"name": "late", "blob": "y" * 500})
        tiny.add_annotation("flu virus infection outbreak late",
                            table="t", oid=oid)
        result = tiny.sql(
            f"Select name From t r Where name = 'late' And r.{DISEASE} = 1"
        )
        assert len(result) == 1


class TestPinEvictFreeClear:
    """pin/evict/free/clear interactions under capacity pressure."""

    def _pool(self, capacity=3):
        from repro.storage.buffer import BufferPool
        from repro.storage.disk import DiskManager

        disk = DiskManager()
        return disk, BufferPool(disk, capacity=capacity)

    def test_pinned_frames_survive_capacity_pressure(self):
        disk, pool = self._pool(capacity=3)
        pinned = pool.new_page()
        page = pool.get_page(pinned)
        page[0] = 42
        pool.mark_dirty(pinned)
        pool.pin(pinned)
        for _ in range(10):  # churn well past capacity
            pool.new_page()
        # the pinned frame was never evicted: the live bytearray is intact
        assert pool.get_page(pinned)[0] == 42
        assert pool._frames[pinned].pins == 1
        pool.unpin(pinned)

    def test_free_pinned_page_refused_under_pressure(self):
        import pytest as _pytest

        from repro.errors import BufferPoolError

        disk, pool = self._pool(capacity=2)
        pinned = pool.new_page()
        pool.pin(pinned)
        pool.new_page()  # fill remaining frame
        with _pytest.raises(BufferPoolError):
            pool.free_page(pinned)
        pool.unpin(pinned)
        pool.free_page(pinned)
        assert pinned not in pool._frames

    def test_clear_flushes_dirty_frames_before_dropping(self):
        disk, pool = self._pool(capacity=4)
        pids = [pool.new_page() for _ in range(3)]
        for i, pid in enumerate(pids):
            pool.get_page(pid)[0] = i + 1
            pool.mark_dirty(pid)
        pool.clear()
        assert not pool._frames
        for i, pid in enumerate(pids):
            assert disk.read_page(pid)[0] == i + 1

    def test_eviction_skips_pinned_victims_in_lru_order(self):
        disk, pool = self._pool(capacity=3)
        a, b, c = (pool.new_page() for _ in range(3))
        pool.flush_all()
        pool.pin(a)  # LRU-oldest but pinned: must be skipped
        pool.new_page()  # evicts b (oldest unpinned)
        assert a in pool._frames
        assert b not in pool._frames
        assert c in pool._frames
        pool.unpin(a)

    def test_freed_page_gone_after_clear_recycles_cleanly(self):
        disk, pool = self._pool(capacity=2)
        pid = pool.new_page()
        pool.clear()
        pool.free_page(pid)  # free a non-resident page: disk-only effect
        recycled = disk.allocate_page()
        assert recycled == pid
