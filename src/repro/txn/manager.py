"""Transactions over the redo-only WAL: buffered-redo commit.

An explicit transaction (``BEGIN`` … ``COMMIT``/``ABORT``) buffers its
writes as *redo records* instead of applying them: each DML statement
plans and evaluates against the committed state it can see (strict
two-phase table locks keep that state stable underneath it), then pushes
``(record_type, payload)`` onto the transaction — the exact payloads the
WAL would carry.  Nothing touches the heap, the indexes, the summary
structures, or the buffer pool until commit, which is what makes abort
trivial and makes the headline durability claim structural: **an aborted
transaction's pages cannot hit disk because an aborted transaction never
has pages.**

Commit serializes on the engine's commit mutex and then, inside one WAL
statement scope::

    TXN_BEGIN(txn)                       appended
    for each buffered op:  op record     appended, then applied via
                                         repro.wal.recovery.apply_record
    TXN_COMMIT(txn)                      appended
    sync                                 the durability point

Applying through :func:`~repro.wal.recovery.apply_record` — the same
interpreter crash recovery uses — means a committed transaction's live
effect and its replay-after-crash effect are the same code path.  A crash
anywhere before the final sync leaves a commit group without a durable
``TXN_COMMIT`` frame, which recovery discards wholesale; after the sync
the whole group is durable.  Exactly the committed prefix survives.

Identifier pre-assignment: a transaction's buffered inserts claim OIDs
(and annotation adds claim annotation ids) *at statement time* by
offsetting from the current counter — sound because the transaction
already holds the exclusive table lock (resp. the annotation-resource
lock) and holds it until commit, so no other writer can move the counter
underneath the reservation.
"""

from __future__ import annotations

import threading

from repro.errors import TransactionError
from repro.wal.record import WALRecord, WALRecordType
from repro.wal.recovery import apply_record


class Transaction:
    """One open transaction's buffered state."""

    __slots__ = (
        "txn_id", "ops", "insert_counts", "ann_adds", "deleted",
        "written_tables", "status",
    )

    def __init__(self, txn_id: int):
        self.txn_id = txn_id
        #: buffered redo ops, in statement order: ``(rtype, payload)``.
        self.ops: list[tuple[int, dict]] = []
        #: table -> count of buffered inserts (OID pre-assignment offset).
        self.insert_counts: dict[str, int] = {}
        #: buffered annotation adds (annotation-id pre-assignment offset).
        self.ann_adds = 0
        #: (table, oid) pairs this transaction has buffered a delete for —
        #: later statements must not buffer ops against them (the commit
        #: apply would fail on the missing row).
        self.deleted: set[tuple[str, int]] = set()
        #: tables with buffered writes (statistics staleness at commit).
        self.written_tables: set[str] = set()
        self.status = "active"  # active | committed | aborted

    def add_op(self, rtype: int, payload: dict) -> None:
        if self.status != "active":
            raise TransactionError(
                f"transaction {self.txn_id} is {self.status}"
            )
        self.ops.append((rtype, payload))

    def reserve_oid(self, table,  # repro.catalog.table.Table
                    ) -> int:
        """Pre-assign the OID the buffered insert will receive at commit."""
        name = table.name.lower()
        oid = table.next_oid + self.insert_counts.get(name, 0)
        self.insert_counts[name] = self.insert_counts.get(name, 0) + 1
        return oid

    def __len__(self) -> int:
        return len(self.ops)


class TransactionManager:
    """Allocates transaction ids and runs the commit/abort protocol."""

    def __init__(self, db):
        self.db = db
        self._id_lock = threading.Lock()
        self._next_txn_id = 0
        #: txn_id -> Transaction, while active.
        self.active: dict[int, Transaction] = {}

    def begin(self) -> Transaction:
        with self._id_lock:
            self._next_txn_id += 1
            txn = Transaction(self._next_txn_id)
            self.active[txn.txn_id] = txn
        self.db.metrics.inc("txn.begins")
        return txn

    def _retire(self, txn: Transaction, status: str) -> None:
        txn.status = status
        with self._id_lock:
            self.active.pop(txn.txn_id, None)

    def abort(self, txn: Transaction) -> None:
        """Discard every buffered op.  Nothing was applied and nothing was
        logged, so there is nothing to undo — the whole point of buffered
        redo."""
        self._retire(txn, "aborted")
        self.db.metrics.inc("txn.aborts")

    def commit(self, txn: Transaction) -> None:
        """Apply + log the buffered group, then make it durable.

        Holds the engine's commit mutex: the WAL is one serial stream and
        the group must land contiguously; concurrent committers (and
        autocommit writers, who take the same mutex) queue here after
        their table-lock conflicts have already been resolved.
        """
        db = self.db
        if not txn.ops:
            # Empty transactions commit without touching the log.
            self._retire(txn, "committed")
            db.metrics.inc("txn.commits")
            db.metrics.inc("txn.empty_commits")
            return
        with db._commit_mutex:
            try:
                with db._wal_statement() as log:
                    if log:
                        db._wal_append(
                            WALRecordType.TXN_BEGIN,
                            {"ops": len(txn.ops)}, txn_id=txn.txn_id,
                        )
                    for rtype, payload in txn.ops:
                        if log:
                            # Record first, then apply: every page the op
                            # dirties carries an LSN at or below this
                            # record's frame, so a forced mid-commit flush
                            # still writes the log ahead of the data.
                            db._wal_append(rtype, payload, txn_id=txn.txn_id)
                        apply_record(
                            db, WALRecord(0, rtype, 0, payload, txn.txn_id)
                        )
                    if log:
                        db._wal_append(
                            WALRecordType.TXN_COMMIT,
                            {"ops": len(txn.ops)}, txn_id=txn.txn_id,
                        )
                    # _wal_statement's exit syncs: the commit point.
            except BaseException:
                # A failed apply (engine bug or injected fault) leaves the
                # live state mid-group with no durable commit frame —
                # recovery from the WAL discards the group, which is the
                # only consistent story. Surface it as an aborted commit.
                self._retire(txn, "aborted")
                db.metrics.inc("txn.commit_failures")
                raise
        for table in txn.written_tables:
            db.statistics.mark_stale(table)
        if getattr(db, "summary_async", "off") == "coherent":
            # Commit is a statement boundary: fold the group's deferred
            # summary work in before the caller can observe the commit.
            db.manager.drain_pending()
        self._retire(txn, "committed")
        db.metrics.inc("txn.commits")
        db.metrics.inc("txn.ops_committed", len(txn.ops))
