"""Tests for the Summary-BTree index and the baseline scheme (§4.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annotations.annotation import AnnotationTarget
from repro.catalog.schema import Column, Schema
from repro.catalog.table import Table
from repro.errors import IndexError_
from repro.index import (
    BaselineClassifierIndex,
    SummaryBTreeIndex,
    extend_count,
    itemize,
    parse_item,
    probe_range,
)
from repro.index.itemize import itemize_object, max_count
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.record import ValueType
from repro.summaries.maintenance import SummaryManager

SEED = [
    ("infection avian flu disease symptoms virus sick", "Disease"),
    ("outbreak parasite illness disease infected", "Disease"),
    ("wing beak feather plumage anatomy skeleton", "Anatomy"),
    ("wingspan weight bone anatomy measurement", "Anatomy"),
    ("migration nesting singing foraging behavior", "Behavior"),
    ("feeding eating diving flying behavior flock", "Behavior"),
    ("note comment misc general", "Other"),
]

DISEASE = "infection avian flu disease symptoms"
ANATOMY = "wing beak plumage anatomy"


class TestItemization:
    def test_extend_count_three_chars(self):
        assert extend_count(8) == "008"
        assert extend_count(999) == "999"

    def test_extend_count_preserves_order(self):
        values = [0, 1, 9, 10, 42, 100, 999]
        encoded = [extend_count(v) for v in values]
        assert encoded == sorted(encoded)

    def test_extend_count_overflow(self):
        with pytest.raises(IndexError_):
            extend_count(1000)

    def test_extend_count_negative(self):
        with pytest.raises(IndexError_):
            extend_count(-1)

    def test_itemize_matches_paper_example(self):
        assert itemize("Disease", 8) == "Disease:008"

    def test_itemize_object(self):
        rep = [("Behavior", 33), ("Disease", 8), ("Anatomy", 25), ("Other", 16)]
        assert itemize_object(rep) == [
            "Behavior:033", "Disease:008", "Anatomy:025", "Other:016",
        ]

    def test_label_with_separator_rejected(self):
        with pytest.raises(IndexError_):
            itemize("Bad:Label", 1)

    def test_parse_roundtrip(self):
        assert parse_item(itemize("Disease", 42)) == ("Disease", 42)

    def test_probe_range_defaults(self):
        # Missing bounds become label:000 / label:999 (§4.1.2).
        assert probe_range("Disease", None, None) == ("Disease:000", "Disease:999")
        assert probe_range("Disease", 5, None) == ("Disease:005", "Disease:999")
        assert probe_range("Disease", None, 7) == ("Disease:000", "Disease:007")

    @given(st.integers(0, 999), st.integers(0, 999))
    @settings(max_examples=50)
    def test_property_lexicographic_equals_numeric(self, a, b):
        assert (itemize("L", a) < itemize("L", b)) == (a < b)


def build_indexed_manager(backward=True):
    """Manager with birds table + ClassBird1 instance + Summary-BTree."""
    pool = BufferPool(DiskManager(), capacity=2048)
    schema = Schema([Column("name", ValueType.TEXT)])
    table = Table("birds", schema, pool)
    manager = SummaryManager(pool)
    manager.create_classifier_instance(
        "ClassBird1", ["Disease", "Anatomy", "Behavior", "Other"], SEED
    )
    manager.link("birds", "ClassBird1")
    index = SummaryBTreeIndex(
        table, manager.storage_for("birds"), "ClassBird1",
        backward_pointers=backward,
    )
    manager.add_observer("birds", "ClassBird1", index)
    return pool, table, manager, index


def annotate(manager, oid, text, n=1):
    for _ in range(n):
        manager.add_annotation(text, [AnnotationTarget("birds", oid)])


class TestSummaryBTree:
    def test_insert_creates_k_keys(self):
        _, table, manager, index = build_indexed_manager()
        table.insert({"name": "swan"})
        annotate(manager, 1, DISEASE)
        assert len(index) == 4  # one key per class label

    def test_update_rekeys_only_changed_label(self):
        _, table, manager, index = build_indexed_manager()
        table.insert({"name": "swan"})
        annotate(manager, 1, DISEASE)
        annotate(manager, 1, DISEASE)
        assert len(index) == 4
        assert [p.oid for p in index.lookup_eq("Disease", 2)] == [1]
        assert index.lookup_eq("Disease", 1) == []

    def test_backward_pointer_resolves_data_tuple(self):
        _, table, manager, index = build_indexed_manager()
        table.insert({"name": "swan goose"})
        annotate(manager, 1, DISEASE)
        pointer = index.lookup_eq("Disease", 1)[0]
        assert table.read_at(pointer.rid)[0] == "swan goose"

    def test_conventional_pointer_resolves_storage_row(self):
        _, table, manager, index = build_indexed_manager(backward=False)
        table.insert({"name": "swan"})
        annotate(manager, 1, DISEASE)
        pointer = index.lookup_eq("Disease", 1)[0]
        record = manager.storage_for("birds").heap.read(pointer.rid)
        assert b"ClassBird1" in record

    def test_equality_probe_multiple_tuples(self):
        _, table, manager, index = build_indexed_manager()
        for i in range(10):
            table.insert({"name": f"bird{i}"})
        for oid in range(1, 11):
            annotate(manager, oid, DISEASE, n=oid % 3 + 1)
        hits = index.lookup_eq("Disease", 2)
        assert sorted(p.oid for p in hits) == [1, 4, 7, 10]

    def test_range_probe_sorted_by_count(self):
        _, table, manager, index = build_indexed_manager()
        for i in range(6):
            table.insert({"name": f"bird{i}"})
        for oid in range(1, 7):
            annotate(manager, oid, DISEASE, n=oid)
        got = list(index.lookup_range("Disease", 2, 5))
        assert [count for count, _ in got] == [2, 3, 4, 5]
        assert [p.oid for _, p in got] == [2, 3, 4, 5]

    def test_open_range_uses_probe_defaults(self):
        _, table, manager, index = build_indexed_manager()
        for i in range(4):
            table.insert({"name": f"bird{i}"})
        for oid in range(1, 5):
            annotate(manager, oid, DISEASE, n=oid)
        got = [c for c, _ in index.lookup_range("Disease", 3, None)]
        assert got == [3, 4]

    def test_exclusive_range(self):
        _, table, manager, index = build_indexed_manager()
        for i in range(5):
            table.insert({"name": f"bird{i}"})
        for oid in range(1, 6):
            annotate(manager, oid, DISEASE, n=oid)
        got = [c for c, _ in index.lookup_range("Disease", 1, 5,
                                                lo_inclusive=False,
                                                hi_inclusive=False)]
        assert got == [2, 3, 4]

    def test_tuple_delete_removes_keys(self):
        _, table, manager, index = build_indexed_manager()
        table.insert({"name": "bird"})
        annotate(manager, 1, DISEASE)
        manager.on_tuple_delete("birds", 1)
        assert len(index) == 0

    def test_annotation_delete_rekeys(self):
        _, table, manager, index = build_indexed_manager()
        table.insert({"name": "bird"})
        ann = manager.add_annotation(DISEASE, [AnnotationTarget("birds", 1)])
        annotate(manager, 1, DISEASE)
        manager.delete_annotation(ann.ann_id)
        assert [p.oid for p in index.lookup_eq("Disease", 1)] == [1]

    def test_bulk_build_matches_incremental(self):
        pool, table, manager, index = build_indexed_manager()
        manager.remove_observer("birds", "ClassBird1", index)
        for i in range(8):
            table.insert({"name": f"bird{i}"})
        for oid in range(1, 9):
            annotate(manager, oid, DISEASE, n=(oid % 4) + 1)
        assert len(index) == 0
        inserted = index.bulk_build()
        assert inserted == 8 * 4
        assert sorted(p.oid for p in index.lookup_eq("Disease", 2)) == [1, 5]

    def test_width_rebuild_on_overflow(self):
        _, table, manager, index = build_indexed_manager()
        table.insert({"name": "bird"})
        index.width = 1  # force an early overflow for the test
        annotate(manager, 1, DISEASE, n=12)
        assert index.rebuilds >= 1
        assert index.width >= 2
        assert [p.oid for p in index.lookup_eq("Disease", 12)] == [1]
        # all four labels remain probe-able after the rebuild
        assert [p.oid for p in index.lookup_eq("Anatomy", 0)] == [1]

    def test_multiple_tuples_same_count_all_found(self):
        _, table, manager, index = build_indexed_manager()
        for i in range(5):
            table.insert({"name": f"b{i}"})
        for oid in range(1, 6):
            annotate(manager, oid, DISEASE, n=3)
        assert len(index.lookup_eq("Disease", 3)) == 5


class TestBaselineIndex:
    def build(self):
        pool = BufferPool(DiskManager(), capacity=2048)
        schema = Schema([Column("name", ValueType.TEXT)])
        table = Table("birds", schema, pool)
        manager = SummaryManager(pool)
        manager.create_classifier_instance(
            "ClassBird1", ["Disease", "Anatomy", "Behavior", "Other"], SEED
        )
        manager.link("birds", "ClassBird1")
        index = BaselineClassifierIndex(table, "ClassBird1", pool)
        manager.add_observer("birds", "ClassBird1", index)
        return table, manager, index

    def test_normalized_rows_created(self):
        table, manager, index = self.build()
        table.insert({"name": "bird"})
        annotate(manager, 1, DISEASE)
        assert len(index.norm) == 4

    def test_lookup_eq(self):
        table, manager, index = self.build()
        for i in range(6):
            table.insert({"name": f"b{i}"})
        for oid in range(1, 7):
            annotate(manager, oid, DISEASE, n=oid % 2 + 1)
        assert sorted(index.lookup_eq("Disease", 2)) == [1, 3, 5]

    def test_lookup_range_sorted(self):
        table, manager, index = self.build()
        for i in range(5):
            table.insert({"name": f"b{i}"})
        for oid in range(1, 6):
            annotate(manager, oid, DISEASE, n=oid)
        got = list(index.lookup_range("Disease", 2, 4))
        assert [c for c, _ in got] == [2, 3, 4]

    def test_update_keeps_rows_normalized(self):
        table, manager, index = self.build()
        table.insert({"name": "bird"})
        annotate(manager, 1, DISEASE, n=3)
        assert len(index.norm) == 4  # still one row per label
        assert index.lookup_eq("Disease", 3) == [1]

    def test_tuple_delete_drops_rows(self):
        table, manager, index = self.build()
        table.insert({"name": "bird"})
        annotate(manager, 1, DISEASE)
        manager.on_tuple_delete("birds", 1)
        assert len(index.norm) == 0

    def test_reconstruct_object_counts(self):
        table, manager, index = self.build()
        table.insert({"name": "bird"})
        annotate(manager, 1, DISEASE, n=2)
        annotate(manager, 1, ANATOMY)
        obj = index.reconstruct_object(1)
        assert obj is not None
        assert obj.get_label_value("Disease") == 2
        assert obj.get_label_value("Anatomy") == 1

    def test_reconstruct_missing_returns_none(self):
        _, __, index = self.build()
        assert index.reconstruct_object(404) is None

    def test_storage_overhead_exceeds_summary_btree(self):
        # Figure 7: the baseline replicates the summary objects, so its
        # footprint must exceed the Summary-BTree scheme's index-only cost.
        pool = BufferPool(DiskManager(), capacity=4096)
        schema = Schema([Column("name", ValueType.TEXT)])
        table = Table("birds", schema, pool)
        manager = SummaryManager(pool)
        manager.create_classifier_instance(
            "ClassBird1", ["Disease", "Anatomy", "Behavior", "Other"], SEED
        )
        manager.link("birds", "ClassBird1")
        sb = SummaryBTreeIndex(table, manager.storage_for("birds"), "ClassBird1")
        bl = BaselineClassifierIndex(table, "ClassBird1", pool)
        manager.add_observer("birds", "ClassBird1", sb)
        manager.add_observer("birds", "ClassBird1", bl)
        for i in range(200):
            table.insert({"name": f"b{i}"})
        for oid in range(1, 201):
            annotate(manager, oid, DISEASE)
        assert bl.pages_used() > sb.pages_used()


class TestBothSchemesAgree:
    @given(st.lists(st.integers(1, 5), min_size=1, max_size=12))
    @settings(max_examples=15, deadline=None)
    def test_property_eq_lookups_identical(self, per_tuple):
        pool = BufferPool(DiskManager(), capacity=4096)
        schema = Schema([Column("name", ValueType.TEXT)])
        table = Table("birds", schema, pool)
        manager = SummaryManager(pool)
        manager.create_classifier_instance(
            "ClassBird1", ["Disease", "Anatomy", "Behavior", "Other"], SEED
        )
        manager.link("birds", "ClassBird1")
        sb = SummaryBTreeIndex(table, manager.storage_for("birds"), "ClassBird1")
        bl = BaselineClassifierIndex(table, "ClassBird1", pool)
        manager.add_observer("birds", "ClassBird1", sb)
        manager.add_observer("birds", "ClassBird1", bl)
        for i, n in enumerate(per_tuple):
            table.insert({"name": f"b{i}"})
            annotate(manager, i + 1, DISEASE, n=n)
        for count in range(0, 7):
            sb_hits = sorted(p.oid for p in sb.lookup_eq("Disease", count))
            bl_hits = sorted(bl.lookup_eq("Disease", count))
            assert sb_hits == bl_hits
