"""Parser unit tests for the SQL subset."""

import pytest

from repro.errors import ParseError
from repro.query.ast import (
    AggCall,
    AlterTableSummary,
    And,
    ColumnRef,
    Comparison,
    CreateTableStmt,
    InsertStmt,
    Literal,
    Not,
    ObjectFunc,
    Or,
    SelectItem,
    Star,
    SummaryExpr,
    ZoomIn,
)
from repro.query.parser import parse_sql


class TestSelect:
    def test_star(self):
        stmt = parse_sql("Select * From birds")
        assert isinstance(stmt.items[0], Star)
        assert stmt.tables[0].name == "birds"
        assert stmt.tables[0].alias == "birds"

    def test_alias_star(self):
        stmt = parse_sql("Select r.* From birds r")
        assert stmt.items[0] == Star("r")

    def test_columns_and_aliases(self):
        stmt = parse_sql("Select r.a, r.b As x, c From birds r")
        assert stmt.items[0].expr == ColumnRef("r", "a")
        assert stmt.items[1].alias == "x"
        assert stmt.items[2].expr == ColumnRef(None, "c")

    def test_where_conjunction(self):
        stmt = parse_sql(
            "Select r.a, r.b, s.z From R r, S s Where r.a = s.x And r.b = 2"
        )
        assert isinstance(stmt.where, And)
        assert stmt.where.items[0] == Comparison(
            "=", ColumnRef("r", "a"), ColumnRef("s", "x")
        )
        assert stmt.where.items[1] == Comparison(
            "=", ColumnRef("r", "b"), Literal(2)
        )

    def test_join_on_syntax(self):
        stmt = parse_sql("Select * From R r Join S s On r.a = s.x Where r.b = 1")
        assert len(stmt.tables) == 2
        assert isinstance(stmt.where, And)

    def test_or_not_precedence(self):
        stmt = parse_sql("Select * From t Where a = 1 Or Not b = 2 And c = 3")
        assert isinstance(stmt.where, Or)
        right = stmt.where.items[1]
        assert isinstance(right, And)
        assert isinstance(right.items[0], Not)

    def test_like(self):
        stmt = parse_sql("Select * From birds Where name Like 'Swan%'")
        assert stmt.where.op == "LIKE"

    def test_in_range_sugar(self):
        # Figure 11: getLabelValue('Anatomy') in [x, y]
        stmt = parse_sql("Select * From t Where a in [2, 7]")
        assert isinstance(stmt.where, And)
        assert stmt.where.items[0].op == ">="
        assert stmt.where.items[1].op == "<="

    def test_order_and_limit(self):
        stmt = parse_sql("Select * From t Order By a Desc, b Limit 10")
        assert stmt.order_by[0][1] == "DESC"
        assert stmt.order_by[1][1] == "ASC"
        assert stmt.limit == 10

    def test_group_by_with_aggregates(self):
        stmt = parse_sql(
            "Select family, count(*) c, sum(weight) From birds Group By family"
        )
        assert stmt.group_by == [ColumnRef(None, "family")]
        assert stmt.items[1].expr == AggCall("COUNT", None)
        assert stmt.items[2].expr == AggCall("SUM", ColumnRef(None, "weight"))

    def test_distinct(self):
        assert parse_sql("Select Distinct a From t").distinct

    def test_string_escaping(self):
        stmt = parse_sql("Select * From t Where a = 'it''s'")
        assert stmt.where.right == Literal("it's")


class TestSummaryExpressions:
    def test_paper_selection_predicate(self):
        stmt = parse_sql(
            "Select * From R r Where r.$.getSummaryObject('ClassBird2')."
            "getLabelValue('Question') > 5"
        )
        expr = stmt.where.left
        assert isinstance(expr, SummaryExpr)
        assert expr.alias == "r"
        assert expr.instance_name == "ClassBird2"
        assert expr.label == "Question"

    def test_contains_predicate(self):
        stmt = parse_sql(
            "Select * From R r Where r.$.getSummaryObject('TextSummary1')."
            "containsSingle('Wikipedia', 'hormone')"
        )
        expr = stmt.where
        assert expr.chain[1].name == "containsSingle"
        assert expr.chain[1].args == ("Wikipedia", "hormone")

    def test_unqualified_dollar(self):
        stmt = parse_sql("Select * From R Where $.getSize() > 2")
        assert stmt.where.left.alias is None

    def test_revision_join_expression(self):
        stmt = parse_sql(
            "Select * From birds v1, birds v2 Where v1.id = v2.id And "
            "v1.$.getSummaryObject('ClassBird1').getLabelValue('Provenance') <> "
            "v2.$.getSummaryObject('ClassBird1').getLabelValue('Provenance')"
        )
        data_pred, summary_pred = stmt.where.items
        assert isinstance(summary_pred.left, SummaryExpr)
        assert isinstance(summary_pred.right, SummaryExpr)
        assert summary_pred.op == "<>"

    def test_bare_dollar_parses_as_empty_chain(self):
        # A bare ``r.$`` is syntactically valid (it is a UDF argument);
        # misuse outside a UDF call is a bind-time error, tested in
        # test_udfs.py.
        stmt = parse_sql("Select * From t Where r.$ = 2")
        assert stmt.where is not None

    def test_non_literal_args_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("Select * From t r Where r.$.getSummaryObject(a) = 1")


class TestFilterSummaries:
    def test_structural_filter(self):
        stmt = parse_sql(
            "Select * From R FILTER SUMMARIES getSummaryType() = 'Classifier'"
        )
        assert isinstance(stmt.summary_filter.left, ObjectFunc)
        assert stmt.summary_filter.left.name == "getSummaryType"

    def test_filter_with_where(self):
        stmt = parse_sql(
            "Select * From R Where a = 1 "
            "FILTER SUMMARIES getSummaryName() = 'SimCluster'"
        )
        assert stmt.where is not None
        assert stmt.summary_filter is not None


class TestCommands:
    def test_alter_add_indexable(self):
        assert parse_sql("Alter Table birds Add Indexable ClassBird1") == \
            AlterTableSummary("birds", "add", "ClassBird1", True)

    def test_alter_add_plain(self):
        assert parse_sql("Alter Table birds Add TextSummary1") == \
            AlterTableSummary("birds", "add", "TextSummary1", False)

    def test_alter_drop(self):
        assert parse_sql("Alter Table birds Drop ClassBird1") == \
            AlterTableSummary("birds", "drop", "ClassBird1")

    def test_zoom_in(self):
        assert parse_sql("Zoom In birds 7 ClassBird1 'Disease'") == \
            ZoomIn("birds", 7, "ClassBird1", "Disease")

    def test_zoom_in_positional(self):
        assert parse_sql("Zoom In birds 7 SimCluster 0") == \
            ZoomIn("birds", 7, "SimCluster", 0)

    def test_create_table(self):
        stmt = parse_sql("Create Table t (a int, b text, c float, d bool)")
        assert stmt == CreateTableStmt(
            "t", [("a", "int"), ("b", "text"), ("c", "float"), ("d", "bool")]
        )

    def test_insert(self):
        stmt = parse_sql(
            "Insert Into t (a, b) Values (1, 'x'), (2, null)"
        )
        assert stmt == InsertStmt("t", ["a", "b"], [[1, "x"], [2, None]])

    def test_trailing_semicolon_ok(self):
        parse_sql("Select * From t;")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("Select * From t extra garbage here ,")

    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse_sql("Vacuum t")

    def test_unknown_character(self):
        with pytest.raises(ParseError):
            parse_sql("Select # From t")
