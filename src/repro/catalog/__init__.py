"""Catalog: schemas, tables, key encodings, and the system catalog."""

from repro.catalog.schema import Column, Schema
from repro.catalog.keys import encode_key, encode_int, decode_int
from repro.catalog.table import Table
from repro.catalog.catalog import Catalog

__all__ = [
    "Column",
    "Schema",
    "encode_key",
    "encode_int",
    "decode_int",
    "Table",
    "Catalog",
]
