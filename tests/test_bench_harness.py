"""Tests for the benchmark harness: figure tables, presets, measurement,
and the shared query/selectivity helpers."""

import pytest

from repro.bench import (
    FULL_SWEEP,
    PAPER_LABELS,
    PRESETS,
    CachedDatabaseMutated,
    FigureTable,
    Measurement,
    active_preset,
    cached_database,
    clear_cache,
    measure,
    measure_sql,
)
from repro.bench.queries import (
    equality_constant,
    label_distribution,
    range_bounds,
    sp_equality_query,
    two_predicate_query,
)
from repro.storage.disk import IOStats
from repro.workload.generator import WorkloadConfig, build_database


class TestPresets:
    def test_paper_labels_cover_full_sweep(self):
        assert set(FULL_SWEEP) == set(PAPER_LABELS)

    def test_label_lookup(self):
        assert PRESETS["default"].label(10) == "450K"
        assert PRESETS["default"].label(200) == "9M"

    def test_unknown_density_falls_back(self):
        assert PRESETS["quick"].label(33) == "33/tuple"

    def test_active_preset_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert active_preset().name == "full"

    def test_active_preset_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert active_preset().name == "default"

    def test_active_preset_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(ValueError):
            active_preset()

    def test_quick_is_subset_of_full_sweep(self):
        assert set(PRESETS["quick"].densities) <= set(FULL_SWEEP)


class TestFigureTable:
    def make(self):
        t = FigureTable("demo", unit="ms")
        for x, a, b in [("10", 100.0, 10.0), ("20", 200.0, 20.0)]:
            t.add("slow", x, a)
            t.add("fast", x, b)
        return t

    def test_cell_value(self):
        assert self.make().value("slow", "10") == 100.0

    def test_series_in_x_order(self):
        assert self.make().series("fast") == [10.0, 20.0]

    def test_ratio_and_mean_ratio(self):
        t = self.make()
        assert t.ratio("slow", "fast", "10") == pytest.approx(10.0)
        assert t.mean_ratio("slow", "fast") == pytest.approx(10.0)

    def test_note_ratio_formats_claim(self):
        t = self.make()
        factor = t.note_ratio("slow", "fast", "about 10x")
        assert factor == pytest.approx(10.0)
        assert "[paper: about 10x]" in t.notes[0]
        assert "10.0x faster" in t.notes[0]

    def test_render_contains_series_and_xs(self):
        text = self.make().render()
        assert "demo" in text
        assert "slow" in text and "fast" in text
        assert "10" in text and "20" in text

    def test_render_missing_cell_dash(self):
        t = self.make()
        t.add("partial", "10", 1.0)  # no cell at x=20
        assert "-" in t.render().splitlines()[-1]

    def test_mean_ratio_skips_missing_cells(self):
        t = self.make()
        t.add("partial", "10", 50.0)
        assert t.mean_ratio("partial", "fast") == pytest.approx(5.0)


class TestMeasurement:
    def test_millis(self):
        m = Measurement(0.25, IOStats(), rows=3, pages=7)
        assert m.millis == pytest.approx(250.0)

    def test_str_mentions_counters(self):
        text = str(Measurement(0.001, IOStats(reads=2, writes=1), pages=5))
        assert "pages=5" in text and "reads=2" in text


@pytest.fixture(scope="module")
def small_db():
    return build_database(WorkloadConfig(
        num_birds=20, annotations_per_tuple=15, indexes="summary_btree",
        cell_fraction=0.0, seed=2,
    ))


class TestMeasure:
    def test_measure_captures_rows_and_pages(self, small_db):
        m = measure(small_db, lambda: small_db.sql("Select * From birds"))
        assert m.rows == 20
        assert m.pages > 0
        assert m.seconds > 0

    def test_repeat_keeps_best(self, small_db):
        m1 = measure(small_db, lambda: small_db.sql("Select * From birds"),
                     repeat=3)
        assert m1.rows == 20

    def test_measure_sql_carries_operator_breakdown(self, small_db):
        m = measure_sql(small_db, "Select * From birds", repeat=2)
        assert m.rows == 20
        assert m.operators, "EXPLAIN ANALYZE breakdown missing"
        assert m.operators[0]["rows"] == 20
        assert sum(op["self_pages"] for op in m.operators) == m.pages
        assert isinstance(m.metrics, dict)


class TestQueryHelpers:
    def test_label_distribution_totals(self, small_db):
        dist = label_distribution(small_db, "birds", "Disease")
        assert sum(dist.values()) == 20

    def test_equality_constant_hits_target(self, small_db):
        c = equality_constant(small_db, "Disease", 0.10)
        dist = label_distribution(small_db, "birds", "Disease")
        # the chosen constant's frequency is the closest available to 10%
        best = min(abs(dist[v] / 20 - 0.10) for v in dist)
        assert abs(dist[c] / 20 - 0.10) == pytest.approx(best)

    def test_range_bounds_cover_target_fraction(self, small_db):
        lo, hi = range_bounds(small_db, "Anatomy", 0.5)
        dist = label_distribution(small_db, "birds", "Anatomy")
        covered = sum(n for v, n in dist.items() if lo <= v <= hi)
        assert covered >= 10  # at least half the tuples

    def test_queries_execute(self, small_db):
        c = equality_constant(small_db, "Disease", 0.1)
        small_db.sql(sp_equality_query("Disease", c))
        lo, hi = range_bounds(small_db, "Anatomy", 0.3)
        small_db.sql(two_predicate_query(lo, hi, "experiment"))

    def test_equality_constant_rejects_empty_table(self):
        from repro import Column, Database, ValueType

        db = Database()
        db.create_table("birds", [Column("x", ValueType.INT)])
        with pytest.raises(ValueError):
            equality_constant(db, "Disease", 0.1)


class TestCache:
    def test_cached_database_memoizes(self):
        clear_cache()
        kwargs = dict(num_birds=4, annotations_per_tuple=3, indexes="none")
        a = cached_database(**kwargs)
        b = cached_database(**kwargs)
        assert a is b
        clear_cache()
        c = cached_database(**kwargs)
        assert c is not a
        clear_cache()

    def test_mutated_cached_database_fails_loudly(self):
        clear_cache()
        kwargs = dict(num_birds=4, annotations_per_tuple=3, indexes="none")
        db = cached_database(**kwargs)
        cached_database(**kwargs)  # clean lease passes the check
        db.insert("birds", {"scientific_name": "intruder"})
        with pytest.raises(CachedDatabaseMutated):
            cached_database(**kwargs)
        clear_cache()
        # a rebuild recovers
        assert cached_database(**kwargs) is not db
        clear_cache()
