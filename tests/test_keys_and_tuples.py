"""Order-preserving key encodings and QTuple runtime-tuple mechanics
(serialization round-trips used by the external sort's spill runs)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catalog.keys import (
    decode_int,
    encode_bool,
    encode_float,
    encode_int,
    encode_key,
    encode_text,
)
from repro.errors import IndexError_, QueryError
from repro.query.tuples import QTuple
from repro.storage.record import ValueType
from repro.summaries.functions import SummarySet
from repro.summaries.objects import ClassifierObject

FINITE_FLOATS = st.floats(allow_nan=False, allow_infinity=False,
                          width=64)


class TestKeyEncodings:
    @given(st.integers(-(2**63), 2**63 - 1), st.integers(-(2**63), 2**63 - 1))
    def test_int_order_preserved(self, a, b):
        assert (encode_int(a) < encode_int(b)) == (a < b)

    @given(st.integers(-(2**63), 2**63 - 1))
    def test_int_roundtrip(self, a):
        assert decode_int(encode_int(a)) == a

    def test_int_out_of_range(self):
        with pytest.raises(IndexError_):
            encode_int(2**63)

    @given(FINITE_FLOATS, FINITE_FLOATS)
    def test_float_order_preserved(self, a, b):
        if a < b:
            assert encode_float(a) < encode_float(b)
        elif a > b:
            assert encode_float(a) > encode_float(b)

    def test_float_negative_vs_positive(self):
        assert encode_float(-1.5) < encode_float(0.0) < encode_float(2.5)

    @given(st.text(max_size=20), st.text(max_size=20))
    def test_text_order_matches_utf8_bytes(self, a, b):
        assert (encode_text(a) < encode_text(b)) == (
            a.encode() < b.encode()
        )

    def test_bool_order(self):
        assert encode_bool(False) < encode_bool(True)

    @given(st.one_of(st.none(), st.integers(-10**6, 10**6)))
    def test_null_sorts_first(self, value):
        null_key = encode_key(None, ValueType.INT)
        if value is not None:
            assert null_key < encode_key(value, ValueType.INT)

    @given(FINITE_FLOATS)
    def test_encode_key_dispatch_float(self, f):
        assert encode_key(f, ValueType.FLOAT)[0:1] != b"\x00"


def classifier(tuple_id=0, disease=2):
    obj = ClassifierObject(instance_name="C", tuple_id=tuple_id,
                           labels=["Disease", "Other"])
    for i in range(disease):
        obj.add_annotation(i + 1, "Disease", ())
    return obj


class TestQTuple:
    def make(self):
        sset = SummarySet({"C": classifier()})
        return QTuple(
            ["r.name", "r.v"], ["swan", 7],
            {"r": sset}, {"r": ("birds", 3)},
        )

    def test_get_qualified_and_bare(self):
        t = self.make()
        assert t.get("r.name") == "swan"
        assert t.get("name") == "swan"

    def test_get_ambiguous_raises(self):
        t = QTuple(["a.x", "b.x"], [1, 2])
        with pytest.raises(QueryError):
            t.get("x")

    def test_get_missing_raises(self):
        with pytest.raises(QueryError):
            self.make().get("nope")

    def test_has_column(self):
        t = self.make()
        assert t.has_column("r.v")
        assert t.has_column("v")
        assert not t.has_column("w")

    def test_copy_is_deep_for_summaries(self):
        t = self.make()
        copied = t.copy()
        copied.summary_set("r").get_summary_object("C").add_annotation(
            99, "Disease", ()
        )
        original = t.summary_set("r").get_summary_object("C")
        assert original.get_label_value("Disease") == 2

    def test_join_concatenates_and_merges(self):
        left = self.make()
        right = QTuple(["s.syn"], ["alias"],
                       {"s": SummarySet({"C": classifier(1, 1)})},
                       {"s": ("synonyms", 9)})
        joined = QTuple.join(left, right)
        assert joined.columns == ["r.name", "r.v", "s.syn"]
        assert joined.provenance == {"r": ("birds", 3),
                                     "s": ("synonyms", 9)}
        merged = joined.merged_summary_set()
        # merge with dedup: disjoint annotation ids 1,2 + 1 -> but ids
        # overlap (both use ann id 1), so the union is {1, 2}.
        assert merged.get_summary_object("C").get_label_value("Disease") == 2

    def test_serialization_roundtrip(self):
        t = self.make()
        back = QTuple.from_bytes(t.to_bytes())
        assert back.columns == t.columns
        assert back.values == t.values
        assert back.provenance == t.provenance
        obj = back.summary_set("r").get_summary_object("C")
        assert obj.get_label_value("Disease") == 2

    def test_serialization_preserves_shared_sets(self):
        # Two aliases sharing one summary set must still share after a
        # round-trip (merge semantics depend on distinct sets only).
        sset = SummarySet({"C": classifier()})
        t = QTuple(["a.x", "b.y"], [1, 2], {"a": sset, "b": sset},
                   {"a": ("t", 1), "b": ("t", 1)})
        back = QTuple.from_bytes(t.to_bytes())
        assert len(back.distinct_summary_sets()) == 1

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=8))
    def test_roundtrip_property_values(self, values):
        cols = [f"c{i}" for i in range(len(values))]
        t = QTuple(cols, list(values))
        back = QTuple.from_bytes(t.to_bytes())
        assert back.values == values
