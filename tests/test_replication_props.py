"""Property suite for replication framing and resume semantics.

The replication stream *is* the WAL byte format, so the properties pin
the contracts both the link and the applier rely on:

* **Frame round-trip** — any sequence of records encodes to a stream
  that scans back verbatim, with physical frame boundaries (never the
  re-encoded payload length, which is not byte-stable).
* **Torn tails** — cutting the stream at ANY byte yields a clean parse
  of a frame-boundary prefix; the applier acks only whole committed
  records and resuming with the remainder converges. Never a partial
  apply, never a lost or doubled record.
* **Duplicated delivery** — re-feeding any already-applied slice (the
  reconnect overlap) applies nothing.
* **Garbled bytes** — corrupting any byte makes both the applier and
  crash recovery stop at the same point with identical state: a replica
  fed garbage can diverge from a recovered primary by exactly nothing.
* **Arbitrary chunking with seeded reconnects** — any partition of the
  stream, with arbitrary rewinds to the ack watermark in between,
  converges to the recovered-primary state with zero double applies.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st  # noqa: E402

from repro.catalog.schema import Column  # noqa: E402
from repro.core.database import Database  # noqa: E402
from repro.replication.applier import WALApplier  # noqa: E402
from repro.storage.record import ValueType  # noqa: E402
from repro.wal.device import MemoryWALDevice  # noqa: E402
from repro.wal.record import (  # noqa: E402
    FRAME_SIZE,
    WALRecordType,
    encode_record,
    scan_records,
)
from tests.test_crash_matrix import db_state  # noqa: E402


# ---------------------------------------------------------------------------
# one canonical stream, built once: DDL + autocommit DML + a txn group
# ---------------------------------------------------------------------------

def build_stream() -> bytes:
    db = Database(buffer_pages=32)
    db.attach_wal(MemoryWALDevice())
    db.create_table("t", [Column("name", ValueType.TEXT),
                          Column("v", ValueType.INT)])
    for i in range(6):
        db.insert("t", [f"r{i}", i % 3])
    db.add_annotation("a note", table="t", oid=1)
    db.sql("BEGIN")
    db.sql("INSERT INTO t VALUES ('txn-a', 7)")
    db.sql("INSERT INTO t VALUES ('txn-b', 8)")
    db.sql("COMMIT")
    db.sql("UPDATE t SET v = 9 WHERE name = 'r5'")
    db.delete_tuple("t", 2)
    return db.wal.device.durable()


STREAM = build_stream()
SCAN = scan_records(STREAM, 0)
#: physical frame boundaries: [0, end-of-frame-0, ..., len(STREAM)].
BOUNDARIES = [r.lsn for r in SCAN.records] + [SCAN.end_lsn]


def recovered_state(data: bytes):
    """What a primary crash-recovered from exactly ``data`` serves."""
    db, _ = Database.recover(None, MemoryWALDevice.from_durable(data, 0))
    return db_state(db)


def applier_state(applier: WALApplier):
    return db_state(applier.db)


def fresh_applier() -> WALApplier:
    return WALApplier(Database(buffer_pages=32), 0)


class TestFrameRoundTrip:
    @given(st.lists(
        st.tuples(
            st.sampled_from([WALRecordType.INSERT, WALRecordType.DELETE,
                             WALRecordType.UPDATE, WALRecordType.ANN_ADD]),
            st.integers(min_value=0, max_value=2 ** 32),
            st.integers(min_value=0, max_value=2 ** 16),
            st.dictionaries(st.text(max_size=8),
                            st.integers() | st.text(max_size=16),
                            max_size=4),
        ),
        max_size=8,
    ))
    def test_encode_scan_round_trip(self, specs):
        data = bytearray()
        for rtype, stmt_id, txn_id, payload in specs:
            data.extend(encode_record(len(data), rtype, stmt_id,
                                      payload, txn_id))
        scan = scan_records(bytes(data), 0)
        assert len(scan.records) == len(specs)
        assert scan.torn_bytes == 0
        assert scan.end_lsn == len(data)
        for rec, (rtype, stmt_id, txn_id, payload) in zip(
                scan.records, specs):
            assert (rec.type, rec.stmt_id, rec.txn_id, rec.payload) == (
                rtype, stmt_id, txn_id, payload)

    @given(st.integers(min_value=0, max_value=len(STREAM)))
    def test_any_cut_parses_a_frame_boundary_prefix(self, cut):
        scan = scan_records(STREAM[:cut], 0)
        assert scan.end_lsn in BOUNDARIES
        assert scan.end_lsn <= cut
        # the parse is maximal: every whole frame before the cut decodes
        assert scan.end_lsn == max(b for b in BOUNDARIES if b <= cut)


class TestTornTailsNeverPartiallyApply:
    @given(st.integers(min_value=0, max_value=len(STREAM)))
    def test_prefix_apply_equals_prefix_recovery(self, cut):
        """A replica fed any prefix matches a primary recovered from the
        same bytes — the chaos battery's invariant, at every byte."""
        applier = fresh_applier()
        res = applier.feed(STREAM[:cut])
        assert applier.ack_lsn in BOUNDARIES  # whole frames only
        assert res.parsed_bytes == applier.fetch_lsn
        assert applier_state(applier) == recovered_state(STREAM[:cut])

    @given(st.integers(min_value=0, max_value=len(STREAM)))
    def test_resume_from_any_cut_converges(self, cut):
        applier = fresh_applier()
        applier.feed(STREAM[:cut])
        applied_before = applier.records_applied
        # Reconnect: rewind to the ack, refetch the overlap + the rest.
        applier.reset_to_ack()
        applier.feed(STREAM[applier.fetch_lsn:])
        assert applier.ack_lsn == len(STREAM)
        assert applier.records_applied >= applied_before
        # exactly once overall: the rewound overlap held only records
        # that were buffered, never applied
        assert applier.records_applied == len(SCAN.records)
        assert applier_state(applier) == recovered_state(STREAM)

    @given(st.sampled_from(BOUNDARIES))
    def test_duplicated_delivery_never_double_applies(self, boundary):
        applier = fresh_applier()
        applier.feed(STREAM)
        assert applier.ack_lsn == len(STREAM)
        applied = applier.records_applied
        state = applier_state(applier)
        # A confused primary rewinds to an arbitrary frame boundary and
        # re-sends the whole tail: every record sits below the ack
        # watermark, so nothing may re-apply.
        applier.fetch_lsn = boundary
        applier.feed(STREAM[boundary:])
        assert applier.fetch_lsn == len(STREAM)
        assert applier.records_applied == applied
        assert applier.ack_lsn == len(STREAM)
        assert applier_state(applier) == state


class TestGarbledFrames:
    @given(st.integers(min_value=0, max_value=len(STREAM) - 1),
           st.integers(min_value=1, max_value=255))
    def test_corruption_stops_apply_at_the_same_point_as_recovery(
            self, pos, mask):
        garbled = bytearray(STREAM)
        garbled[pos] ^= mask
        garbled = bytes(garbled)
        applier = fresh_applier()
        applier.feed(garbled)  # typed outcome: parse stops, never raises
        assert applier.ack_lsn in BOUNDARIES
        assert applier.ack_lsn <= len(STREAM)
        assert applier_state(applier) == recovered_state(garbled)
        # The corruption can only hide at-or-after its own frame.
        frame_start = max(b for b in BOUNDARIES if b <= pos)
        assert applier.ack_lsn <= frame_start or pos >= applier.ack_lsn

    @given(st.binary(min_size=1, max_size=FRAME_SIZE * 3))
    def test_pure_garbage_applies_nothing(self, junk):
        applier = fresh_applier()
        res = applier.feed(junk)
        assert res.applied == 0 and res.parsed_records == 0
        assert applier.ack_lsn == 0
        assert applier_state(applier) == db_state(Database(buffer_pages=8))


class TestChunkedDeliveryWithReconnects:
    @given(st.lists(st.integers(min_value=1, max_value=len(STREAM)),
                    min_size=1, max_size=12),
           st.sets(st.integers(min_value=0, max_value=11)))
    def test_any_chunking_with_rewinds_converges(self, sizes, rewinds):
        """Deliver the stream in arbitrary windows, rewinding to the ack
        watermark (a reconnect) before seeded chunk indexes; the replica
        must land exactly on the recovered-primary state, applying each
        record exactly once."""
        applier = fresh_applier()
        i = 0
        while applier.fetch_lsn < len(STREAM) or i < len(sizes):
            if i in rewinds:
                applier.reset_to_ack()
            size = sizes[i % len(sizes)]
            applier.feed(STREAM[applier.fetch_lsn:
                                applier.fetch_lsn + size])
            i += 1
            if i > len(sizes) * 4 + 40:  # chunks too small to finish
                applier.reset_to_ack()
                applier.feed(STREAM[applier.fetch_lsn:])
                break
        assert applier.ack_lsn == len(STREAM)
        assert applier_state(applier) == recovered_state(STREAM)
        # every record applied exactly once, reconnects notwithstanding
        assert applier.records_applied == len(SCAN.records)
