"""§4.1.3 Theorem — Summary-BTree operation bounds (ablation bench).

Paper: with N classifier objects of k labels each and page fanout B,

* adding an annotation that inserts a new object costs O(k·log_B kN),
* adding one that updates an existing label costs O(2·log_B kN),
* equality search costs O(log_B kN).

The bench measures actual B-Tree node touches per operation as N grows
8× and checks the growth is logarithmic (node touches grow by ≈a
constant number of levels, not multiplicatively).
"""

import random

import pytest

from repro.bench import FigureTable, fresh_database
from repro.bench.queries import equality_constant
from repro.workload.generator import WorkloadConfig, annotation_batch

DENSITIES = (10, 25, 50, 100, 200)


def _touches_per_op(db, config, rng):
    """(search, update-insert) node touches per operation at this scale."""
    index = db.summary_indexes[("birds", "ClassBird1")]
    tree = index.tree

    constant = equality_constant(db, "Disease", 0.01)
    tree.reset_touches()
    index.lookup_eq("Disease", constant)
    search_touches = tree.touches

    oids = [oid for oid, _ in db.catalog.table("birds").scan()]
    tree.reset_touches()
    ops = 20
    for _ in range(ops):
        [(text, targets)] = annotation_batch(rng, rng.choice(oids), config, 1)
        db.manager.add_annotation(text, targets)
    update_touches = tree.touches / ops
    return search_touches, update_touches


@pytest.mark.benchmark(group="theorem-bounds")
@pytest.mark.parametrize("density", DENSITIES)
def test_logarithmic_bounds(benchmark, density, preset, figure_writer):
    if density not in preset.densities:
        pytest.skip(f"density {density} not in preset {preset.name}")
    config = WorkloadConfig(
        num_birds=preset.num_birds, annotations_per_tuple=density,
        indexes="summary_btree", cell_fraction=0.0,
    )

    def run():
        db = fresh_database(
            num_birds=config.num_birds,
            annotations_per_tuple=config.annotations_per_tuple,
            indexes="summary_btree", cell_fraction=0.0,
        )
        return _touches_per_op(db, config, random.Random(5))

    search_touches, update_touches = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    table = figure_writer.setdefault(
        "theorem_bounds",
        FigureTable(
            "Theorem §4.1.3 — B-Tree node touches per operation",
            unit="node touches",
        ),
    )
    x = preset.label(density)
    table.add("Equality search", x, search_touches)
    table.add("Annotation update", x, update_touches)
    active = [d for d in DENSITIES if d in preset.densities]
    if len(table.cells) == 2 * len(active):
        lo = table.value("Equality search", table.x_order[0])
        hi = table.value("Equality search", table.x_order[-1])
        table.note(
            f"search touches grow {lo:.0f} -> {hi:.0f} over a "
            f"{active[-1] // active[0]}x data growth"
            "  [theorem: logarithmic, +O(1) levels]"
        )
        # Logarithmic: far below linear scaling with the data growth.
        assert hi <= lo + 4 * (len(active) - 1)
