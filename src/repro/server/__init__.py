"""Query serving: asyncio TCP server + thin client (DESIGN.md §5g).

The server multiplexes concurrent clients over one
:class:`~repro.core.database.Database`; each connection owns a locking
:class:`~repro.txn.session.Session`, statements run on a worker thread
pool, and a mid-statement client hangup cancels the statement through
the cooperative path so locks are never stranded.
"""

from repro.server.client import QueryClient
from repro.server.protocol import (
    DEFAULT_PORT,
    MAX_FRAME,
    decode_length,
    decode_payload,
    encode_frame,
    jsonable_result,
)
from repro.server.server import QueryServer, serve

__all__ = [
    "DEFAULT_PORT",
    "MAX_FRAME",
    "QueryClient",
    "QueryServer",
    "decode_length",
    "decode_payload",
    "encode_frame",
    "jsonable_result",
    "serve",
]
