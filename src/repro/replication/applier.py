"""The replica-side stream applier.

A :class:`WALApplier` consumes raw WAL bytes (fed by the replication
link, or directly by tests) and re-applies them to a local database
through :func:`repro.wal.recovery.apply_record` — the same redo
interpreter crash recovery uses, so a replica's state is by construction
what a recovered primary's would be.

Two watermarks drive everything:

* ``fetch_lsn`` — the next byte offset to request from the primary.  It
  advances over every *parsed* frame, including records merely buffered.
* ``ack_lsn`` — the **committed-prefix** watermark: every record below it
  has been applied, and no record at or above it has.  This is the value
  acked to the primary (pinning log retention) and the resume point after
  any link failure: re-fetching from ``ack_lsn`` can only re-deliver
  records that were never applied, so resume is idempotent by
  construction — never a double apply.

The gap between the two is an open explicit-transaction group.  Commit
groups are appended contiguously under the primary's commit mutex, so the
applier buffers a group from its ``TXN_BEGIN`` and applies it atomically
at its ``TXN_COMMIT`` — and if any *other* record interrupts the group
(contiguity broken), the group's commit frame can never arrive: it is the
streaming image of recovery's crash-mid-commit discard, and the buffered
records are dropped without applying.

Torn tails are normal: the stream is sliced by a byte budget, so a frame
may arrive split across polls.  Unparseable bytes simply stop the scan;
:meth:`feed` reports zero progress and the link decides whether that is
a short read (re-poll), a frame bigger than the window (grow it), or
divergence (re-bootstrap).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import ReproError
from repro.wal.record import WALRecordType, scan_records
from repro.wal.recovery import apply_record


@dataclass
class ApplyResult:
    """Outcome of one :meth:`WALApplier.feed` call."""

    #: complete frames parsed (applied or buffered).
    parsed_records: int
    #: bytes consumed (``fetch_lsn`` advanced by this much).
    parsed_bytes: int
    #: records actually applied to the database this feed.
    applied: int
    #: trailing bytes that did not form a valid frame.
    torn_bytes: int


class WALApplier:
    """Applies a primary's WAL byte stream to a local database."""

    def __init__(self, db, start_lsn: int):
        self.db = db
        #: committed-prefix watermark (ack + resume point).
        self.ack_lsn = start_lsn
        #: next byte offset to request from the primary.
        self.fetch_lsn = start_lsn
        #: records of the currently open explicit-txn group.
        self._group: list = []
        self._group_txn = 0
        self._cond = threading.Condition()
        #: lifetime counters (also mirrored into db.metrics).
        self.records_applied = 0
        self.txns_applied = 0
        self.groups_abandoned = 0
        self.orphan_records = 0
        self.failed_records = 0
        #: monotonic timestamp of the last ack advance (lag clock).
        self.last_advance = time.monotonic()

    # -- feeding -------------------------------------------------------------

    def feed(self, data: bytes) -> ApplyResult:
        """Parse and apply one slice of the stream starting at
        ``fetch_lsn``; returns what happened."""
        start = self.fetch_lsn
        scan = scan_records(data, start)
        applied = self._process(scan.records, scan.end_lsn)
        self.fetch_lsn = scan.end_lsn
        return ApplyResult(
            parsed_records=len(scan.records),
            parsed_bytes=scan.end_lsn - start,
            applied=applied,
            torn_bytes=scan.torn_bytes,
        )

    def _process(self, records, end_lsn: int) -> int:
        """Route records through the commit-group buffer; apply what is
        committed. Returns the number of records applied.

        Frame boundaries come from the scan's *physical* positions (the
        next record's LSN, or ``end_lsn`` for the last): re-encoding a
        decoded payload is not byte-stable, so ``WALRecord.end_lsn``
        must never feed the ack watermark.
        """
        batches: list[tuple[list, int]] = []  # (records, ack_after)
        for i, rec in enumerate(records):
            rec_end = (records[i + 1].lsn if i + 1 < len(records)
                       else end_lsn)
            if rec.lsn < self.ack_lsn:
                continue  # defensive: overlap below the applied prefix
            if self._group:
                if rec.txn_id == self._group_txn:
                    self._group.append(rec)
                    if rec.type == WALRecordType.TXN_COMMIT:
                        batches.append((self._group, rec_end))
                        self._group = []
                        self._group_txn = 0
                    continue
                # Contiguity broken: the group's commit frame can never
                # arrive (groups append atomically under the primary's
                # commit mutex) — the primary crashed mid-commit. Drop
                # the buffered records, exactly like recovery does.
                self.groups_abandoned += 1
                self._group = []
                self._group_txn = 0
            if rec.txn_id == 0:
                batches.append(([rec], rec_end))
            elif rec.type == WALRecordType.TXN_BEGIN:
                self._group = [rec]
                self._group_txn = rec.txn_id
            else:
                # A txn record with no open group: its BEGIN sits below
                # our start point, so the group was already folded into
                # the bootstrap snapshot (or discarded). Never apply a
                # partial group.
                self.orphan_records += 1
        if not batches:
            return 0
        return self._apply_batches(batches)

    def _apply_batches(self, batches) -> int:
        db = self.db
        applied = 0
        ack = self.ack_lsn
        with db._commit_mutex:
            db._wal_replaying = True
            try:
                for records, ack_after in batches:
                    group = records[0].txn_id != 0
                    for rec in records:
                        try:
                            apply_record(db, rec)
                        except ReproError:
                            # A record of an originally-failed statement:
                            # recovery skips these too.
                            self.failed_records += 1
                        applied += 1
                    if group:
                        self.txns_applied += 1
                    ack = ack_after
            finally:
                db._wal_replaying = False
            db._applied_lsn = max(db._applied_lsn, ack)
        # Drain-on-apply: replayed annotation writes marked their tuples
        # stale; fold the regeneration in now so replica reads serve
        # fully maintained summaries at every ack point.
        db.manager.drain_pending()
        self.records_applied += applied
        with self._cond:
            self.ack_lsn = ack
            self.last_advance = time.monotonic()
            self._cond.notify_all()
        metrics = getattr(db, "metrics", None)
        if metrics is not None:
            metrics.inc("repl.records_applied", applied)
            metrics.set_gauge("repl.applied_lsn", ack)
        return applied

    # -- resume / re-bootstrap ----------------------------------------------

    def reset_to_ack(self) -> None:
        """Link failure: drop any buffered group and rewind the fetch
        point to the applied prefix. The re-fetched overlap contains only
        records that were never applied."""
        self._group = []
        self._group_txn = 0
        self.fetch_lsn = self.ack_lsn

    def reset(self, lsn: int) -> None:
        """Re-bootstrap: both watermarks jump to a fresh snapshot's LSN."""
        self._group = []
        self._group_txn = 0
        with self._cond:
            self.ack_lsn = lsn
            self.fetch_lsn = lsn
            self.last_advance = time.monotonic()
            self._cond.notify_all()

    # -- bounded-staleness waits ---------------------------------------------

    def wait_for_lsn(self, lsn: int, timeout: float = 0.0) -> int:
        """Block until the applied prefix reaches ``lsn`` (or the timeout
        passes); returns the applied LSN either way."""
        with self._cond:
            if timeout > 0:
                self._cond.wait_for(
                    lambda: self.ack_lsn >= lsn, timeout=timeout
                )
            return self.ack_lsn
