"""Runtime tuples flowing through the operator pipeline.

A :class:`QTuple` carries its data values (qualified ``alias.column``
names), a per-alias view of its summary sets, and the (table, oid)
provenance of each contributing base tuple. After a join, every alias points
at the *same* merged :class:`~repro.summaries.functions.SummarySet` —
matching §2.2 where the join merges the summary objects of the joined
tuples — while the per-alias mapping keeps pre-merge join predicates
(``p(r.$, s.$)``) expressible.
"""

from __future__ import annotations

import pickle

from repro.errors import QueryError
from repro.summaries.functions import SummarySet


class QTuple:
    """One runtime tuple: values + summary set(s) + provenance."""

    __slots__ = ("columns", "values", "summary_sets", "provenance")

    def __init__(
        self,
        columns: list[str],
        values: list[object],
        summary_sets: dict[str, SummarySet] | None = None,
        provenance: dict[str, tuple[str, int]] | None = None,
    ):
        self.columns = columns
        self.values = values
        self.summary_sets = summary_sets or {}
        self.provenance = provenance or {}

    # -- value access --------------------------------------------------------------

    def get(self, name: str) -> object:
        """Value of a qualified (``alias.column``) or unique bare column."""
        if name in self.columns:
            return self.values[self.columns.index(name)]
        suffix = "." + name
        matches = [i for i, c in enumerate(self.columns) if c.endswith(suffix)]
        if len(matches) == 1:
            return self.values[matches[0]]
        if not matches:
            raise QueryError(f"no column {name!r} in {self.columns}")
        raise QueryError(f"ambiguous column {name!r} in {self.columns}")

    def has_column(self, name: str) -> bool:
        if name in self.columns:
            return True
        suffix = "." + name
        return sum(1 for c in self.columns if c.endswith(suffix)) == 1

    # -- summaries -------------------------------------------------------------------

    def summary_set(self, alias: str | None = None) -> SummarySet:
        """The summary set visible through ``alias.$`` (or the tuple's only
        set when no alias is given)."""
        if alias is not None:
            if alias not in self.summary_sets:
                raise QueryError(f"no summary set for alias {alias!r}")
            return self.summary_sets[alias]
        distinct = self.distinct_summary_sets()
        if len(distinct) == 1:
            return distinct[0]
        if not distinct:
            return SummarySet()
        raise QueryError("'$' is ambiguous: qualify it with an alias")

    def distinct_summary_sets(self) -> list[SummarySet]:
        seen: list[SummarySet] = []
        for s in self.summary_sets.values():
            if not any(s is other for other in seen):
                seen.append(s)
        return seen

    def merged_summary_set(self) -> SummarySet:
        """One merged set over all aliases (what the user sees propagated)."""
        distinct = self.distinct_summary_sets()
        if not distinct:
            return SummarySet()
        merged = distinct[0]
        if len(distinct) > 1:
            merged = merged.copy()
            for other in distinct[1:]:
                merged.merge(other)
        return merged

    # -- construction helpers ------------------------------------------------------------

    def copy(self) -> "QTuple":
        """Copy with *copied* summary sets (safe for operator mutation)."""
        copies: dict[int, SummarySet] = {}
        new_sets = {}
        for alias, s in self.summary_sets.items():
            if id(s) not in copies:
                copies[id(s)] = s.copy()
            new_sets[alias] = copies[id(s)]
        return QTuple(list(self.columns), list(self.values), new_sets,
                      dict(self.provenance))

    @staticmethod
    def join(left: "QTuple", right: "QTuple") -> "QTuple":
        """Concatenate values and merge summary sets (§2.2 join semantics).

        The merge deduplicates annotations attached to tuples on both sides;
        instances present on only one side propagate unchanged.
        """
        merged = left.merged_summary_set().copy()
        merged.merge(right.merged_summary_set())
        sets = {alias: merged for alias in
                list(left.summary_sets) + list(right.summary_sets)}
        return QTuple(
            left.columns + right.columns,
            left.values + right.values,
            sets,
            {**left.provenance, **right.provenance},
        )

    # -- serialization (external sort spills) ------------------------------------------------

    def to_bytes(self) -> bytes:
        """Spill encoding for external-sort runs.

        Pickle keeps every value type-faithful (tuples stay tuples, bytes
        stay bytes — JSON silently converted or crashed on both) and its
        memo preserves shared SummarySet identity across aliases, which
        ``distinct_summary_sets`` relies on. Spill bytes never leave the
        process's own temporary heap pages, so unpickling reads only what
        this engine just wrote.
        """
        return pickle.dumps(
            (self.columns, self.values, self.summary_sets, self.provenance),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    @staticmethod
    def from_bytes(data: bytes) -> "QTuple":
        columns, values, summary_sets, provenance = pickle.loads(data)
        return QTuple(columns, values, summary_sets, provenance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ", ".join(f"{c}={v!r}" for c, v in zip(self.columns, self.values))
        return f"QTuple({pairs})"
