"""Trigram keyword index over snippet text: candidate superset property,
incremental maintenance, planner side conditions, and scan equivalence in
snippet-only search mode."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Column, Database, ValueType
from repro.index.keyword import TrigramKeywordIndex, trigrams

LONG_PAD = " with enough padding words to cross the snippet threshold"

TEXTS = {
    "a": "the experiment was documented in the wikipedia archive",
    "b": "a wetland survey note with no special terms inside here",
    "c": "another experiment log kept in the archive for reference",
    "d": "wikipedia editors reviewed the wetland experiment pages",
}


def make_db(with_index: bool = True):
    db = Database()
    db.create_table("t", [Column("name", ValueType.TEXT)])
    db.create_snippet_instance("S", min_chars=40, max_chars=400)
    db.manager.link("t", "S")
    oids = {}
    for name, text in TEXTS.items():
        oid = db.insert("t", {"name": name})
        oids[name] = oid
        db.add_annotation(text + LONG_PAD, table="t", oid=oid)
    if with_index:
        db.create_keyword_index("t", "S")
    db.analyze("t")
    return db, oids


class TestTrigrams:
    def test_basic_decomposition(self):
        assert trigrams("abcd") == {"abc", "bcd"}

    def test_lowercased(self):
        assert trigrams("ABC") == {"abc"}

    def test_too_short(self):
        assert trigrams("ab") == set()
        assert trigrams("") == set()

    @given(st.text(alphabet="abcdef ", min_size=3, max_size=30))
    @settings(max_examples=50)
    def test_substring_implies_trigram_subset(self, text):
        # The superset property the access path relies on: if kw is a
        # substring of text, every trigram of kw is a trigram of text.
        for start in range(len(text) - 2):
            kw = text[start:start + 5]
            if len(kw) >= 3:
                assert trigrams(kw) <= trigrams(text)


class TestCandidates:
    def test_candidates_cover_true_matches(self):
        db, oids = make_db()
        index = db.keyword_indexes[("t", "S")]
        candidates = index.candidates(["experiment", "archive"])
        assert {oids["a"], oids["c"]} <= candidates

    def test_no_match_empty(self):
        db, _ = make_db()
        index = db.keyword_indexes[("t", "S")]
        assert index.candidates(["zzzqqq"]) == set()

    def test_short_keyword_unusable(self):
        db, _ = make_db()
        index = db.keyword_indexes[("t", "S")]
        assert index.candidates(["ab"]) is None

    def test_multi_keyword_intersection(self):
        db, oids = make_db()
        index = db.keyword_indexes[("t", "S")]
        both = index.candidates(["wikipedia", "wetland"])
        assert oids["d"] in both
        assert oids["b"] not in both  # has wetland but not wikipedia


class TestMaintenance:
    def test_new_annotation_indexed(self):
        db, _ = make_db()
        index = db.keyword_indexes[("t", "S")]
        oid = db.insert("t", {"name": "e"})
        db.add_annotation("a freshly added zebra sighting" + LONG_PAD,
                          table="t", oid=oid)
        assert oid in index.candidates(["zebra"])

    def test_tuple_delete_removes_postings(self):
        db, oids = make_db()
        index = db.keyword_indexes[("t", "S")]
        db.delete_tuple("t", oids["a"])
        candidates = index.candidates(["experiment"])
        assert oids["a"] not in candidates

    def test_annotation_delete_reindexes(self):
        db, _ = make_db()
        index = db.keyword_indexes[("t", "S")]
        oid = db.insert("t", {"name": "f"})
        ann = db.add_annotation("temporary quagga report" + LONG_PAD,
                                table="t", oid=oid)
        assert oid in index.candidates(["quagga"])
        db.delete_annotation(ann.ann_id)
        assert oid not in index.candidates(["quagga"])

    def test_duplicate_index_rejected(self):
        db, _ = make_db()
        with pytest.raises(Exception):
            db.create_keyword_index("t", "S")


class TestAccessPath:
    QUERY = (
        "Select name From t r Where "
        "r.$.getSummaryObject('S').containsUnion('experiment', 'archive')"
    )

    def run(self, db, force=None):
        db.options.force_access = force
        try:
            return sorted(t.get("name") for t in db.sql(self.QUERY).tuples)
        finally:
            db.options.force_access = None

    def test_index_equivalent_to_scan_snippet_mode(self):
        db, _ = make_db()
        db.options.search_raw = False
        via_index = self.run(db, force="index")
        via_scan = self.run(db)
        db.options.search_raw = True
        assert via_index == via_scan == ["a", "c"]

    def test_plan_uses_keyword_index_when_forced(self):
        db, _ = make_db()
        db.options.search_raw = False
        db.options.force_access = "index"
        report = db.explain(self.QUERY)
        db.options.force_access = None
        db.options.search_raw = True
        assert "KeywordIndexScan" in report.physical

    def test_not_used_in_raw_search_mode(self):
        # With search_raw on, predicates consult raw annotations the index
        # does not cover — the planner must not offer it.
        db, _ = make_db()
        db.options.force_access = "index"
        report = db.explain(self.QUERY)
        db.options.force_access = None
        assert "KeywordIndexScan" not in report.physical

    def test_not_used_for_short_keywords(self):
        db, _ = make_db()
        db.options.search_raw = False
        db.options.force_access = "index"
        report = db.explain(
            "Select name From t r Where "
            "r.$.getSummaryObject('S').containsUnion('ab')"
        )
        db.options.force_access = None
        db.options.search_raw = True
        assert "KeywordIndexScan" not in report.physical

    def test_contains_single_served_too(self):
        db, _ = make_db()
        db.options.search_raw = False
        db.options.force_access = "index"
        got = sorted(
            t.get("name") for t in db.sql(
                "Select name From t r Where r.$.getSummaryObject('S')"
                ".containsSingle('experiment', 'wikipedia')"
            ).tuples
        )
        db.options.force_access = None
        via_scan = sorted(
            t.get("name") for t in db.sql(
                "Select name From t r Where r.$.getSummaryObject('S')"
                ".containsSingle('experiment', 'wikipedia')"
            ).tuples
        )
        db.options.search_raw = True
        assert got == via_scan == ["a", "d"]

    def test_substring_keywords_still_exact(self):
        # 'experimen' is a strict substring of 'experiment': the trigram
        # pre-filter must not lose it, and the residual keeps exactness.
        db, _ = make_db()
        db.options.search_raw = False
        db.options.force_access = "index"
        got = sorted(
            t.get("name") for t in db.sql(
                "Select name From t r Where "
                "r.$.getSummaryObject('S').containsUnion('experimen')"
            ).tuples
        )
        db.options.force_access = None
        db.options.search_raw = True
        assert got == ["a", "c", "d"]
