"""The Summary-BTree index (§4.1).

A B-Tree over itemized ``label:count`` keys built directly on the
de-normalized summary storage — no replication, no normalization. Leaf
entries carry **backward pointers**: the heap location of the annotated data
tuple in relation ``R`` itself, obtained through the engine-internal
``disk_tuple_loc()`` (Table's OID index), rather than a pointer into
``R_SummaryStorage``. When summary propagation is not required, this saves
the join with the SummaryStorage table entirely (Figure 13's up-to-4x win).

The index subscribes to :class:`~repro.summaries.maintenance.SummaryManager`
events, implementing exactly the maintenance cases of §4.1.2:

* *Adding Annotation — Insertion*: itemize all ``k`` labels, insert each
  (cost ``O(k·log_B kN + log_B M)``).
* *Adding Annotation — Update*: delete + re-insert only the modified label
  keys (cost ``O(2·log_B kN + log_B M)`` per changed label).
* *Deleting tuple*: remove every key of the tuple's object.

For the Figure 13 ablation the index can also be built with *conventional*
pointers that reference the SummaryStorage row instead.
"""

from __future__ import annotations

import struct
from typing import Iterator, NamedTuple

from repro.btree import BTree
from repro.catalog.table import Table
from repro.errors import IndexError_, ReproError
from repro.index.itemize import (
    DEFAULT_WIDTH,
    itemize,
    max_count,
    probe_range,
)
from repro.storage.heapfile import RID
from repro.summaries.objects import ClassifierObject
from repro.summaries.storage import SummaryStorage

_POINTER = struct.Struct("<qIH")  # oid, page_no, slot


class IndexPointer(NamedTuple):
    """What a Summary-BTree leaf entry points at."""

    oid: int
    rid: RID  # heap location: in R (backward) or SummaryStorage (conventional)


def _pack(oid: int, rid: RID) -> bytes:
    return _POINTER.pack(oid, rid.page_no, rid.slot)


def _unpack(data: bytes) -> IndexPointer:
    oid, page_no, slot = _POINTER.unpack(data)
    return IndexPointer(oid, RID(page_no, slot))


class SummaryBTreeIndex:
    """Classifier-type index over one (table, summary instance) pair.

    Parameters
    ----------
    table:
        The user relation ``R`` whose classifier objects are indexed.
    storage:
        ``R``'s SummaryStorage (needed for rebuilds and for conventional
        pointers).
    instance_name:
        The Classifier summary instance being indexed.
    backward_pointers:
        True (default, the paper's scheme) points leaf entries at the data
        tuples in ``R``; False points at the SummaryStorage rows.
    """

    def __init__(
        self,
        table: Table,
        storage: SummaryStorage,
        instance_name: str,
        backward_pointers: bool = True,
        width: int = DEFAULT_WIDTH,
    ):
        self.table = table
        self.storage = storage
        self.instance_name = instance_name
        self.backward_pointers = backward_pointers
        self.width = width
        self.tree = BTree(table.pool)
        #: Number of automatic key-width rebuilds performed (footnote 1).
        self.rebuilds = 0
        #: Number of lookup_eq / lookup_range probes served (Figure 11/12
        #: observability; surfaced via Database.metrics_snapshot()).
        self.probes = 0

    # -- size accounting (Figure 7) ------------------------------------------------

    def pages_used(self) -> int:
        """Index node pages — this scheme adds nothing else."""
        return self.tree.node_count()

    def __len__(self) -> int:
        return len(self.tree)

    # -- pointer construction ----------------------------------------------------------

    def _pointer_for(self, oid: int) -> bytes:
        if self.backward_pointers:
            # Backward referencing: resolve the data tuple's heap location
            # via disk_tuple_loc() (one O(log_B M) OID-index probe).
            return _pack(oid, self.table.disk_tuple_loc(oid))
        rid = self.storage._rid_for(oid)
        if rid is None:
            raise IndexError_(f"no summary row for OID {oid}")
        return _pack(oid, rid)

    # -- SummaryObserver protocol (maintenance, §4.1.2) -----------------------------------

    def on_summary_insert(self, oid: int, obj: ClassifierObject) -> None:
        """Adding Annotation — Insertion: index all k itemized keys."""
        if self._check_width(max((c for _, c in obj.rep()), default=0)):
            return  # the rebuild re-indexed everything, this object included
        pointer = self._pointer_for(oid)
        for label, count in obj.rep():
            self.tree.insert(itemize(label, count, self.width).encode(), pointer)

    def on_summary_update(
        self, oid: int, old_counts: dict[str, int], new_counts: dict[str, int]
    ) -> None:
        """Adding Annotation — Update: re-key only the modified labels."""
        if self._check_width(max(new_counts.values(), default=0)):
            return  # the rebuild re-indexed everything at the new width
        pointer = self._pointer_for(oid)
        for label, new_count in new_counts.items():
            old_count = old_counts.get(label)
            if old_count == new_count:
                continue
            if old_count is not None:
                self.tree.delete(
                    itemize(label, old_count, self.width).encode(), pointer
                )
            self.tree.insert(
                itemize(label, new_count, self.width).encode(), pointer
            )

    def on_tuple_delete(self, oid: int, counts: dict[str, int]) -> None:
        """Deleting tuple: drop every index entry of its object."""
        pointer = self._pointer_for(oid)
        for label, count in counts.items():
            self.tree.delete(itemize(label, count, self.width).encode(), pointer)

    # -- bulk build ----------------------------------------------------------------------

    def bulk_build(self) -> int:
        """Index every existing classifier object (initial upload mode).

        Returns the number of keys inserted.
        """
        inserted = 0
        for oid, objects in self.storage.scan():
            obj = objects.get(self.instance_name)
            if isinstance(obj, ClassifierObject):
                self.on_summary_insert(oid, obj)
                inserted += len(obj.rep())
        return inserted

    def rebuild(self) -> int:
        """Discard the tree and re-derive it from the summary storage
        (repair path). Backward pointers are re-resolved through
        ``disk_tuple_loc()``, so a repaired OID index re-anchors every
        leaf entry. Returns the number of keys inserted.

        Unlike the width rebuilds of :meth:`_check_width` this does not
        count toward ``rebuilds`` (that counter measures footnote 1's
        automatic key widening, not healing).
        """
        try:
            self.tree.drop()
        except ReproError:
            pass  # corrupt tree: abandon its pages rather than fail repair
        self.tree = BTree(self.table.pool)
        return self.bulk_build()

    # -- querying (§4.1.2 Summary-BTree Querying) ------------------------------------------

    def lookup_eq(self, label: str, count: int) -> list[IndexPointer]:
        """Equality probe: ``classLabel = constant``."""
        self.probes += 1
        key = itemize(label, count, self.width).encode()
        return [_unpack(v) for v in self.tree.search(key)]

    def lookup_range(
        self,
        label: str,
        lo: int | None = None,
        hi: int | None = None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> Iterator[tuple[int, IndexPointer]]:
        """Range probe; yields ``(count, pointer)`` in ascending count order.

        This ordered traversal is what gives queries an *interesting order*
        on the indexed label (§5.1 Rules 3–6): a sort on the label count can
        be satisfied directly from the index scan.
        """
        # Count the probe at call time, not at first consumption: callers
        # that plan but never pull rows still performed the B-Tree descent.
        self.probes += 1
        lo_key, hi_key = probe_range(label, lo, hi, self.width)

        def scan() -> Iterator[tuple[int, IndexPointer]]:
            for key, value in self.tree.range_scan(
                lo_key.encode(), hi_key.encode(), lo_inclusive, hi_inclusive
            ):
                count = int(key.decode().rsplit(":", 1)[1])
                yield count, _unpack(value)

        return scan()

    # -- automatic key widening (footnote 1) ------------------------------------------------

    def _check_width(self, needed_count: int) -> bool:
        """Widen + rebuild when ``needed_count`` no longer fits.

        Returns True when a rebuild happened (callers must not re-insert:
        the rebuild already indexed the current storage contents).
        """
        if needed_count <= max_count(self.width):
            return False
        new_width = self.width
        while needed_count > max_count(new_width):
            new_width += 1
        self._rebuild(new_width)
        return True

    def _rebuild(self, new_width: int) -> None:
        """Re-itemize every key at a wider count format.

        The new width is sized over the whole storage so the rebuild cannot
        re-trigger itself mid-build.
        """
        for _, objects in self.storage.scan():
            obj = objects.get(self.instance_name)
            if isinstance(obj, ClassifierObject):
                top = max((c for _, c in obj.rep()), default=0)
                while top > max_count(new_width):
                    new_width += 1
        self.tree.drop()
        self.tree = BTree(self.table.pool)
        self.width = new_width
        self.rebuilds += 1
        self.bulk_build()
