"""The interactive shell's command layer (``python -m repro``)."""

import pytest

from repro import Column, Database, ValueType
from repro.cli import execute_line


@pytest.fixture()
def db():
    database = Database()
    database.create_table("t", [Column("name", ValueType.TEXT)])
    database.insert("t", {"name": "swan"})
    return database


class TestSql:
    def test_select_prints_table_and_timing(self, db):
        out = execute_line(db, "Select name From t")
        assert "swan" in out
        assert "1 rows" in out

    def test_ddl_and_insert(self, db):
        assert execute_line(db, "Create Table u (id int)") == "ok"
        assert execute_line(db, "Insert Into u (id) Values (1)") == "ok"
        assert "1 rows" in execute_line(db, "Select * From u")

    def test_explain(self, db):
        out = execute_line(db, "EXPLAIN Select name From t")
        assert "logical" in out and "SeqScan" in out

    def test_zoom_output(self, db):
        db.create_classifier_instance(
            "C", ["A", "B"], [("alpha apple", "A"), ("beta ball", "B")]
        )
        db.manager.link("t", "C")
        db.add_annotation("alpha apple pie", table="t", oid=1)
        out = execute_line(db, "Zoom In t 1 C 'A'")
        assert "alpha apple pie" in out

    def test_dml_reports_row_counts(self, db):
        db.insert("t", {"name": "extra"})
        out = execute_line(db, "Delete From t Where name = 'extra'")
        assert out == "1 rows affected"
        out = execute_line(db, "Update t Set name = 'renamed'")
        assert "1 rows affected" in out

    def test_empty_line(self, db):
        assert execute_line(db, "   ") == ""


class TestCommands:
    def test_help(self, db):
        assert "\\demo" in execute_line(db, "\\help")

    def test_tables(self, db):
        assert "t" in execute_line(db, "\\tables")

    def test_instances(self, db):
        db.create_classifier_instance(
            "C", ["A"], [("alpha", "A")]
        )
        db.manager.link("t", "C")
        out = execute_line(db, "\\instances")
        assert "C (Classifier) -> t" in out

    def test_stats(self, db):
        db.analyze("t")
        out = execute_line(db, "\\stats t")
        assert "rows=1" in out

    def test_set_boolean_option(self, db):
        out = execute_line(db, "\\set enable_rules false")
        assert db.options.enable_rules is False
        assert "enable_rules = False" in out
        execute_line(db, "\\set enable_rules true")
        assert db.options.enable_rules is True

    def test_set_string_and_none(self, db):
        execute_line(db, "\\set force_join nloop")
        assert db.options.force_join == "nloop"
        execute_line(db, "\\set force_join none")
        assert db.options.force_join is None

    def test_set_unknown_option(self, db):
        assert "unknown option" in execute_line(db, "\\set bogus 1")

    def test_unknown_command(self, db):
        assert "unknown command" in execute_line(db, "\\frobnicate")

    def test_quit_raises_eof(self, db):
        with pytest.raises(EOFError):
            execute_line(db, "\\quit")

    def test_demo_loads_workload(self, db):
        out = execute_line(db, "\\demo 6 4")
        assert "6 birds" in out
        result = execute_line(db, "Select count(*) n From birds")
        assert "6" in result
        # summary queries work on the demo data
        out = execute_line(
            db,
            "Select common_name From birds r Where "
            "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') "
            ">= 0 Limit 2",
        )
        assert "rows" in out
