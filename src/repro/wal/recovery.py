"""Crash recovery: replay the WAL tail onto a checkpoint image.

Recovery is redo-only and logical: each record re-invokes the same engine
operation that produced it, with the identifiers the original execution
assigned (OIDs, annotation ids) forced so the replayed state is
byte-for-byte the state the crashed engine had acknowledged.

The idempotency rule is LSN-based: records below
``max(checkpoint_lsn, applied_lsn)`` were already folded into the image
(or into a previous replay of this same process) and are skipped, so
running recovery twice over the same log is a no-op. A record whose
re-application raises an engine error is counted and skipped — that
happens only for records of statements that *failed* after being framed
(the original execution raised too, so skipping reproduces it).

The torn tail — trailing bytes that do not form a CRC-valid,
correctly-positioned frame — is truncated from the device, never
replayed: a partially synced frame is the clean end of the log.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.wal.record import WALRecord, WALRecordType, scan_records


@dataclass
class RecoveryReport:
    """Outcome of one replay pass."""

    checkpoint_lsn: int
    start_lsn: int      #: records below this were skipped as already applied
    end_lsn: int        #: log offset one past the last valid frame
    scanned: int = 0
    replayed: int = 0
    skipped: int = 0
    #: records whose re-application raised (originally-failed statements).
    failed: int = 0
    #: torn-tail bytes truncated from the device.
    torn_bytes: int = 0

    def __str__(self) -> str:
        return (
            f"recovery: {self.replayed} replayed, {self.skipped} skipped, "
            f"{self.failed} failed of {self.scanned} scanned "
            f"(lsn {self.start_lsn}..{self.end_lsn}, "
            f"torn tail {self.torn_bytes}B)"
        )


def apply_record(db, record: WALRecord) -> None:
    """Re-apply one logical record against a live database.

    DDL goes back through the Database facade (the replay guard keeps it
    from re-logging); DML goes to the owning structure with the original
    identifiers forced.
    """
    rtype, p = record.type, record.payload
    if rtype == WALRecordType.DDL:
        getattr(db, p["method"])(*p["args"], **p["kwargs"])
    elif rtype == WALRecordType.INSERT:
        db.catalog.table(p["table"]).insert(p["values"], oid=p["oid"])
    elif rtype == WALRecordType.DELETE:
        db.manager.on_tuple_delete(p["table"], p["oid"])
        db.catalog.table(p["table"]).delete(p["oid"])
    elif rtype == WALRecordType.UPDATE:
        db.catalog.table(p["table"]).update(p["oid"], p["values"])
        db.statistics.mark_stale(p["table"])
    elif rtype == WALRecordType.ANN_ADD:
        db.manager.add_annotation(p["text"], p["targets"], ann_id=p["ann_id"])
    elif rtype == WALRecordType.ANN_DEL:
        db.manager.delete_annotation(p["ann_id"])
    else:  # pragma: no cover - scan_records only yields known types
        raise ReproError(f"unknown WAL record type {rtype}")


def replay(db, device) -> RecoveryReport:
    """Replay the durable tail of ``device`` onto ``db``.

    Truncates any torn tail from the device so future appends extend a
    clean log, and advances ``db._applied_lsn`` past everything replayed.
    """
    start_lsn = max(db.checkpoint_lsn, db._applied_lsn, device.base_lsn)
    scan = scan_records(device.durable(), device.base_lsn)
    report = RecoveryReport(
        checkpoint_lsn=db.checkpoint_lsn,
        start_lsn=start_lsn,
        end_lsn=scan.end_lsn,
        scanned=len(scan.records),
        torn_bytes=scan.torn_bytes,
    )
    db._wal_replaying = True
    try:
        for record in scan.records:
            if record.lsn < start_lsn:
                report.skipped += 1
                continue
            try:
                apply_record(db, record)
                report.replayed += 1
            except ReproError:
                report.failed += 1
    finally:
        db._wal_replaying = False
    if scan.torn_bytes:
        device.discard_after(scan.end_lsn)
    db._applied_lsn = max(db._applied_lsn, scan.end_lsn)
    cache = getattr(db.manager, "cache", None)
    if cache is not None:
        # Replay mutated state through every layer; nothing cached before
        # (or during) recovery may be served after it.
        cache.bump_all("recover")
    db.metrics.inc("recovery.runs")
    db.metrics.inc("recovery.records_replayed", report.replayed)
    db.metrics.inc("recovery.records_skipped", report.skipped)
    db.metrics.inc("recovery.records_failed", report.failed)
    db.metrics.inc("recovery.torn_bytes", report.torn_bytes)
    return report
