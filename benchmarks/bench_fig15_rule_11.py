"""Figure 15 — effectiveness of transformation Rule 11.

Paper: relation T is an indexed 1-1 replica of Birds; the query combines a
data join (Birds ⋈ T on the birds' identifier) with a summary-based join
J between Birds and Synonyms (no summary index applies to the join
predicate).  The default plan evaluates the expensive summary join first
with a block nested-loop and only then data-joins the (large) output with
T; Rule 11 switches the order so the index-based data join runs first —
≈3.5× faster.

Setup notes: Synonyms here carries the ClassBird1 instance (the paper
joins on the relations' *combined* summary objects) with an annotation
density that scales with the sweep.  The join predicate compares disease
counts with ``>`` — a stable ≈50% pair selectivity at every density — so
the summary join's output (and hence the cost the rule avoids re-joining)
stays large across the whole sweep, as in the paper.
"""

import random

import pytest

from repro.bench import FigureTable, fresh_database
from repro.bench.queries import CLASS_EXPR
from repro.catalog.schema import Column
from repro.storage.record import ValueType
from repro.workload.generator import WorkloadConfig, annotation_batch

_DBS: dict[tuple[int, int], object] = {}

QUERY = (
    "Select r.common_name From birds r, synonyms s, t_rep t "
    "Where r.aou_id = t.aou_id And "
    f"r.{CLASS_EXPR}('Disease') > s.{CLASS_EXPR}('Disease')"
)


def _db_with_replica(preset, density):
    """Workload database + t_rep (indexed replica of Birds' identifiers) +
    ClassBird1 summaries on Synonyms (needed for a genuine two-sided J)."""
    key = (preset.num_birds, density)
    if key in _DBS:
        return _DBS[key]
    db = fresh_database(
        num_birds=preset.num_birds, annotations_per_tuple=density,
        indexes="summary_btree", cell_fraction=0.0,
    )
    db.manager.link("synonyms", "ClassBird1")
    rng = random.Random(31)
    config = WorkloadConfig(cell_fraction=0.0)
    for oid, _values in list(db.catalog.table("synonyms").scan()):
        count = max(1, density // 5)
        db.add_annotations_bulk(
            annotation_batch(rng, oid, config, count, table="synonyms")
        )
    db.create_table("t_rep", [
        Column("aou_id", ValueType.INT),
        Column("alt_name", ValueType.TEXT),
    ])
    db.create_index("t_rep", "aou_id")
    birds_schema = db.catalog.table("birds").schema
    for _oid, values in list(db.catalog.table("birds").scan()):
        row = birds_schema.dict_from_row(values)
        db.insert("t_rep", {"aou_id": row["aou_id"],
                            "alt_name": row["common_name"]})
    db.analyze("birds")
    db.analyze("synonyms")
    db.analyze("t_rep")
    _DBS[key] = db
    return db


@pytest.mark.benchmark(group="fig15-rule-11")
@pytest.mark.parametrize("mode", ["Optimization-Disabled",
                                  "Optimization-Enabled"])
@pytest.mark.parametrize("density", [10, 50, 200])
def test_rule_11(benchmark, case, mode, density, preset, figure_writer):
    if density not in preset.densities:
        pytest.skip(f"density {density} not in preset {preset.name}")
    db = _db_with_replica(preset, density)
    enabled = mode == "Optimization-Enabled"
    db.options.enable_rules = enabled
    # The paper's default plan runs both joins as block nested-loops; the
    # optimized plan is free to use the index on T's identifier column.
    db.options.force_join = None if enabled else "nloop"
    try:
        m = case(db, lambda: db.sql(QUERY), rounds=1)
    finally:
        db.options.enable_rules = True
        db.options.force_join = None

    table = figure_writer.setdefault(
        "fig15_rule_11",
        FigureTable("Figure 15 — Rule 11 join-order switch", unit="ms"),
    )
    table.add_measurement(mode, preset.label(density), m)
    active = [d for d in (10, 50, 200) if d in preset.densities]
    if len(table.cells) == 2 * len(active):
        table.note_ratio(
            "Optimization-Disabled", "Optimization-Enabled", "about 3.5x"
        )
