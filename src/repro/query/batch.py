"""Column-batch carriers for the vectorized executor.

A :class:`Batch` is the unit of work flowing between physical operators in
batch mode (``Database(batch_exec=True)`` / ``REPRO_BATCH_EXEC``): the same
qualified column names a :class:`~repro.query.tuples.QTuple` carries, but
with the values held column-major, plus per-row summary-set and provenance
slots. Batches produced by the scans keep their summary slots *lazy* — the
SummaryStorage row of a tuple is only decoded into
:class:`~repro.summaries.objects.SummaryObject` instances when some
consumer actually asks for that row's sets (``row(i)`` / ``to_rows()``).
Vectorized summary predicates answer ``getSummaryObject(I).getLabelValue(L)``
chains straight from the storage layer's raw fast path
(:meth:`~repro.summaries.storage.SummaryStorage.label_count`) instead,
so filtered-out rows never pay object construction.

Batches are sized to the resilience layer's checkpoint cadence
(:data:`~repro.resilience.context.BATCH_ROWS`): one deadline/cancellation
check per batch preserves the "within one batch" overrun bound of tuple
mode.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.query.tuples import QTuple
from repro.resilience.context import BATCH_ROWS
from repro.storage.record import LazyColumn
from repro.summaries.functions import SummarySet


class EagerSummaries:
    """Summary column over already-built per-row summary-set dicts."""

    __slots__ = ("sets",)

    def __init__(self, sets: list):
        self.sets = sets

    def get(self, i: int) -> dict:
        return self.sets[i]

    def take(self, indices) -> "EagerSummaries":
        return EagerSummaries([self.sets[i] for i in indices])

    def label_values(self, expr, eval_ctx, active, row_fn):
        return None  # no fast path: evaluate per row on the built sets


class LazyScanSummaries:
    """Summary column of a scan batch: OIDs now, objects on demand.

    ``get(i)`` mirrors ``_make_tuple``'s summary handling exactly — read
    through :meth:`SummaryManager.summary_set_for`, then apply the retained
    column projection (annotation-effect elimination) — and memoizes the
    result so every row view of the batch shares one set, just as a single
    QTuple would in tuple mode.
    """

    __slots__ = ("ctx", "table", "alias", "oids", "with_summaries",
                 "retained", "_memo", "_label_memo")

    def __init__(self, ctx, table, alias, oids, with_summaries, retained,
                 memo=None, label_memo=None):
        self.ctx = ctx
        self.table = table
        self.alias = alias
        self.oids = oids
        self.with_summaries = with_summaries
        self.retained = retained
        self._memo: dict[int, dict] = memo if memo is not None else {}
        #: (oid, instance, label) -> (status, value); shared across takes
        #: so a multi-conjunct predicate probes storage once per row.
        self._label_memo: dict[tuple, tuple] = (
            label_memo if label_memo is not None else {}
        )

    def get(self, i: int) -> dict:
        sets = self._memo.get(i)
        if sets is None:
            if self.with_summaries:
                summaries = self.ctx.manager.summary_set_for(
                    self.table, self.oids[i]
                )
                if self.retained is not None:
                    summaries.project_to_columns(self.retained)
            else:
                summaries = SummarySet()
            sets = {self.alias: summaries}
            self._memo[i] = sets
        return sets

    def take(self, indices) -> "LazyScanSummaries":
        memo = {}
        for new_i, old_i in enumerate(indices):
            hit = self._memo.get(old_i)
            if hit is not None:
                memo[new_i] = hit
        return LazyScanSummaries(
            self.ctx, self.table, self.alias,
            [self.oids[i] for i in indices],
            self.with_summaries, self.retained, memo, self._label_memo,
        )

    def label_values(self, expr, eval_ctx, active, row_fn):
        """Vectorized ``alias.$.getSummaryObject(I).getLabelValue(L)``.

        Returns a per-row value list (non-active slots stay None) or None
        when the chain doesn't match the fast-path shape. Rows the storage
        layer can't answer raw (non-classifier objects, rollup labels)
        fall back to full per-row evaluation — identical semantics,
        tuple-mode cost.
        """
        if expr.alias is not None and expr.alias != self.alias:
            return None
        if (self.retained is not None
                and self.ctx.manager.has_cell_annotations(self.table)):
            # Annotation-effect elimination can drop cell-targeted
            # annotations, so stored counts differ from projected ones —
            # the same side condition the planner's summary-index paths
            # check. Row-level-only tables project to a no-op.
            return None
        n = len(self.oids)
        out: list[object] = [None] * n
        if not self.with_summaries:
            return out  # empty sets: the chain nullifies on every row
        chain = expr.chain
        if len(chain) != 2:
            return None
        first, second = chain
        if (first.name != "getSummaryObject" or len(first.args) != 1
                or not isinstance(first.args[0], str)):
            return None
        if (second.name != "getLabelValue" or len(second.args) != 1
                or not isinstance(second.args[0], str)):
            return None
        instance, label = first.args[0], second.args[0]
        from repro.query.eval import evaluate_summary_expr

        storage = self.ctx.manager.storage_for(self.table)
        oids = self.oids
        memo = self._label_memo
        misses = [i for i in active
                  if (oids[i], instance, label) not in memo]
        if misses:
            hits = storage.label_counts(
                [oids[i] for i in misses], instance, label
            )
            for i, hit in zip(misses, hits):
                memo[(oids[i], instance, label)] = hit
        for i in active:
            status, value = memo[(oids[i], instance, label)]
            if status == "ok":
                out[i] = value
            else:
                out[i] = evaluate_summary_expr(expr, row_fn(i), eval_ctx)
        return out


class ScanProvenance:
    """Provenance column of a single-table scan: one dict built per ask."""

    __slots__ = ("alias", "table", "oids")

    def __init__(self, alias, table, oids):
        self.alias = alias
        self.table = table
        self.oids = oids

    def get(self, i: int) -> dict:
        return {self.alias: (self.table, self.oids[i])}

    def take(self, indices) -> "ScanProvenance":
        return ScanProvenance(
            self.alias, self.table, [self.oids[i] for i in indices]
        )


class ListProvenance:
    __slots__ = ("dicts",)

    def __init__(self, dicts: list):
        self.dicts = dicts

    def get(self, i: int) -> dict:
        return self.dicts[i]

    def take(self, indices) -> "ListProvenance":
        return ListProvenance([self.dicts[i] for i in indices])


class Batch:
    """One chunk of rows in column-major layout.

    ``cols[j][i]`` is row *i*'s value for ``columns[j]``. Row views built by
    :meth:`row` are memoized, so two asks for the same row return the same
    QTuple — summary-set identity semantics (``distinct_summary_sets`` uses
    ``is``) behave exactly as if one tuple object had flowed through the
    plan. A batch assembled from existing QTuples (``from_rows``) keeps the
    original tuple objects and hands them back verbatim.
    """

    __slots__ = ("columns", "cols", "summaries", "provenance", "_rows",
                 "_memo")

    def __init__(self, columns, cols, summaries, provenance, rows=None):
        self.columns = columns
        self.cols = cols
        self.summaries = summaries
        self.provenance = provenance
        self._rows = rows
        self._memo: dict[int, QTuple] = {}

    def __len__(self) -> int:
        if self._rows is not None:
            return len(self._rows)
        return len(self.cols[0]) if self.cols else 0

    @classmethod
    def from_rows(cls, rows: list[QTuple]) -> "Batch":
        columns = rows[0].columns
        cols = [[row.values[j] for row in rows] for j in range(len(columns))]
        return cls(
            columns, cols,
            EagerSummaries([row.summary_sets for row in rows]),
            ListProvenance([row.provenance for row in rows]),
            rows=rows,
        )

    # -- value access --------------------------------------------------------------

    def column_values(self, name: str) -> list:
        """One column's values (QTuple.get resolution: qualified name or
        unique bare suffix)."""
        from repro.errors import QueryError

        if name in self.columns:
            col = self.cols[self.columns.index(name)]
        else:
            suffix = "." + name
            matches = [i for i, c in enumerate(self.columns)
                       if c.endswith(suffix)]
            if len(matches) == 1:
                col = self.cols[matches[0]]
            elif not matches:
                raise QueryError(f"no column {name!r} in {self.columns}")
            else:
                raise QueryError(
                    f"ambiguous column {name!r} in {self.columns}"
                )
        if isinstance(col, LazyColumn):
            return col.values()
        return col

    def row(self, i: int) -> QTuple:
        if self._rows is not None:
            return self._rows[i]
        row = self._memo.get(i)
        if row is None:
            row = QTuple(
                self.columns,
                [col[i] for col in self.cols],
                self.summaries.get(i),
                self.provenance.get(i),
            )
            self._memo[i] = row
        return row

    def to_rows(self) -> list[QTuple]:
        if self._rows is not None:
            return self._rows
        return [self.row(i) for i in range(len(self))]

    def label_values(self, expr, eval_ctx, active):
        """Delegate a summary-chain column to the summary slot's fast path
        (None when only per-row evaluation can answer it)."""
        return self.summaries.label_values(expr, eval_ctx, active, self.row)

    # -- reshaping ------------------------------------------------------------------

    def take(self, indices) -> "Batch":
        """Sub-batch of the given row indices (in order)."""
        indices = [int(i) for i in indices]
        rows = None
        if self._rows is not None:
            rows = [self._rows[i] for i in indices]
        taken = Batch(
            self.columns,
            [col.take(indices) if isinstance(col, LazyColumn)
             else [col[i] for i in indices] for col in self.cols],
            self.summaries.take(indices),
            self.provenance.take(indices),
            rows=rows,
        )
        for new_i, old_i in enumerate(indices):
            hit = self._memo.get(old_i)
            if hit is not None:
                taken._memo[new_i] = hit
        return taken


def batches_from_rows(
    rows: Iterable[QTuple], batch_rows: int = BATCH_ROWS
) -> Iterator[Batch]:
    """Chunk a tuple stream into row-backed batches of ``batch_rows``.

    A mid-stream column-shape change (defensive; plans emit uniform shapes)
    flushes the current chunk early so every batch stays rectangular.
    """
    pending: list[QTuple] = []
    columns: list[str] | None = None
    for row in rows:
        if pending and row.columns != columns:
            yield Batch.from_rows(pending)
            pending = []
        if not pending:
            columns = row.columns
        pending.append(row)
        if len(pending) >= batch_rows:
            yield Batch.from_rows(pending)
            pending = []
    if pending:
        yield Batch.from_rows(pending)


def rows_from_batches(batches: Iterable[Batch]) -> Iterator[QTuple]:
    """Flatten a batch stream back into tuples (row-logic operators)."""
    for batch in batches:
        for i in range(len(batch)):
            yield batch.row(i)
