"""Baseline classifier indexing scheme (§4.1, Figure 4(c)).

The straw-man the paper compares against: the Classifier-type objects are
*normalized* — each (oid, label, count) triple becomes a row in a separate
``R_<instance>_norm`` table, plus a system-maintained derived column that
concatenates label and count — and a standard B-Tree is built on the derived
column.

The two drawbacks the paper calls out are intrinsic to this layout and
reproduce here:

1. storage is doubled (one replica in the de-normalized SummaryStorage for
   propagation, one normalized replica for indexing), and
2. reaching a data tuple from the index takes extra join hops
   (derived-index -> normalized row -> R's OID index -> R heap).

For Figure 12, :meth:`reconstruct_object` additionally rebuilds a classifier
summary object *from its normalized primitives* — the expensive propagation
path the de-normalized storage exists to avoid.
"""

from __future__ import annotations

from typing import Iterator

from repro.catalog.schema import Column, Schema
from repro.catalog.table import Table
from repro.errors import ReproError
from repro.index.itemize import DEFAULT_WIDTH, itemize, max_count
from repro.storage.buffer import BufferPool
from repro.storage.record import ValueType
from repro.summaries.objects import ClassifierObject

_NORM_SCHEMA = Schema(
    [
        Column("data_oid", ValueType.INT, nullable=False),
        Column("label", ValueType.TEXT, nullable=False),
        Column("cnt", ValueType.INT, nullable=False),
        Column("derived", ValueType.TEXT, nullable=False),
    ]
)


class BaselineClassifierIndex:
    """Normalized-table + derived-column B-Tree baseline."""

    def __init__(
        self,
        table: Table,
        instance_name: str,
        pool: BufferPool,
        width: int = DEFAULT_WIDTH,
        label_order: list[str] | None = None,
    ):
        self.table = table
        self.instance_name = instance_name
        self.width = width
        #: lookup_eq / lookup_range probes served (observability).
        self.probes = 0
        #: the classifier instance's pre-defined label order (§3.1) — Rep[]
        #: of reconstructed objects must match the stored objects exactly.
        self.label_order = label_order
        self.norm = Table(f"{table.name}_{instance_name}_norm", _NORM_SCHEMA, pool)
        # Standard B-Tree on the derived column answers the predicates; the
        # index on data_oid locates a tuple's normalized rows for maintenance
        # and reconstruction.
        self.norm.create_index("derived")
        self.norm.create_index("data_oid")

    # -- size accounting (Figure 7) -------------------------------------------------

    def pages_used(self) -> int:
        """Normalized heap pages + all index node pages: the replica cost."""
        pages = self.norm.heap.num_pages
        pages += self.norm.oid_index.node_count()
        for index in self.norm.secondary_indexes.values():
            pages += index.node_count()
        return pages

    def __len__(self) -> int:
        return len(self.norm)

    # -- SummaryObserver protocol -------------------------------------------------------

    def on_summary_insert(self, oid: int, obj: ClassifierObject) -> None:
        """De-normalization step: one normalized row per class label."""
        for label, count in obj.rep():
            self.norm.insert(
                {
                    "data_oid": oid,
                    "label": label,
                    "cnt": count,
                    "derived": itemize(label, count, self.width),
                }
            )

    def on_summary_update(
        self, oid: int, old_counts: dict[str, int], new_counts: dict[str, int]
    ) -> None:
        rows = {
            self.norm.read_dict(n)["label"]: n
            for n in self.norm.index_lookup("data_oid", oid)
        }
        for label, new_count in new_counts.items():
            if old_counts.get(label) == new_count:
                continue
            derived = itemize(label, new_count, self.width)
            if label in rows:
                self.norm.update(rows[label], {"cnt": new_count, "derived": derived})
            else:
                self.norm.insert(
                    {"data_oid": oid, "label": label, "cnt": new_count,
                     "derived": derived}
                )

    def on_tuple_delete(self, oid: int, counts: dict[str, int]) -> None:
        for norm_oid in self.norm.index_lookup("data_oid", oid):
            self.norm.delete(norm_oid)

    # -- bulk build -----------------------------------------------------------------------

    def bulk_build(self, storage) -> int:
        """Normalize + index every existing classifier object."""
        inserted = 0
        for oid, objects in storage.scan():
            obj = objects.get(self.instance_name)
            if isinstance(obj, ClassifierObject):
                self.on_summary_insert(oid, obj)
                inserted += len(obj.rep())
        return inserted

    def rebuild(self, storage) -> int:
        """Discard the normalized replica and re-derive it from the
        de-normalized storage (repair path). Returns rows inserted."""
        for tree in [self.norm.oid_index,
                     *self.norm.secondary_indexes.values()]:
            try:
                tree.drop()
            except ReproError:
                pass  # corrupt tree: abandon its pages rather than fail
        try:
            self.norm.heap.drop()
        except ReproError:
            pass
        pool = self.norm.pool
        self.norm = Table(self.norm.name, _NORM_SCHEMA, pool)
        self.norm.create_index("derived")
        self.norm.create_index("data_oid")
        return self.bulk_build(storage)

    # -- querying ----------------------------------------------------------------------------

    def lookup_eq(self, label: str, count: int) -> list[int]:
        """Data-tuple OIDs with ``label = count``.

        Two hops: derived-column index -> normalized rows -> data_oid.
        """
        self.probes += 1
        key = itemize(label, count, self.width)
        return [
            self.norm.read_dict(norm_oid)["data_oid"]
            for norm_oid in self.norm.index_lookup("derived", key)
        ]

    def lookup_range(
        self,
        label: str,
        lo: int | None = None,
        hi: int | None = None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> Iterator[tuple[int, int]]:
        """Yield ``(count, data_oid)`` in ascending count order."""
        self.probes += 1  # counted at call time, like SummaryBTreeIndex
        lo_key = itemize(label, 0 if lo is None else lo, self.width)
        hi_key = itemize(
            label, max_count(self.width) if hi is None else hi, self.width
        )

        def scan() -> Iterator[tuple[int, int]]:
            for norm_oid in self.norm.index_range(
                "derived", lo_key, hi_key, lo_inclusive, hi_inclusive
            ):
                row = self.norm.read_dict(norm_oid)
                yield row["cnt"], row["data_oid"]

        return scan()

    # -- normalized propagation (Figure 12) -------------------------------------------------------

    def reconstruct_object(self, oid: int) -> ClassifierObject | None:
        """Rebuild a classifier object from its normalized primitives.

        This is what propagation costs when only the normalized replica
        exists: per tuple, fetch all k rows and re-assemble the object.
        Element-level information (which raw annotations contribute) is not
        recoverable from the normalized schema — another intrinsic
        limitation of the baseline layout — so the result carries counts
        only (synthetic element ids preserve the count arithmetic).
        """
        rows = [
            self.norm.read_dict(n) for n in self.norm.index_lookup("data_oid", oid)
        ]
        if not rows:
            return None
        if self.label_order:
            rank = {label: i for i, label in enumerate(self.label_order)}
            rows.sort(key=lambda r: rank.get(r["label"], len(rank)))
        else:
            rows.sort(key=lambda r: r["label"])
        obj = ClassifierObject(
            instance_name=self.instance_name,
            tuple_id=oid,
            labels=[r["label"] for r in rows],
        )
        synthetic = -1
        for row in rows:
            for _ in range(row["cnt"]):
                obj.label_elements[row["label"]].add(synthetic)
                synthetic -= 1
        return obj
