"""Tests for the $-variable (SummarySet) interface of §3.1."""

import pytest

from repro.errors import SummaryError
from repro.summaries.functions import SummarySet
from repro.summaries.objects import (
    ClassifierObject,
    ClusterGroup,
    ClusterObject,
    SnippetObject,
    SummaryType,
)


def make_set():
    c1 = ClassifierObject(instance_name="ClassBird1", tuple_id=1,
                          labels=["Disease", "Anatomy"])
    c1.add_annotation(1, "Disease", ())
    c2 = ClassifierObject(instance_name="ClassBird2", tuple_id=1,
                          labels=["Provenance", "Comment"])
    snip = SnippetObject(instance_name="TextSummary1", tuple_id=1)
    snip.add_annotation(2, (), "Experiment E studies hormones")
    clus = ClusterObject(instance_name="SimCluster", tuple_id=1,
                         groups=[ClusterGroup(3, {3}, {3: "a note"})])
    clus.ann_targets[3] = ()
    s = SummarySet()
    for obj in (c1, c2, snip, clus):
        s.add(obj)
    return s


class TestInterface:
    def test_get_size(self):
        # Figure 1(c): tuple r has four summary objects -> $.getSize() = 4.
        assert make_set().get_size() == 4

    def test_get_summary_object_by_name(self):
        s = make_set()
        assert s.get_summary_object("ClassBird1").get_summary_type() == "Classifier"
        assert s.get_summary_object("TextSummary1").get_summary_type() == "Snippet"
        assert s.get_summary_object("Missing") is None

    def test_get_summary_object_by_position(self):
        s = make_set()
        names = {s.get_summary_object(i).get_summary_name() for i in range(4)}
        assert names == {"ClassBird1", "ClassBird2", "TextSummary1", "SimCluster"}
        assert s.get_summary_object(9) is None

    def test_require_raises_for_missing(self):
        with pytest.raises(SummaryError):
            make_set().require("Nope")

    def test_filter_by_type(self):
        # §3.2 F operator: getSummaryType() = 'Classifier' keeps both
        # classifier objects.
        s = make_set()
        filtered = s.filter(lambda o: o.get_summary_type() == "Classifier")
        assert filtered.instance_names() == ["ClassBird1", "ClassBird2"]

    def test_filter_by_name(self):
        s = make_set()
        filtered = s.filter(lambda o: o.get_summary_name() == "SimCluster")
        assert filtered.instance_names() == ["SimCluster"]

    def test_of_type(self):
        s = make_set()
        assert len(s.of_type(SummaryType.CLASSIFIER)) == 2
        assert len(s.of_type(SummaryType.CLUSTER)) == 1


class TestAlgebra:
    def test_copy_independent(self):
        s = make_set()
        dup = s.copy()
        dup.get_summary_object("ClassBird1").add_annotation(99, "Disease", ())
        assert s.get_summary_object("ClassBird1").get_label_value("Disease") == 1
        assert dup.get_summary_object("ClassBird1").get_label_value("Disease") == 2

    def test_merge_unmatched_instances_propagate_unchanged(self):
        # Example 1: ClassBird1/TextSummary1 have no counterpart on s, so
        # they propagate as-is.
        s = make_set()
        other = SummarySet()
        c2 = ClassifierObject(instance_name="ClassBird2", tuple_id=2,
                              labels=["Provenance", "Comment"])
        c2.add_annotation(50, "Comment", ())
        other.add(c2)
        s.merge(other)
        assert s.get_size() == 4
        assert s.get_summary_object("ClassBird2").get_label_value("Comment") == 1
        assert s.get_summary_object("ClassBird1").get_label_value("Disease") == 1

    def test_merge_adds_new_instances(self):
        s = make_set()
        other = SummarySet()
        extra = ClassifierObject(instance_name="New", tuple_id=2, labels=["X"])
        other.add(extra)
        s.merge(other)
        assert s.get_size() == 5

    def test_merge_copies_foreign_objects(self):
        s = SummarySet()
        other = make_set()
        s.merge(other)
        s.get_summary_object("ClassBird1").add_annotation(77, "Disease", ())
        assert other.get_summary_object("ClassBird1").get_label_value("Disease") == 1

    def test_project_to_columns_applies_to_all_objects(self):
        s = SummarySet()
        clf = ClassifierObject(instance_name="C", tuple_id=1, labels=["L"])
        clf.add_annotation(1, "L", ("dropped",))
        clf.add_annotation(2, "L", ("kept",))
        s.add(clf)
        snip = SnippetObject(instance_name="S", tuple_id=1)
        snip.add_annotation(1, ("dropped",), "about to vanish")
        s.add(snip)
        s.project_to_columns({"kept"})
        assert s.get_summary_object("C").get_label_value("L") == 1
        assert s.get_summary_object("S").get_size() == 0

    def test_to_display_shows_reps(self):
        display = make_set().to_display()
        assert display["ClassBird1"] == [("Disease", 1), ("Anatomy", 0)]
        assert display["SimCluster"] == [("a note", 1)]
