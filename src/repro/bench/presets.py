"""Benchmark scale presets.

The paper's evaluation sweeps the total annotation count from 450K to 9M
over a fixed 45,000-tuple Birds table — i.e. 10 to 200 annotations per
tuple (§6).  The benches sweep the same per-tuple densities over a
laptop-sized table and label each point with the paper's corresponding
total ("450K" … "9M") so the printed series read like the figures.

``REPRO_BENCH_SCALE`` selects a preset:

* ``quick`` — 3 densities, 60 tuples (CI smoke runs),
* ``default`` — the full 5-density sweep, 120 tuples,
* ``full`` — 5 densities, 300 tuples (closest shape to the paper).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: paper x-axis label for each annotations-per-tuple density.
PAPER_LABELS = {10: "450K", 25: "1.125M", 50: "2.25M", 100: "4.5M", 200: "9M"}

#: the paper's full density sweep.
FULL_SWEEP = (10, 25, 50, 100, 200)


@dataclass(frozen=True)
class ScalePreset:
    """One benchmark scale: table size + density sweep."""

    name: str
    num_birds: int
    densities: tuple[int, ...]
    #: density used by single-point (non-sweep) experiments.
    spot_density: int = 50

    def label(self, density: int) -> str:
        """The paper's x-axis label ("450K" … "9M") for one density."""
        return PAPER_LABELS.get(density, f"{density}/tuple")


PRESETS = {
    "quick": ScalePreset("quick", num_birds=60, densities=(10, 50, 200)),
    "default": ScalePreset("default", num_birds=120, densities=FULL_SWEEP),
    "full": ScalePreset("full", num_birds=300, densities=FULL_SWEEP),
}


def active_preset() -> ScalePreset:
    """Preset selected by ``REPRO_BENCH_SCALE`` (default: ``default``)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "default").lower()
    if name not in PRESETS:
        raise ValueError(
            f"REPRO_BENCH_SCALE={name!r}; expected one of {sorted(PRESETS)}"
        )
    return PRESETS[name]
