"""Cost-model behaviour: the optimizer's *choices*, not just its plans —
index-vs-scan crossover with selectivity, merge-width accounting, join
algorithm selection, and force_access semantics."""

import pytest

from repro import Column, Database, ValueType
from repro.bench.queries import equality_constant, label_distribution
from repro.workload.generator import WorkloadConfig, build_database

EXPR = "$.getSummaryObject('ClassBird1').getLabelValue('Disease')"


@pytest.fixture(scope="module")
def db():
    return build_database(WorkloadConfig(
        num_birds=80, annotations_per_tuple=40, indexes="summary_btree",
        cell_fraction=0.0, seed=4,
    ))


def chosen_access(db, query) -> str:
    plan = db.explain(query).physical
    for line in reversed(plan.splitlines()):
        line = line.strip()
        if "Scan" in line:
            return line.split("(")[0]
    return "?"


class TestSelectivityCrossover:
    def test_selective_predicate_uses_index(self, db):
        # An equality on a rare count: few rows -> index probes win.
        constant = equality_constant(db, "Disease", 0.02)
        access = chosen_access(
            db, f"Select * From birds r Where r.{EXPR} = {constant}"
        )
        assert access == "SummaryIndexScan"

    def test_unselective_predicate_scans(self, db):
        # >= 0 selects everything: a sequential scan must win.
        access = chosen_access(
            db, f"Select * From birds r Where r.{EXPR} >= 0"
        )
        assert access == "SeqScan"

    def test_cost_monotone_in_selectivity(self, db):
        dist = label_distribution(db, "birds", "Disease")
        hi = max(dist)
        narrow = db.explain(
            f"Select * From birds r Where r.{EXPR} = {hi}"
        ).estimated_cost
        wide = db.explain(
            f"Select * From birds r Where r.{EXPR} >= 0"
        ).estimated_cost
        assert narrow < wide


class TestForceAccess:
    def test_force_index_overrides_cost(self, db):
        query = f"Select * From birds r Where r.{EXPR} >= 0"
        db.options.force_access = "index"
        try:
            access = chosen_access(db, query)
        finally:
            db.options.force_access = None
        assert access == "SummaryIndexScan"

    def test_force_index_noop_without_matching_index(self, db):
        query = "Select * From birds r Where family = 'Anatidae'"
        db.options.force_access = "index"
        db.options.enable_data_indexes = False
        try:
            access = chosen_access(db, query)
        finally:
            db.options.force_access = None
            db.options.enable_data_indexes = True
        assert access == "SeqScan"  # nothing to force onto


class TestMergeWidthCosting:
    def test_no_propagation_costs_less(self, db):
        query = (
            "Select r.common_name, s.synonym From birds r, synonyms s "
            "Where r.oid = s.bird_id"
        )
        with_prop = db.explain(query).estimated_cost
        db.options.propagate = False
        try:
            without = db.explain(query).estimated_cost
        finally:
            db.options.propagate = True
        assert without < with_prop

    def test_summary_width_from_statistics(self, db):
        stats = db.statistics.table_stats("birds")
        width = sum(i.avg_object_size for i in stats.instances.values())
        assert width > 0


class TestJoinAlgorithmChoice:
    def test_index_join_chosen_for_selective_outer(self, db):
        # One bird joined to its synonyms: probing the synonyms index per
        # outer row beats materializing all synonyms.
        constant = equality_constant(db, "Disease", 0.02)
        report = db.explain(
            "Select r.common_name, s.synonym From birds r, synonyms s "
            f"Where r.oid = s.bird_id And r.{EXPR} = {constant}"
        )
        assert "IndexNestedLoopJoin" in report.physical \
            or "NestedLoopJoin" in report.physical  # algorithm considered
        # the plan must at least have pushed the summary selection down
        physical = report.physical
        assert physical.index("Join") < physical.index("Scan")

    def test_forced_nloop_respected(self, db):
        query = (
            "Select r.common_name, s.synonym From birds r, synonyms s "
            "Where r.oid = s.bird_id"
        )
        db.options.force_join = "nloop"
        try:
            physical = db.explain(query).physical
        finally:
            db.options.force_join = None
        assert "NestedLoopJoin" in physical
        assert "IndexNestedLoopJoin" not in physical


class TestEstimatedVsActual:
    def test_estimated_rows_order_sane(self, db):
        """Cardinality estimates need not be exact, but a narrow equality
        must estimate fewer rows than the full table."""
        constant = equality_constant(db, "Disease", 0.02)
        narrow = db.sql(
            f"Select common_name From birds r Where r.{EXPR} = {constant}"
        )
        everything = db.sql("Select common_name From birds")
        assert len(narrow) < len(everything)
        assert len(everything) == 80


class TestDegenerateHistograms:
    """Single-value and non-finite inputs used to produce nonsense
    selectivities (a [v, v] range over a one-value column estimated 0.0;
    one NaN poisoned every bucket boundary)."""

    def _single(self):
        from repro.optimizer.statistics import Histogram

        return Histogram.build([7.0] * 50)

    def test_single_value_equality_is_exact(self):
        hist = self._single()
        assert hist.selectivity_eq(7.0, ndistinct=1) == 1.0
        assert hist.selectivity_eq(6.0, ndistinct=1) == 0.0
        assert hist.selectivity_eq(8.0, ndistinct=1) == 0.0

    def test_single_value_range_is_exact(self):
        hist = self._single()
        assert hist.selectivity_range(7.0, 7.0) == 1.0
        assert hist.selectivity_range(6.5, 7.5) == 1.0
        assert hist.selectivity_range(None, None) == 1.0
        assert hist.selectivity_range(7.1, 9.0) == 0.0
        assert hist.selectivity_range(0.0, 6.9) == 0.0

    def test_non_finite_values_are_dropped(self):
        from repro.optimizer.statistics import Histogram

        hist = Histogram.build([1.0, 2.0, 3.0, float("nan"),
                                float("inf"), float("-inf")])
        # Boundaries come from the finite values only.
        assert (hist.lo, hist.hi) == (1.0, 3.0)
        assert hist.total == 3
        assert hist.selectivity_range(1.0, 3.0) == pytest.approx(1.0)

    def test_all_non_finite_yields_empty_histogram(self):
        from repro.optimizer.statistics import Histogram

        hist = Histogram.build([float("nan"), float("inf")])
        assert hist.total == 0
        assert hist.selectivity_eq(1.0, ndistinct=1) == 0.0
        assert hist.selectivity_range(None, None) == 0.0
