"""Unit tests for the disk manager and buffer pool."""

import pytest

from repro.errors import BufferPoolError, StorageError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


def test_allocate_read_write_roundtrip():
    disk = DiskManager()
    pid = disk.allocate_page()
    data = bytearray(disk.page_size)
    data[0:5] = b"hello"
    disk.write_page(pid, data)
    assert bytes(disk.read_page(pid)[0:5]) == b"hello"


def test_io_counters():
    disk = DiskManager()
    pid = disk.allocate_page()
    disk.write_page(pid, bytearray(disk.page_size))
    disk.read_page(pid)
    disk.read_page(pid)
    assert disk.stats.writes == 1
    assert disk.stats.reads == 2
    assert disk.stats.total == 3


def test_stats_snapshot_delta():
    disk = DiskManager()
    pid = disk.allocate_page()
    before = disk.stats.snapshot()
    disk.read_page(pid)
    delta = disk.stats.delta(before)
    assert delta.reads == 1
    assert delta.writes == 0


def test_deallocate_and_recycle():
    disk = DiskManager()
    a = disk.allocate_page()
    disk.deallocate_page(a)
    b = disk.allocate_page()
    assert b == a
    assert disk.num_pages == 1


def test_read_unallocated_raises():
    disk = DiskManager()
    with pytest.raises(StorageError):
        disk.read_page(0)
    pid = disk.allocate_page()
    disk.deallocate_page(pid)
    with pytest.raises(StorageError):
        disk.read_page(pid)


def test_write_wrong_size_raises():
    disk = DiskManager()
    pid = disk.allocate_page()
    with pytest.raises(StorageError):
        disk.write_page(pid, b"short")


def test_buffer_pool_hit_avoids_disk_read():
    disk = DiskManager()
    pool = BufferPool(disk, capacity=4)
    pid = pool.new_page()
    pool.flush_all()
    reads_before = disk.stats.reads
    pool.get_page(pid)
    pool.get_page(pid)
    assert disk.stats.reads == reads_before  # both were hits
    assert pool.hits >= 2


def test_buffer_pool_eviction_writes_dirty_pages():
    disk = DiskManager()
    pool = BufferPool(disk, capacity=2)
    pids = [pool.new_page() for _ in range(3)]  # forces one eviction
    for pid in pids:
        data = pool.get_page(pid)
        data[0] = 7
        pool.mark_dirty(pid)
    pool.flush_all()
    for pid in pids:
        assert disk.read_page(pid)[0] == 7


def test_buffer_pool_cold_read_counts_miss():
    disk = DiskManager()
    pool = BufferPool(disk, capacity=2)
    pid = pool.new_page()
    data = pool.get_page(pid)
    data[1] = 9
    pool.mark_dirty(pid)
    pool.clear()  # flush + drop everything
    misses_before = pool.misses
    page = pool.get_page(pid)
    assert pool.misses == misses_before + 1
    assert page[1] == 9


def test_pinned_pages_cannot_all_be_evicted():
    disk = DiskManager()
    pool = BufferPool(disk, capacity=2)
    a = pool.new_page()
    b = pool.new_page()
    pool.pin(a)
    pool.pin(b)
    with pytest.raises(BufferPoolError):
        pool.new_page()
    pool.unpin(a)
    pool.new_page()  # now an eviction victim exists


def test_unpin_unpinned_raises():
    disk = DiskManager()
    pool = BufferPool(disk, capacity=2)
    pid = pool.new_page()
    with pytest.raises(BufferPoolError):
        pool.unpin(pid)


def test_free_page_removes_from_pool_and_disk():
    disk = DiskManager()
    pool = BufferPool(disk, capacity=2)
    pid = pool.new_page()
    pool.free_page(pid)
    with pytest.raises(StorageError):
        disk.read_page(pid)


def test_free_page_pinned_raises():
    # Regression: free_page used to silently drop pinned frames, yanking
    # the live bytearray out from under the pinner.
    disk = DiskManager()
    pool = BufferPool(disk, capacity=2)
    pid = pool.new_page()
    pool.pin(pid)
    with pytest.raises(BufferPoolError):
        pool.free_page(pid)
    # the page survived: still resident, still readable
    pool.get_page(pid)
    pool.unpin(pid)
    pool.free_page(pid)  # now legal
    with pytest.raises(StorageError):
        disk.read_page(pid)


def test_put_page_absent_counts_miss():
    # Regression: put_page on a non-resident page used to bypass the
    # hit/miss counters, skewing hit_rate and page-access totals.
    disk = DiskManager()
    pool = BufferPool(disk, capacity=2)
    pid = pool.new_page()
    pool.clear()
    misses_before, hits_before = pool.misses, pool.hits
    pool.put_page(pid, bytearray(disk.page_size))
    assert pool.misses == misses_before + 1
    assert pool.hits == hits_before
    # the resident path still counts nothing (it is not a fault)
    pool.put_page(pid, bytearray(disk.page_size))
    assert pool.misses == misses_before + 1
    assert pool.hits == hits_before


def test_hit_rate():
    disk = DiskManager()
    pool = BufferPool(disk, capacity=4)
    pid = pool.new_page()
    pool.clear()
    pool.get_page(pid)  # miss
    pool.get_page(pid)  # hit
    assert 0.0 < pool.hit_rate < 1.0
