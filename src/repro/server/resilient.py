"""Self-healing client: reconnect-with-backoff + retry-safety rules.

:class:`ResilientQueryClient` wraps :class:`~repro.server.client
.QueryClient` with the PR-5 seeded :class:`~repro.resilience.RetryPolicy`
and transparently survives the transport failures the chaos battery
injects — connection resets, stalled responses, garbled frames, a
server draining for restart — **without ever risking a double
execution**.  The retry-safety rules:

* **Connect failures** always retry (nothing was sent).
* **Overload sheds** (``ServerOverloadedError`` /
  ``ServerShuttingDownError`` error frames) always retry: the server
  guarantees a shed statement never started executing, so re-offering
  it — after backoff, when a worker may be free — is safe even for
  writes.  A ``ProtocolError`` answer (the request frame failed its
  checksum after in-flight corruption) carries the same guarantee and
  retries the same way, after reconnecting.
* **Transport failures with a request in flight** (reset, response
  timeout, garbled or half-delivered response) retry only when the
  statement is *read-only* (SELECT / EXPLAIN / ZOOM / transaction-less
  SHOW-style statements): re-reading is idempotent.  For anything that
  writes, the statement may or may not have executed server-side, so
  the client surfaces a typed
  :class:`~repro.errors.AmbiguousStatementError` carrying the
  underlying cause — the caller must reconcile before retrying.
* **Statement errors** (parse errors, lock timeouts, deadlines, …)
  never retry; they are answers, not failures.

Transactions are deliberately not retried across reconnects: a
reconnect lands on a fresh server session, so an open ``BEGIN`` died
with the old connection (the server aborts it).  Statements issued
inside an explicit transaction are treated as non-idempotent.

**Replica failover** (PR 10): the client can learn a list of read-only
replica endpoints.  Endpoint 0 is the primary and *writes are pinned to
it* — a dead primary surfaces typed connect/transport errors for
writes, never a silent retry elsewhere.  Read-only autocommit
statements rotate across the endpoint list on connect failures,
transport failures, draining servers, and ``ReplicaLaggingError``
answers, so reads keep flowing while the primary is down.  Every
successful write records the server-stamped commit LSN in
``last_commit_lsn``; with ``read_your_writes=True`` reads carry it as a
``min_lsn`` bound, so a lagging replica either waits until it has
applied your writes or answers a typed
:class:`~repro.errors.ReplicaLaggingError` (and the client rotates on).
"""

from __future__ import annotations

import time

from repro.errors import (
    AmbiguousStatementError,
    ClientTimeoutError,
    ProtocolError,
    ServerError,
)
from repro.resilience import RetryPolicy
from repro.server.client import QueryClient
from repro.server.protocol import MAX_FRAME

#: Statement prefixes that are safe to re-send after an ambiguous
#: transport failure (re-reading committed state is idempotent).
READ_ONLY_PREFIXES = ("select", "explain", "zoom")

#: Error types the server guarantees were shed *before* execution —
#: always retryable, reads and writes alike.
SHED_ERROR_TYPES = ("ServerOverloadedError", "ServerShuttingDownError")

#: A ``ProtocolError`` answer means the request frame never decoded
#: server-side (e.g. its checksum failed after in-flight corruption):
#: the statement never executed, so it is as retryable as a shed — the
#: server hangs up after answering, so the retry reconnects first.
#: ``ReplicaLaggingError`` carries the same never-executed guarantee (a
#: staleness-bounded read was rejected before execution).
NEVER_EXECUTED_ERROR_TYPES = SHED_ERROR_TYPES + (
    "ProtocolError", "ReplicaLaggingError",
)

#: Error answers that should move a read to the next endpoint before
#: retrying: the server is going away or cannot serve this read fresh
#: enough, and another endpoint may.
_ROTATE_ERROR_TYPES = ("ServerShuttingDownError", "ProtocolError",
                      "ReplicaLaggingError")

#: Transport-level failures that leave an in-flight statement's
#: outcome unknown.
_TRANSPORT_ERRORS = (ConnectionError, ClientTimeoutError, ProtocolError,
                     OSError)


def is_read_only(sql: str) -> bool:
    """True when re-executing ``sql`` cannot change database state."""
    return sql.strip().lower().startswith(READ_ONLY_PREFIXES)


class ResilientQueryClient:
    """A :class:`QueryClient` that heals itself across reconnects.

    ``retry`` is a seeded :class:`RetryPolicy`: ``max_attempts`` bounds
    total attempts per statement (connect failures included) and its
    backoff schedule spaces reconnects.  ``in_txn`` tracking disables
    transparent retry inside explicit transactions.

    ``replicas`` is a list of ``(host, port)`` read-only replica
    endpoints; reads fail over across ``[(host, port)] + replicas``
    while writes stay pinned to the primary.  ``read_your_writes=True``
    attaches ``last_commit_lsn`` as a ``min_lsn`` bound on every read
    (waiting up to ``min_lsn_timeout`` seconds server-side).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 replicas: list[tuple[str, int]] | None = None,
                 retry: RetryPolicy | None = None,
                 connect_timeout: float = 5.0,
                 response_timeout: float | None = None,
                 max_frame: int = MAX_FRAME,
                 read_your_writes: bool = False,
                 min_lsn_timeout: float = 5.0,
                 sleep=time.sleep):
        self.host = host
        self.port = port
        #: endpoint 0 is the primary (writes are pinned to it); the
        #: rest are replicas that read-only statements may rotate to.
        self.endpoints: list[tuple[str, int]] = [(host, port)]
        self.endpoints.extend(tuple(r) for r in (replicas or []))
        self.retry = retry if retry is not None else RetryPolicy()
        self.connect_timeout = connect_timeout
        self.response_timeout = response_timeout
        self.max_frame = max_frame
        self.read_your_writes = read_your_writes
        self.min_lsn_timeout = min_lsn_timeout
        self._sleep = sleep
        self._clients: list[QueryClient | None] = [None] * len(self.endpoints)
        #: sticky endpoint index the next read starts from.
        self._read_idx = 0
        #: the LSN stamped on the last successful write through this
        #: client — the bound ``read_your_writes`` reads carry.
        self.last_commit_lsn = 0
        #: statements retried transparently (observability for tests).
        self.retries = 0
        #: reconnects performed (initial connect not counted).
        self.reconnects = 0
        #: reads moved to a different endpoint (observability).
        self.failovers = 0
        self._in_txn = False

    def __enter__(self) -> "ResilientQueryClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        for idx, client in enumerate(self._clients):
            if client is not None:
                client.close()
                self._clients[idx] = None

    def add_replica(self, host: str, port: int) -> None:
        """Learn another read-only replica endpoint at runtime."""
        self.endpoints.append((host, port))
        self._clients.append(None)

    # -- connection management -----------------------------------------------

    @property
    def _client(self) -> QueryClient | None:
        """The primary connection (endpoint 0) — kept as an attribute-
        style alias because tests and callers predating replica
        failover reach for it."""
        return self._clients[0]

    @_client.setter
    def _client(self, value: QueryClient | None) -> None:
        self._clients[0] = value

    def _connect(self, idx: int = 0) -> QueryClient:
        if self._clients[idx] is None:
            host, port = self.endpoints[idx]
            self._clients[idx] = QueryClient(
                host, port,
                connect_timeout=self.connect_timeout,
                response_timeout=self.response_timeout,
                max_frame=self.max_frame,
            )
        return self._clients[idx]

    def _drop_connection(self, idx: int) -> None:
        if self._clients[idx] is not None:
            self._clients[idx].close()
            self._clients[idx] = None
            self.reconnects += 1
        if idx == 0:
            # A dead primary connection killed any server-side
            # transaction with it.
            self._in_txn = False

    # -- execution ------------------------------------------------------------

    def execute(self, sql: str, timeout: float | None = None):
        """Run one statement with transparent, outcome-safe retries."""
        read = is_read_only(sql) and not self._in_txn
        extra: dict = {}
        if read and self.read_your_writes and self.last_commit_lsn:
            extra = {"min_lsn": self.last_commit_lsn,
                     "min_lsn_timeout": self.min_lsn_timeout}
        return self._request_with_retry(
            sql,
            lambda client: client.execute(sql, timeout=timeout, **extra),
            rotate=read,
        )

    def health(self) -> dict:
        """Fetch the server's health snapshot (always safe to retry;
        fails over across endpoints like a read)."""
        return self._request_with_retry(
            "select", lambda client: client.health(), rotate=True
        )

    def _next_endpoint(self, idx: int) -> int:
        if len(self.endpoints) > 1:
            self.failovers += 1
        return (idx + 1) % len(self.endpoints)

    def _request_with_retry(self, sql: str, send, rotate: bool = False):
        stripped = sql.strip().lower()
        # Writes (and anything transactional) are pinned to the primary;
        # reads start from the sticky endpoint and rotate on failure.
        idx = self._read_idx if rotate else 0
        if idx >= len(self.endpoints):  # endpoints shrank? be safe
            idx = 0
        attempt = 0
        last_error: BaseException | None = None
        while attempt < self.retry.max_attempts:
            attempt += 1
            try:
                client = self._connect(idx)
            except OSError as exc:
                # Nothing was ever sent: connect failures always retry.
                last_error = exc
                if rotate:
                    idx = self._next_endpoint(idx)
                self._backoff(attempt)
                continue
            try:
                result = send(client)
            except ServerError as exc:
                if (exc.error_type in NEVER_EXECUTED_ERROR_TYPES
                        and not self._in_txn):
                    # Shed (or never even decoded / rejected as too
                    # stale) before execution: safe to re-offer, even a
                    # write — but not inside an explicit transaction
                    # (the reconnect would land on a fresh session), so
                    # only autocommit statements ride through.
                    last_error = exc
                    self.retries += 1
                    if exc.error_type != "ServerOverloadedError":
                        # Draining servers and framing breaches drop
                        # the connection with the answer; reconnect
                        # before retrying. (A lagging replica keeps the
                        # connection, but the read moves on anyway.)
                        if exc.error_type != "ReplicaLaggingError":
                            self._drop_connection(idx)
                        if rotate and exc.error_type in _ROTATE_ERROR_TYPES:
                            idx = self._next_endpoint(idx)
                    self._backoff(attempt)
                    continue
                if exc.error_type in ("LockTimeoutError",
                                      "TransactionAbortedError"):
                    # The server force-aborted the open transaction.
                    self._in_txn = False
                raise
            except _TRANSPORT_ERRORS as exc:
                in_flight = client.request_in_flight
                was_in_txn = self._in_txn
                self._drop_connection(idx)
                last_error = exc
                if in_flight and (was_in_txn or not is_read_only(sql)):
                    raise AmbiguousStatementError(
                        "connection lost with the statement in flight: "
                        "it may or may not have executed server-side "
                        f"({type(exc).__name__}: {exc}); reconcile "
                        "before retrying",
                        cause=exc,
                    ) from exc
                self.retries += 1
                if rotate:
                    idx = self._next_endpoint(idx)
                self._backoff(attempt)
                continue
            if rotate:
                self._read_idx = idx
            else:
                self._track_txn(stripped)
                lsn = getattr(client, "last_lsn", None)
                if lsn is not None and not self._in_txn:
                    # Autocommit write or COMMIT: the response LSN
                    # covers everything this client has written.
                    self.last_commit_lsn = max(self.last_commit_lsn, lsn)
            return result
        raise last_error if last_error is not None else RuntimeError(
            "retry budget exhausted with no recorded error"
        )  # pragma: no cover - last_error is always set on exhaustion

    def _track_txn(self, stripped_sql: str) -> None:
        """Mirror the server-side transaction state so retry-safety can
        refuse transparent retries inside an explicit transaction."""
        if stripped_sql.startswith("begin"):
            self._in_txn = True
        elif stripped_sql.startswith(("commit", "abort", "rollback")):
            self._in_txn = False

    def _backoff(self, attempt: int) -> None:
        if attempt < self.retry.max_attempts:
            delay = self.retry.delay(attempt)
            if delay > 0:
                self._sleep(delay)
