"""Unit + property tests for the mining substrates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SummaryError
from repro.mining import (
    CluStream,
    LsaSummarizer,
    NaiveBayesClassifier,
    hashed_tf_vector,
    sentences,
    tokenize,
)


class TestText:
    def test_tokenize_lowercases_and_drops_stopwords(self):
        assert tokenize("The Swan WAS eating stonewort") == [
            "swan", "eating", "stonewort",
        ]

    def test_tokenize_keeps_stopwords_when_asked(self):
        tokens = tokenize("the swan", drop_stop_words=False)
        assert tokens == ["the", "swan"]

    def test_tokenize_ignores_numbers_and_punct(self):
        assert tokenize("weighs 3.2kg!!") == ["weighs", "kg"]

    def test_sentences_split(self):
        got = sentences("First one. Second one! Third one? Trailing")
        assert got == ["First one.", "Second one!", "Third one?", "Trailing"]

    def test_sentences_empty(self):
        assert sentences("") == []

    def test_hashed_tf_deterministic_and_normalized(self):
        v1 = hashed_tf_vector(["disease", "wing", "disease"])
        v2 = hashed_tf_vector(["disease", "wing", "disease"])
        assert np.allclose(v1, v2)
        assert np.isclose(np.linalg.norm(v1), 1.0)

    def test_hashed_tf_zero_for_empty(self):
        assert np.linalg.norm(hashed_tf_vector([])) == 0.0

    @given(st.lists(st.text(alphabet="abcdefg", min_size=1, max_size=6), max_size=30))
    @settings(max_examples=30)
    def test_property_hashed_tf_norm_bounded(self, tokens):
        v = hashed_tf_vector(tokens)
        assert np.linalg.norm(v) <= 1.0 + 1e-9


def trained_classifier():
    clf = NaiveBayesClassifier(["Disease", "Anatomy", "Behavior", "Other"])
    clf.train(
        [
            ("observed infection and avian flu symptoms sick", "Disease"),
            ("virus disease outbreak parasite illness", "Disease"),
            ("wing beak feather plumage body shape tail", "Anatomy"),
            ("anatomy skeleton bone wingspan weight size", "Anatomy"),
            ("migration nesting singing foraging courtship", "Behavior"),
            ("feeding eating diving flying behavior flock", "Behavior"),
            ("miscellaneous general note comment", "Other"),
        ]
    )
    return clf


class TestNaiveBayes:
    def test_classifies_obvious_documents(self):
        clf = trained_classifier()
        assert clf.classify("the bird showed flu infection symptoms") == "Disease"
        assert clf.classify("a very long wingspan and striking plumage") == "Anatomy"
        assert clf.classify("seen foraging and nesting near the lake") == "Behavior"

    def test_fallback_for_unknown_tokens(self):
        clf = trained_classifier()
        assert clf.classify("zzzz qqqq xxxx") == "Other"

    def test_fallback_is_configurable(self):
        clf = NaiveBayesClassifier(["A", "B"], fallback_label="A")
        clf.train([("alpha words here", "A"), ("beta tokens there", "B")])
        assert clf.classify("zzzz") == "A"

    def test_untrained_raises(self):
        clf = NaiveBayesClassifier(["A"])
        with pytest.raises(SummaryError):
            clf.log_scores("anything")

    def test_unknown_label_rejected(self):
        clf = NaiveBayesClassifier(["A"])
        with pytest.raises(SummaryError):
            clf.train([("text", "NotALabel")])

    def test_empty_labels_rejected(self):
        with pytest.raises(SummaryError):
            NaiveBayesClassifier([])

    def test_incremental_training_shifts_decision(self):
        clf = NaiveBayesClassifier(["A", "B"], fallback_label="B")
        clf.train([("ambiguous token", "A")])
        assert clf.classify("ambiguous token") == "A"
        clf.train([("ambiguous token", "B")] * 5)
        assert clf.classify("ambiguous token") == "B"

    def test_scores_cover_all_labels(self):
        clf = trained_classifier()
        scores = clf.log_scores("wing infection")
        assert set(scores) == {"Disease", "Anatomy", "Behavior", "Other"}


class TestCluStream:
    def test_similar_texts_share_cluster(self):
        cs = CluStream()
        a = cs.insert(1, "large bird eating stonewort in the lake")
        b = cs.insert(2, "bird eating stonewort near lake shallows")
        assert a is b
        assert len(cs) == 1

    def test_dissimilar_texts_split_clusters(self):
        cs = CluStream()
        cs.insert(1, "observed severe avian influenza infection symptoms")
        cs.insert(2, "wingspan measurement skeletal anatomy study specimen")
        assert len(cs) == 2

    def test_remove_subtracts_and_drops_empty(self):
        cs = CluStream()
        cs.insert(1, "disease infection")
        cs.remove(1)
        assert len(cs) == 0
        assert cs.member_count == 0

    def test_remove_unknown_raises(self):
        cs = CluStream()
        with pytest.raises(SummaryError):
            cs.remove(42)

    def test_duplicate_member_rejected(self):
        cs = CluStream()
        cs.insert(1, "text")
        with pytest.raises(SummaryError):
            cs.insert(1, "text")

    def test_representative_is_a_member(self):
        cs = CluStream()
        for i, text in enumerate(
            ["eating stonewort lake", "eating weeds lake", "eating algae lake"]
        ):
            cs.insert(i, text)
        for (rep_id, excerpt), size, members in cs.groups():
            assert rep_id in members
            assert isinstance(excerpt, str)
            assert size == len(members)

    def test_max_clusters_enforced(self):
        cs = CluStream(max_clusters=3)
        texts = [
            "alpha unique topic one",
            "bravo separate subject two",
            "charlie different theme three",
            "delta unrelated matter four",
            "echo distinct issue five",
        ]
        for i, t in enumerate(texts):
            cs.insert(i, t)
        assert len(cs) <= 3
        assert cs.member_count == 5

    def test_representative_reelection_after_removal(self):
        cs = CluStream(max_clusters=1)
        for i in range(4):
            cs.insert(i, f"eating stonewort lake variant {'x' * i}")
        (rep_id, _), _, _ = cs.groups()[0]
        cs.remove(rep_id)
        (new_rep, _), size, members = cs.groups()[0]
        assert new_rep != rep_id
        assert new_rep in members
        assert size == 3

    def test_groups_sorted_by_size(self):
        cs = CluStream()
        for i in range(5):
            cs.insert(i, "eating stonewort lake water plants")
        cs.insert(99, "completely different skeletal anatomy discussion")
        groups = cs.groups()
        sizes = [g[1] for g in groups]
        assert sizes == sorted(sizes, reverse=True)

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_property_member_count_invariant(self, topic_ids):
        topics = [
            "avian disease infection influenza",
            "wing beak anatomy skeleton",
            "migration nesting behavior song",
            "lake habitat wetland reeds",
        ]
        cs = CluStream()
        for i, t in enumerate(topic_ids):
            cs.insert(i, topics[t])
        assert cs.member_count == len(topic_ids)
        assert sum(c.size for c in cs.clusters) == len(topic_ids)
        # Every inserted member resolves to the cluster that contains it.
        for i in range(len(topic_ids)):
            cluster = cs.cluster_of(i)
            assert cluster is not None and i in cluster.members


class TestLsa:
    LONG = (
        "The swan goose is a large goose with a natural breeding range in "
        "inland Mongolia. It was observed eating stonewort in the shallow "
        "lake. Several individuals showed signs of avian influenza during "
        "the autumn survey. The wingspan of adult males reaches one hundred "
        "eighty five centimeters in the largest specimens. Local volunteers "
        "recorded nesting behavior along the reed beds every morning. "
        "Conservation programs have been expanded across the flyway since "
        "the last census was completed."
    )

    def test_short_text_passthrough(self):
        lsa = LsaSummarizer(max_chars=400)
        assert lsa.summarize("short note") == "short note"

    def test_snippet_respects_max_chars(self):
        lsa = LsaSummarizer(max_chars=200)
        snippet = lsa.summarize(self.LONG)
        assert 0 < len(snippet) <= 200

    def test_snippet_sentences_come_from_source(self):
        lsa = LsaSummarizer(max_chars=250)
        snippet = lsa.summarize(self.LONG)
        for sentence in sentences(snippet):
            assert sentence in self.LONG

    def test_single_long_sentence_truncated(self):
        lsa = LsaSummarizer(max_chars=50)
        text = "word " * 100
        snippet = lsa.summarize(text)
        assert len(snippet) <= 50

    def test_deterministic(self):
        lsa = LsaSummarizer(max_chars=200)
        assert lsa.summarize(self.LONG) == lsa.summarize(self.LONG)

    @given(st.integers(min_value=40, max_value=400))
    @settings(max_examples=20, deadline=None)
    def test_property_never_exceeds_budget(self, budget):
        lsa = LsaSummarizer(max_chars=budget)
        assert len(lsa.summarize(self.LONG)) <= max(budget, len(self.LONG) and budget)
