"""Heap files: unordered collections of records addressed by RID.

A heap file is an ordered list of slotted pages. Records are appended into
the last page with room (a simple but effective free-space strategy for the
mostly-append workloads in this system); deletes tombstone the slot so RIDs
stay stable.

Records larger than a page spill to **overflow chains** (the same idea as
PostgreSQL's TOAST): the slotted page keeps a small stub pointing at a chain
of dedicated overflow pages. This is what lets a tuple's de-normalized
summary row keep growing as its annotation count climbs toward the paper's
200-annotations-per-tuple densities.
"""

from __future__ import annotations

import struct
from typing import Iterator, NamedTuple

from repro.errors import (
    CorruptPageError,
    PageFullError,
    ReproError,
    StorageError,
)
from repro.storage.buffer import BufferPool
from repro.storage.page import SlottedPage

_INLINE_TAG = 0
_OVERFLOW_TAG = 1

#: Stub stored in the slotted page for an overflow record:
#: [tag:u8 | total_len:u32 | first_overflow_page:u32]
_OVERFLOW_STUB = struct.Struct("<BII")
#: Overflow page header: [chunk_len:u32 | next_page:i32]
_OVERFLOW_HEADER = struct.Struct("<Ii")


class RID(NamedTuple):
    """Record identifier: (heap page position, slot number)."""

    page_no: int
    slot: int


class HeapFile:
    """An unordered record file over a buffer pool.

    ``page_ids`` maps heap page position -> disk page id; a RID's ``page_no``
    is the position, so heap pages can be recycled on disk without breaking
    RIDs.
    """

    def __init__(self, pool: BufferPool):
        self.pool = pool
        self.page_ids: list[int] = []
        self._record_count = 0
        self._overflow_pages = 0

    def __len__(self) -> int:
        return self._record_count

    @property
    def num_pages(self) -> int:
        """All pages owned by the file, overflow chains included."""
        return len(self.page_ids) + self._overflow_pages

    def _page(self, page_no: int) -> SlottedPage:
        if not 0 <= page_no < len(self.page_ids):
            raise StorageError(f"heap page {page_no} out of range")
        data = self.pool.get_page(self.page_ids[page_no])
        return SlottedPage(data, page_size=self.pool.disk.page_size)

    def _dirty(self, page_no: int) -> None:
        self.pool.mark_dirty(self.page_ids[page_no])

    def _max_inline(self) -> int:
        return SlottedPage.max_record_size(self.pool.disk.page_size) - 1

    # -- overflow chains --------------------------------------------------------

    def _chunk_capacity(self) -> int:
        return self.pool.disk.page_size - _OVERFLOW_HEADER.size

    def _store_overflow(self, record: bytes) -> int:
        """Write ``record`` into a fresh overflow chain; returns its head."""
        capacity = self._chunk_capacity()
        chunks = [record[i:i + capacity] for i in range(0, len(record), capacity)]
        page_ids = [self.pool.new_page() for _ in chunks]
        self._overflow_pages += len(page_ids)
        for i, (page_id, chunk) in enumerate(zip(page_ids, chunks)):
            frame = self.pool.get_page(page_id)
            next_page = page_ids[i + 1] if i + 1 < len(page_ids) else -1
            _OVERFLOW_HEADER.pack_into(frame, 0, len(chunk), next_page)
            frame[_OVERFLOW_HEADER.size:_OVERFLOW_HEADER.size + len(chunk)] = chunk
            self.pool.mark_dirty(page_id)
        return page_ids[0]

    def _read_overflow(self, head: int, total_len: int) -> bytes:
        parts: list[bytes] = []
        page_id = head
        remaining = total_len
        while page_id != -1 and remaining > 0:
            frame = self.pool.get_page(page_id)
            chunk_len, next_page = _OVERFLOW_HEADER.unpack_from(frame, 0)
            parts.append(
                bytes(frame[_OVERFLOW_HEADER.size:_OVERFLOW_HEADER.size + chunk_len])
            )
            remaining -= chunk_len
            page_id = next_page
        return b"".join(parts)

    def _free_overflow(self, head: int) -> None:
        page_id = head
        while page_id != -1:
            frame = self.pool.get_page(page_id)
            _, next_page = _OVERFLOW_HEADER.unpack_from(frame, 0)
            self.pool.free_page(page_id)
            self._overflow_pages -= 1
            page_id = next_page

    def _wrap(self, record: bytes) -> bytes:
        if len(record) <= self._max_inline():
            return bytes([_INLINE_TAG]) + record
        head = self._store_overflow(record)
        return _OVERFLOW_STUB.pack(_OVERFLOW_TAG, len(record), head)

    def _unwrap(self, stored: bytes) -> bytes:
        if len(stored) == 0:
            raise CorruptPageError("empty stored record")
        if stored[0] == _INLINE_TAG:
            return stored[1:]
        if stored[0] != _OVERFLOW_TAG or len(stored) != _OVERFLOW_STUB.size:
            raise CorruptPageError(
                f"bad record framing: tag {stored[0]}, {len(stored)} bytes"
            )
        _, total_len, head = _OVERFLOW_STUB.unpack(stored)
        return self._read_overflow(head, total_len)

    def _release(self, stored: bytes) -> None:
        """Free any overflow chain owned by a stored record."""
        if stored[0] == _OVERFLOW_TAG:
            _, __, head = _OVERFLOW_STUB.unpack(stored)
            self._free_overflow(head)

    # -- operations -----------------------------------------------------------

    def insert(self, record: bytes) -> RID:
        """Append ``record``; returns its stable RID."""
        return self._insert_stored(self._wrap(record))

    def _insert_stored(self, stored: bytes) -> RID:
        if self.page_ids:
            page_no = len(self.page_ids) - 1
            page = self._page(page_no)
            if page.can_fit(len(stored)):
                slot = page.insert(stored)
                self._dirty(page_no)
                self._record_count += 1
                return RID(page_no, slot)
        page_id = self.pool.new_page()
        # Slotted pages carry a CRC32 header field: enroll them so the pool
        # stamps it on write-back and verifies it on miss reads.
        self.pool.protect(page_id)
        self.page_ids.append(page_id)
        page_no = len(self.page_ids) - 1
        fresh = SlottedPage(page_size=self.pool.disk.page_size)
        frame = self.pool.get_page(page_id)
        frame[:] = fresh.data
        page = SlottedPage(frame, page_size=self.pool.disk.page_size)
        slot = page.insert(stored)
        self._dirty(page_no)
        self._record_count += 1
        return RID(page_no, slot)

    def read(self, rid: RID) -> bytes:
        """Return the record stored at ``rid``."""
        return self._unwrap(self._page(rid.page_no).read(rid.slot))

    def delete(self, rid: RID) -> None:
        """Delete the record at ``rid`` (tombstones the slot)."""
        # Pinned: _release touches overflow-chain pages through the pool,
        # which may otherwise evict this very page and orphan the frame
        # view we are about to tombstone through.
        if not 0 <= rid.page_no < len(self.page_ids):
            raise StorageError(f"heap page {rid.page_no} out of range")
        page_id = self.page_ids[rid.page_no]
        self.pool.pin(page_id)
        try:
            page = self._page(rid.page_no)
            self._release(page.read(rid.slot))
            page.delete(rid.slot)
            self._dirty(rid.page_no)
            self._record_count -= 1
        finally:
            self.pool.unpin(page_id)

    def update(self, rid: RID, record: bytes) -> RID:
        """Update the record at ``rid`` in place when it fits.

        If the new record no longer fits in its page, the record moves to a
        fresh location and the *new* RID is returned; callers owning
        secondary structures must handle the move.
        """
        # Pinned across the whole rewrite: _release frees the old overflow
        # chain and _wrap may allocate a new one, and both walk other pages
        # through the pool.  Under memory pressure that used to evict this
        # page between reading the frame view and writing through it — the
        # write landed on an orphaned buffer and mark_dirty blew up, leaving
        # the old record freed but the slot not yet rewritten.
        if not 0 <= rid.page_no < len(self.page_ids):
            raise StorageError(f"heap page {rid.page_no} out of range")
        page_id = self.page_ids[rid.page_no]
        self.pool.pin(page_id)
        try:
            page = self._page(rid.page_no)
            self._release(page.read(rid.slot))
            stored = self._wrap(record)
            try:
                page.update(rid.slot, stored)
                self._dirty(rid.page_no)
                return rid
            except PageFullError:
                page.delete(rid.slot)
                self._dirty(rid.page_no)
                self._record_count -= 1
                # Re-insert the already-wrapped form: _wrap may have
                # allocated an overflow chain that must not be duplicated.
                return self._insert_stored(stored)
        finally:
            self.pool.unpin(page_id)

    def scan(self) -> Iterator[tuple[RID, bytes]]:
        """Yield ``(rid, record)`` for every live record, in page order."""
        for page_no in range(len(self.page_ids)):
            page = self._page(page_no)
            for slot, stored in page.records():
                yield RID(page_no, slot), self._unwrap(stored)

    # -- repair hooks -----------------------------------------------------------

    def salvage_delete(self, rid: RID) -> None:
        """Best-effort delete for the repair path.

        A normal :meth:`delete` re-reads the stored record to release its
        overflow chain; on a record too damaged to read (or whose stub now
        points at garbage) that raises. Here the slot is tombstoned anyway
        — losing an overflow chain beats keeping an undecodable record —
        and a slot that cannot even be tombstoned is left for page
        quarantine to deal with.
        """
        try:
            self.delete(rid)
        except ReproError:
            try:
                self._page(rid.page_no).delete(rid.slot)
            except ReproError:
                return
            self._dirty(rid.page_no)
            self._record_count -= 1

    def recount(self) -> int:
        """Re-derive the live-record counter from the pages themselves.

        Page quarantine and salvage deletes can leave the cached counter
        out of step with the slots; the slots are authoritative.
        """
        live = 0
        for page_no in range(len(self.page_ids)):
            live += self._page(page_no).live_count()
        self._record_count = live
        return live

    def drop(self) -> None:
        """Deallocate every page of the file (overflow chains included)."""
        for page_no in range(len(self.page_ids)):
            page = self._page(page_no)
            for _, stored in page.records():
                self._release(stored)
        for page_id in self.page_ids:
            self.pool.free_page(page_id)
        self.page_ids.clear()
        self._record_count = 0
