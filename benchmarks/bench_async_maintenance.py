"""Bench — foreground ingest cost of synchronous vs deferred maintenance.

§7 frames summary maintenance cost as the price of first-class summaries;
``REPRO_SUMMARY_ASYNC=deferred`` moves that price off the write path: the
annotation statement only appends the raw annotation and marks the target
tuples stale, while regeneration happens in maintenance batches.  This
bench measures the sustained ingest rate of each mode over an identical
annotation stream (two classifiers + a snippet extractor linked, so the
synchronous path does real per-write work), then drains the deferred
engine and asserts it converged to the synchronous engine's exact
summary state.

Asserted: deferred ingest sustains at least 2x the synchronous rate at
default scale (the quick CI smoke preset only requires it not to lose).
"""

import random

import pytest

from repro.bench import FigureTable, Measurement
from repro.catalog.schema import Column
from repro.core.database import Database
from repro.storage.record import ValueType

SEED_EXAMPLES = [
    ("flu virus infection outbreak", "Disease"),
    ("survey checklist volunteer count", "Other"),
]
TEXTS = [
    "flu virus outbreak reported near the wetland survey site",
    "infection spreading among the flock, flu virus suspected",
    "volunteer checklist survey count for the morning watch",
    "routine survey checklist submitted by the volunteer team",
    "a long free-form field note that rambles on about habitat and "
    "weather conditions until it is comfortably past the snippet "
    "extractor's minimum length threshold for this configuration",
]

#: density -> mode -> annotations ingested per second (cross-test state:
#: the deferred test asserts against the sync test's rate).
_RATES: dict[int, dict[str, float]] = {}
#: density -> mode -> canonical summary-storage state after full drain.
_STATES: dict[int, dict[str, dict]] = {}


def _build(mode: str, num_rows: int) -> Database:
    db = Database(buffer_pages=512, summary_async=mode)
    db.create_table("notes", [Column("name", ValueType.TEXT)])
    db.create_classifier_instance("C1", ["Disease", "Other"], SEED_EXAMPLES)
    db.create_classifier_instance("C2", ["Disease", "Other"], SEED_EXAMPLES)
    db.create_snippet_instance("S", min_chars=120, max_chars=60)
    db.create_cluster_instance("G")
    for instance in ("C1", "C2", "S", "G"):
        db.manager.link("notes", instance)
    for i in range(num_rows):
        db.insert("notes", {"name": f"r{i}"})
    return db


def _stream(num_rows: int, density: int) -> list[tuple[int, str]]:
    rng = random.Random(1109)
    return [
        (rng.randrange(1, num_rows + 1), rng.choice(TEXTS))
        for _ in range(num_rows * density)
    ]


def _canonical(db: Database) -> dict:
    state = {}
    for oid, objects in db.manager.storage_for("notes").scan():
        row = {}
        for name, obj in sorted(objects.items()):
            d = obj.to_dict()
            d.pop("obj_id", None)
            row[name] = d
        state[oid] = row
    return state


@pytest.mark.benchmark(group="async-maintenance")
@pytest.mark.parametrize("mode", ["sync", "deferred"])
@pytest.mark.parametrize("density", [10, 50])
def test_ingest_throughput(benchmark, mode, density, preset, figure_writer):
    if density not in preset.densities:
        pytest.skip(f"density {density} not in preset {preset.name}")
    num_rows = max(preset.num_birds // 2, 20)
    stream = _stream(num_rows, density)

    db = _build("off" if mode == "sync" else "deferred", num_rows)
    if mode == "deferred":
        # Measure the pure foreground admission cost; the drain runs (and
        # is timed) below instead of racing the ingest loop for the GIL.
        db.manager.maint_wake = None

    def ingest():
        for oid, text in stream:
            db.add_annotation(text, table="notes", oid=oid)
        return stream

    before = db.disk.stats.snapshot()
    benchmark.pedantic(ingest, rounds=1, iterations=1)
    seconds = benchmark.stats.stats.min
    m = Measurement(seconds, db.disk.stats.delta(before), len(stream))

    drain = Measurement(0.0, db.disk.stats.delta(db.disk.stats.snapshot()))
    if mode == "deferred":
        lag = db.manager.pending_lag_seconds()
        drain_before = db.disk.stats.snapshot()
        drained, drain_seconds = _timed_drain(db)
        drain = Measurement(drain_seconds, db.disk.stats.delta(drain_before),
                            drained)
        assert not db.manager.has_pending()
        db.stop_maintenance()
        figure_writer.setdefault(
            "async_maintenance_lag",
            FigureTable("Deferred maintenance — staleness lag and drain "
                        "cost after ingest", unit="s"),
        ).add("oldest-lag", f"d={density}", lag)
        figure_writer["async_maintenance_lag"].add(
            "full-drain", f"d={density}", drain.seconds
        )

    _STATES.setdefault(density, {})[mode] = _canonical(db)
    rate = len(stream) / max(m.seconds, 1e-9)
    _RATES.setdefault(density, {})[mode] = rate

    table = figure_writer.setdefault(
        "async_maintenance_ingest",
        FigureTable("Sustained annotation ingest — synchronous vs deferred "
                    "summary maintenance", unit="annotations/s"),
    )
    table.add(mode, f"d={density}", rate)

    rates = _RATES[density]
    if len(rates) == 2:
        speedup = rates["deferred"] / rates["sync"]
        table.note(f"d={density}: deferred ingests {speedup:.1f}x faster "
                   f"than sync (foreground admission only)")
        floor = 2.0 if preset.name != "quick" else 1.0
        assert speedup >= floor, (
            f"deferred ingest only {speedup:.2f}x sync at density "
            f"{density} (need >= {floor}x at preset {preset.name})"
        )
        # Convergence: after the drain the deferred engine's summary
        # storage is byte-identical (modulo obj_id) to the sync engine's.
        assert _STATES[density]["deferred"] == _STATES[density]["sync"], (
            "deferred maintenance did not converge to the sync state"
        )


def _timed_drain(db: Database) -> tuple[int, float]:
    import time

    started = time.perf_counter()
    drained = db.drain_summaries()
    return drained, time.perf_counter() - started
