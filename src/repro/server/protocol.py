"""Wire protocol of the query server: length-prefixed JSON frames.

A frame is a 4-byte big-endian length word followed by the payload.
The top bit of the length word is the **checksum flag**: when set, a
4-byte big-endian CRC32 of the payload sits between the length word and
the payload, and the remaining 31 bits give the payload length.  Both
the server and :class:`~repro.server.client.QueryClient` send
checksummed frames by default — a garbled or half-delivered frame then
surfaces as a typed :class:`~repro.errors.ProtocolError`, never as a
silently wrong result — while plain frames (flag clear) remain accepted
for wire compatibility and hand-rolled test clients.

Requests are objects::

    {"sql": "<statement>"}            required (unless "op" is given)
    {"timeout": <seconds>}            optional per-statement deadline
                                      (clamped to the server's max)
    {"min_lsn": <int>}                bounded-staleness read: only
                                      execute once the server has
                                      applied through this LSN, else
                                      answer ReplicaLaggingError
    {"min_lsn_timeout": <seconds>}    how long a min_lsn read may wait
                                      for the replica to catch up
    {"op": "health"}                  liveness/health probe — answered
                                      inline, never queued, even while
                                      the server drains
    {"op": "replicate", ...}          primary-side WAL streaming (see
                                      repro.replication.primary); also
                                      "replicate_snapshot" (bootstrap
                                      image chunks), "replicate_detach"
                                      (release a stream's retention
                                      pin), and — on replicas —
                                      "promote" (become a writable
                                      primary)

Responses are objects with ``ok``::

    {"ok": true,  "result": <value>, "elapsed_ms": <float>, "lsn": <int>}
    {"ok": false, "error": "<message>", "error_type": "<ReproError class>"}

The ``lsn`` on success responses is the server's log position (a
primary's flushed WAL tail; a replica's applied watermark) — clients
carry it forward as the ``min_lsn`` bound for read-your-writes reads
against replicas.

Result values mirror :meth:`Database.sql` returns in JSON shape: a
SELECT becomes ``{"columns": [...], "rows": [[...]], "row_count": n}``,
ZOOM IN a list of texts, DELETE/UPDATE/ANNOTATE a number, DDL/INSERT
``null``, EXPLAIN its rendered text.  A health probe's result is the
server's :meth:`~repro.server.server.QueryServer.health` dict (status,
queue depth, connection counts, degraded access paths).

Framing errors are deliberately unforgiving: an oversized length,
checksum mismatch, or undecodable payload raises
:class:`~repro.errors.ProtocolError` and the server answers with an
error frame then drops the connection — a peer that cannot frame
correctly cannot be trusted to stay in sync with the stream.  Statement
errors (parse errors, lock timeouts, deadlines) and admission sheds
(:class:`~repro.errors.ServerOverloadedError`) are ordinary
``ok: false`` responses and the connection survives.
"""

from __future__ import annotations

import json
import struct
import zlib

from repro.errors import ProtocolError

#: 4-byte big-endian unsigned frame length (and CRC32 word).
LENGTH = struct.Struct(">I")

#: Top bit of the length word: a CRC32 word follows the header.
CRC_FLAG = 0x8000_0000

#: Refuse frames beyond this many payload bytes (requests *and* results).
MAX_FRAME = 8 * 1024 * 1024

#: Default server port (0 = ephemeral, for tests).
DEFAULT_PORT = 5433


def frame_crc(payload: bytes) -> int:
    """CRC32 of a frame payload (what the checksum word carries)."""
    return zlib.crc32(payload) & 0xFFFF_FFFF


def encode_frame(obj: object, max_frame: int = MAX_FRAME,
                 crc: bool = False) -> bytes:
    """Serialize one length-prefixed JSON frame; ``crc=True`` sets the
    checksum flag and prepends the payload CRC32."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > max_frame:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the {max_frame}-byte limit"
        )
    if crc:
        return (LENGTH.pack(len(payload) | CRC_FLAG)
                + LENGTH.pack(frame_crc(payload)) + payload)
    return LENGTH.pack(len(payload)) + payload


def decode_header(header: bytes,
                  max_frame: int = MAX_FRAME) -> tuple[int, bool]:
    """Validate and unpack a frame header; returns
    ``(payload_length, has_crc)``."""
    if len(header) != LENGTH.size:
        raise ProtocolError(
            f"truncated frame header ({len(header)} of {LENGTH.size} bytes)"
        )
    (word,) = LENGTH.unpack(header)
    has_crc = bool(word & CRC_FLAG)
    length = word & ~CRC_FLAG
    if length > max_frame:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame}-byte limit"
        )
    return length, has_crc


def decode_length(header: bytes, max_frame: int = MAX_FRAME) -> int:
    """Validate and unpack a frame header; returns the payload length
    (checksum flag masked off — use :func:`decode_header` when the flag
    matters)."""
    return decode_header(header, max_frame)[0]


def verify_crc(payload: bytes, expected: int) -> None:
    """Raise :class:`ProtocolError` when ``payload`` fails its checksum."""
    actual = frame_crc(payload)
    if actual != expected:
        raise ProtocolError(
            f"frame checksum mismatch (crc {actual:#010x} != "
            f"declared {expected:#010x}): bytes were corrupted in flight"
        )


def decode_payload(payload: bytes) -> dict:
    """Decode a frame payload into a request/response object."""
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def jsonable_result(result: object) -> object:
    """Render a :meth:`Database.sql` return value as JSON-compatible data."""
    from repro.core.database import QueryReport
    from repro.query.result import ResultSet

    if result is None or isinstance(result, (bool, int, float, str)):
        return result
    if isinstance(result, ResultSet):
        payload = {
            "columns": list(result.columns),
            "rows": [
                [_jsonable_value(v) for v in t.values] for t in result.tuples
            ],
            "row_count": len(result),
        }
        if result.summary_status is not None:
            # Deferred maintenance only; absent otherwise so the wire
            # shape (and every pre-async client) is unchanged.
            payload["summary_status"] = list(result.summary_status)
        return payload
    if isinstance(result, QueryReport):
        return str(result)
    if isinstance(result, (list, tuple)):
        return [_jsonable_value(v) for v in result]
    return str(result)


def _jsonable_value(value: object) -> object:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)
