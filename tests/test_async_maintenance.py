"""Staleness semantics of background summary maintenance.

The load-bearing property: **deferred maintenance converges to exactly the
state synchronous maintenance produces** — same storage rows byte-for-byte
(modulo the process-global ``obj_id`` counter), same pending-set emptiness —
no matter how the writes interleave with drains.  A Hypothesis property
drives random add/delete programs through a sync and a deferred engine and
compares canonicalized storage after the drain; crash tests prove the
pending-work set is rebuilt from the WAL so no tuple is ever permanently
stale.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.annotations.annotation import AnnotationTarget  # noqa: E402
from repro.catalog.schema import Column  # noqa: E402
from repro.core.database import Database  # noqa: E402
from repro.storage.record import ValueType  # noqa: E402
from repro.summaries.background import PendingSummaryWork  # noqa: E402
from repro.wal.device import MemoryWALDevice  # noqa: E402
from repro.wal.recovery import replay  # noqa: E402

SEED = [
    ("apple alpha fruit orchard", "alpha"),
    ("bear beta animal forest", "beta"),
]
TEXTS = [
    "apple alpha fruit",
    "orchard apple alpha",
    "bear beta forest",
    "animal bear beta",
    "a note that is long enough to earn a snippet from the extractor "
    "because it keeps going well past the configured minimum length",
]


def build_db(mode) -> Database:
    db = Database(buffer_pages=256, summary_async=mode)
    db.create_table("t", [Column("name", ValueType.TEXT)])
    db.create_classifier_instance("C", ["alpha", "beta"], SEED)
    db.create_snippet_instance("S", min_chars=60, max_chars=40)
    db.manager.link("t", "C")
    db.manager.link("t", "S")
    for i in range(4):
        db.insert("t", {"name": f"r{i}"})
    return db


def canonical_state(db: Database, table: str = "t") -> dict:
    """Storage rows as comparable dicts.  ``obj_id`` is a process-global
    counter (two *sync* runs already differ on it), so it is stripped."""
    state: dict = {}
    for oid, objects in db.manager.storage_for(table).scan():
        row = {}
        for name, obj in sorted(objects.items()):
            d = obj.to_dict()
            d.pop("obj_id", None)
            row[name] = d
        state[oid] = row
    return state


#: A program: each step either adds an annotation (oid, text) or deletes
#: the k-th live annotation.
_STEP = st.one_of(
    st.tuples(st.just("add"), st.integers(min_value=1, max_value=4),
              st.integers(min_value=0, max_value=len(TEXTS) - 1)),
    st.tuples(st.just("del"), st.integers(min_value=0, max_value=30),
              st.just(0)),
)


def run_program(db: Database, program) -> None:
    live: list[int] = []
    for op, a, b in program:
        if op == "add":
            ann = db.add_annotation(TEXTS[b], table="t", oid=a)
            live.append(ann.ann_id)
        elif live:
            db.delete_annotation(live.pop(a % len(live)))


class TestConvergence:
    @settings(max_examples=25, deadline=None)
    @given(program=st.lists(_STEP, min_size=1, max_size=14))
    def test_deferred_converges_to_sync(self, program):
        sync_db = build_db("off")
        run_program(sync_db, program)
        deferred_db = build_db("deferred")
        try:
            run_program(deferred_db, program)
            deferred_db.drain_summaries()
            assert canonical_state(deferred_db) == canonical_state(sync_db)
            assert not deferred_db.manager.has_pending()
        finally:
            deferred_db.stop_maintenance()

    @settings(max_examples=10, deadline=None)
    @given(program=st.lists(
        st.tuples(st.just("add"), st.integers(min_value=1, max_value=3),
                  st.integers(min_value=0, max_value=len(TEXTS) - 1)),
        min_size=1, max_size=10,
    ))
    def test_deferred_converges_with_clusters_add_only(self, program):
        """Clusters included (add-only: incremental removal is
        path-dependent, so regeneration defines the canonical grouping
        for deletes — adds must still match sync exactly)."""
        def build(mode):
            db = Database(buffer_pages=256, summary_async=mode)
            db.create_table("t", [Column("name", ValueType.TEXT)])
            db.create_classifier_instance("C", ["alpha", "beta"], SEED)
            db.create_cluster_instance("G")
            db.manager.link("t", "C")
            db.manager.link("t", "G")
            for i in range(3):
                db.insert("t", {"name": f"r{i}"})
            return db

        sync_db = build("off")
        run_program(sync_db, program)
        deferred_db = build("deferred")
        try:
            run_program(deferred_db, program)
            deferred_db.drain_summaries()
            assert canonical_state(deferred_db) == canonical_state(sync_db)
        finally:
            deferred_db.stop_maintenance()

    def test_coherent_mode_is_observably_sync(self):
        sync_db = build_db("off")
        coherent_db = build_db("coherent")
        for db in (sync_db, coherent_db):
            db.add_annotation(TEXTS[0], table="t", oid=1)
            db.add_annotation(TEXTS[2], table="t", oid=1)
            db.add_annotation(TEXTS[4], table="t", oid=2)
        assert canonical_state(coherent_db) == canonical_state(sync_db)
        # Coherent mode drains inside the statement: nothing pending after.
        assert not coherent_db.manager.has_pending()

    def test_drain_order_does_not_matter(self):
        one = build_db("deferred")
        batched = build_db("deferred")
        try:
            for db in (one, batched):
                db.manager.maint_wake = None  # keep the worker out of it
                for oid in (1, 2, 3):
                    db.add_annotation(TEXTS[0], table="t", oid=oid)
                    db.add_annotation(TEXTS[2], table="t", oid=oid)
            while one.manager.drain_pending(limit=1):
                pass
            batched.drain_summaries()
            assert canonical_state(one) == canonical_state(batched)
        finally:
            one.stop_maintenance()
            batched.stop_maintenance()


class TestStalenessSurfacing:
    def test_results_carry_summary_status(self):
        db = build_db("deferred")
        try:
            db.manager.maint_wake = None  # deterministic staleness
            db.add_annotation(TEXTS[0], table="t", oid=1)
            result = db.sql("Select name From t Order By name")
            assert result.summary_status is not None
            assert result.summary_status[0] == "stale"
            assert result.summary_status[1:] == ["fresh"] * 3
            db.drain_summaries()
            result = db.sql("Select name From t Order By name")
            # Nothing pending: the field is omitted entirely.
            assert result.summary_status is None
        finally:
            db.stop_maintenance()

    def test_sync_mode_never_reports_status(self):
        db = build_db("off")
        db.add_annotation(TEXTS[0], table="t", oid=1)
        assert db.sql("Select name From t").summary_status is None

    def test_stale_rows_answer_from_last_generation(self):
        db = build_db("deferred")
        try:
            db.manager.maint_wake = None
            db.add_annotation(TEXTS[0], table="t", oid=1)
            db.drain_summaries()
            db.add_annotation(TEXTS[2], table="t", oid=1)  # stale again
            sset = db.manager.summary_set_for("t", 1)
            # Graceful degradation: the last-generated object (one alpha),
            # not a blocking regeneration and not an error.
            assert sset.get_summary_object("C").get_label_value("alpha") == 1
            assert db.manager.summary_status("t", 1) == "stale"
        finally:
            db.stop_maintenance()

    def test_zoom_in_reports_freshness(self):
        db = build_db("deferred")
        try:
            db.manager.maint_wake = None
            db.add_annotation(TEXTS[0], table="t", oid=1)
            db.drain_summaries()
            db.add_annotation(TEXTS[1], table="t", oid=1)
            stale = db.zoom_in("t", 1, "C", "alpha")
            assert stale.summary_status == "stale"
            # Stale zooms answer from the last-generated objects.
            assert list(stale) == [TEXTS[0]]
            db.drain_summaries()
            fresh = db.zoom_in("t", 1, "C", "alpha")
            assert fresh.summary_status == "fresh"
            assert sorted(fresh) == sorted([TEXTS[0], TEXTS[1]])
        finally:
            db.stop_maintenance()

    def test_backlog_gauges(self):
        db = build_db("deferred")
        try:
            db.manager.maint_wake = None
            db.add_annotation(TEXTS[0], table="t", oid=1)
            db.add_annotation(TEXTS[2], table="t", oid=2)
            snap = db.metrics_snapshot()
            assert snap["maint.backlog"] == 2
            assert snap["maint.lag_seconds"] >= 0.0
            db.drain_summaries()
            snap = db.metrics_snapshot()
            assert snap["maint.backlog"] == 0
            assert snap["maint.regen"] == 2
        finally:
            db.stop_maintenance()


class TestWorker:
    def test_worker_drains_in_background(self):
        import time

        db = build_db("deferred")
        try:
            db.add_annotation(TEXTS[0], table="t", oid=1)
            deadline = time.monotonic() + 5.0
            while db.manager.has_pending() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not db.manager.has_pending(), "worker never drained"
            assert db.manager.summary_status("t", 1) == "fresh"
            sset = db.manager.summary_set_for("t", 1)
            assert sset.get_summary_object("C").get_label_value("alpha") == 1
        finally:
            db.stop_maintenance()

    def test_stop_maintenance_drains_inline(self):
        db = build_db("deferred")
        db.manager.maint_wake = None
        db.add_annotation(TEXTS[0], table="t", oid=1)
        db.stop_maintenance()
        assert not db.manager.has_pending()

    def test_save_drains_first(self, tmp_path):
        db = build_db("deferred")
        try:
            db.manager.maint_wake = None
            db.add_annotation(TEXTS[0], table="t", oid=1)
            db.save(tmp_path / "img")
            assert not db.manager.has_pending()
            loaded = Database.load(tmp_path / "img")
            sset = loaded.manager.summary_set_for("t", 1)
            assert sset.get_summary_object("C").get_label_value("alpha") == 1
        finally:
            db.stop_maintenance()


class TestCrashRecovery:
    def test_pending_set_rebuilt_from_wal(self):
        """A crash with staleness outstanding: replaying the WAL into a
        deferred-mode engine re-marks every affected tuple pending, and a
        drain converges to the sync oracle — no tuple is permanently
        stale."""
        db = build_db("deferred")
        device = db.attach_wal().device
        db.manager.maint_wake = None
        db.add_annotation(TEXTS[0], table="t", oid=1)
        db.add_annotation(TEXTS[2], table="t", oid=2)
        assert db.manager.pending_count() == 2  # crash strikes here

        recovered = build_db("deferred")
        recovered.manager.maint_wake = None
        replay(recovered, device)
        # Maintenance work survived the crash as replayed staleness...
        assert recovered.manager.pending_count() == 2
        recovered.drain_summaries()
        # ...and converges to exactly the sync-mode oracle.
        oracle = build_db("off")
        oracle.add_annotation(TEXTS[0], table="t", oid=1)
        oracle.add_annotation(TEXTS[2], table="t", oid=2)
        assert canonical_state(recovered) == canonical_state(oracle)
        assert not recovered.manager.has_pending()

    def test_coherent_recovery_drains_at_replay_end(self):
        db = build_db("coherent")
        device = db.attach_wal().device
        db.add_annotation(TEXTS[0], table="t", oid=1)

        recovered = build_db("coherent")
        replay(recovered, device)
        assert not recovered.manager.has_pending()
        sset = recovered.manager.summary_set_for("t", 1)
        assert sset.get_summary_object("C").get_label_value("alpha") == 1

    def test_bulk_load_is_durable(self):
        """Satellite regression: bulk annotation loads emit a WAL record.
        Pre-fix, `manager.add_annotations_bulk` bypassed the log and a
        crash silently lost the whole batch."""
        db = build_db("off")
        device = db.attach_wal().device
        annotations = db.add_annotations_bulk([
            (TEXTS[0], [AnnotationTarget("t", 1)]),
            (TEXTS[2], [AnnotationTarget("t", 2)]),
        ])

        recovered = build_db("off")
        replay(recovered, device)
        for ann in annotations:
            got = recovered.manager.annotations.get(ann.ann_id)
            assert got.text == ann.text  # identical forced identities
        sset = recovered.manager.summary_set_for("t", 1)
        assert sset.get_summary_object("C").get_label_value("alpha") == 1

    def test_bulk_ids_sequential_across_replay(self):
        db = build_db("off")
        device = db.attach_wal().device
        db.add_annotation(TEXTS[0], table="t", oid=1)
        batch = db.add_annotations_bulk([
            (TEXTS[1], [AnnotationTarget("t", 1)]),
            (TEXTS[2], [AnnotationTarget("t", 2)]),
        ])
        after = db.add_annotation(TEXTS[3], table="t", oid=3)
        assert [a.ann_id for a in batch] == [2, 3]
        assert after.ann_id == 4

        recovered = build_db("off")
        replay(recovered, device)
        assert recovered.manager.annotations.next_id == 5


class TestPendingSetSerialization:
    def test_pickle_roundtrip_keeps_entries(self):
        import pickle

        pending = PendingSummaryWork()
        pending.mark("t", 1, generation=3, epoch=7)
        pending.mark("t", 2)
        clone = pickle.loads(pickle.dumps(pending))
        assert len(clone) == 2
        assert ("t", 1) in clone and ("t", 2) in clone
        entry = clone.snapshot()[("t", 1)]
        assert (entry.generation, entry.epoch) == (3, 7)

    def test_mark_keeps_original_enqueue_time(self):
        pending = PendingSummaryWork()
        assert pending.mark("t", 1)
        first = pending.snapshot()[("t", 1)].enqueued_at
        assert not pending.mark("t", 1)  # already pending: no-op
        assert pending.snapshot()[("t", 1)].enqueued_at == first

    def test_fifo_pop_and_table_filter(self):
        pending = PendingSummaryWork()
        pending.mark("a", 1)
        pending.mark("b", 2)
        pending.mark("a", 3)
        assert pending.pop_next("b")[0] == ("b", 2)
        assert pending.pop_next()[0] == ("a", 1)
        assert pending.pop_next()[0] == ("a", 3)
        assert pending.pop_next() is None

    def test_deferred_survives_save_load(self, tmp_path):
        """save() drains, so images never carry staleness — but a
        pending set pickled mid-flight (e.g. inside a worker image)
        still round-trips."""
        db = build_db("deferred")
        try:
            db.manager.maint_wake = None
            db.add_annotation(TEXTS[0], table="t", oid=1)
            db.save(tmp_path / "img")  # drains first
            loaded = Database.load(tmp_path / "img")
            assert not loaded.manager.has_pending()
            # The loaded engine keeps deferring and draining correctly.
            loaded.manager.maint_wake = None
            loaded.add_annotation(TEXTS[2], table="t", oid=2)
            assert loaded.manager.summary_status("t", 2) == "stale"
            loaded.drain_summaries()
            assert loaded.manager.summary_status("t", 2) == "fresh"
        finally:
            db.stop_maintenance()


class TestTupleDeleteInteraction:
    def test_deleted_tuple_never_regenerated(self):
        db = build_db("deferred")
        try:
            db.manager.maint_wake = None
            db.add_annotation(TEXTS[0], table="t", oid=1)
            db.delete_tuple("t", 1)
            assert not db.manager.has_pending()  # discarded with the tuple
            db.drain_summaries()
            assert db.manager.storage_for("t").get(1) is None
        finally:
            db.stop_maintenance()

    def test_stale_then_all_annotations_deleted(self):
        """Deferred writes then deletes leaving zero annotations: the
        drain must drop the row (satellite-3 semantics through the regen
        path)."""
        db = build_db("deferred")
        try:
            db.manager.maint_wake = None
            ann = db.add_annotation(TEXTS[0], table="t", oid=1)
            db.drain_summaries()
            assert db.manager.storage_for("t").get(1) is not None
            db.delete_annotation(ann.ann_id)
            db.drain_summaries()
            assert db.manager.storage_for("t").get(1) is None
        finally:
            db.stop_maintenance()
