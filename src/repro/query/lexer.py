"""Tokenizer for the SQL subset."""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<dollar>\$)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><>|<=|>=|=|<|>)
  | (?P<punct>[(),.;*\[\]])
    """,
    re.VERBOSE,
)

KEYWORDS = {
    "select", "from", "where", "and", "or", "not", "order", "by", "group",
    "asc", "desc", "join", "on", "as", "like", "limit", "alter", "table",
    "add", "drop", "indexable", "zoom", "in", "create", "insert", "into",
    "values", "int", "float", "text", "bool", "count", "sum", "avg", "min",
    "max", "true", "false", "null", "distinct", "filter", "summaries",
    "having", "delete", "update", "set", "explain", "analyze",
    "begin", "commit", "abort", "rollback", "transaction", "annotate",
}


@dataclass(frozen=True)
class Token:
    kind: str  # number | string | ident | keyword | op | punct | dollar | eof
    value: object
    pos: int

    def __str__(self) -> str:
        return f"{self.value}"


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; raises :class:`ParseError` on unknown characters."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise ParseError(f"unexpected character {sql[pos]!r} at {pos}")
        kind = match.lastgroup
        text = match.group(0)
        if kind == "ws":
            pos = match.end()
            continue
        if kind == "number":
            value: object = float(text) if "." in text else int(text)
            tokens.append(Token("number", value, pos))
        elif kind == "string":
            tokens.append(Token("string", text[1:-1].replace("''", "'"), pos))
        elif kind == "ident":
            lowered = text.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, pos))
            else:
                tokens.append(Token("ident", text, pos))
        elif kind == "dollar":
            tokens.append(Token("dollar", "$", pos))
        else:
            tokens.append(Token(kind, text, pos))
        pos = match.end()
    tokens.append(Token("eof", "<eof>", pos))
    return tokens
