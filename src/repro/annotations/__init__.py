"""Raw annotation model and storage.

Annotations are free-text notes attached to data: a single cell, a whole
row, a column slice of a row, or arbitrary sets/combinations of cells —
possibly spanning tuples of different tables (which is what makes the
double-count-avoiding merge of §2.2 necessary).
"""

from repro.annotations.annotation import Annotation, AnnotationTarget
from repro.annotations.store import AnnotationStore

__all__ = ["Annotation", "AnnotationTarget", "AnnotationStore"]
