"""Shared test configuration.

Registers Hypothesis profiles so example counts scale with the run:

* ``dev`` (default) — small example counts, keeps the tier-1 suite fast.
* ``ci-slow`` — the scheduled CI job's deep run: an order of magnitude more
  examples, no deadline.

Select with ``HYPOTHESIS_PROFILE=ci-slow``. The stateful DML suite also
reads ``REPRO_STATEFUL_EXAMPLES`` / ``REPRO_STATEFUL_STEPS`` directly so
the fault-sweep matrix can crank just that dimension.
"""

from __future__ import annotations

import os

try:
    from hypothesis import HealthCheck, settings

    settings.register_profile(
        "dev",
        max_examples=25,
        stateful_step_count=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile(
        "ci-slow",
        max_examples=300,
        stateful_step_count=50,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover - hypothesis-less environments
    pass
