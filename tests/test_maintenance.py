"""Integration tests for annotation storage + incremental summary
maintenance (§2.1, §4.1.2)."""

import pytest

from repro.annotations.annotation import AnnotationTarget
from repro.errors import RecordNotFoundError, SummaryError, UnknownInstanceError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.summaries.maintenance import SummaryManager

SEED = [
    ("observed infection avian flu disease symptoms sick virus", "Disease"),
    ("parasite outbreak illness infected disease", "Disease"),
    ("wing beak feather plumage anatomy body tail skeleton", "Anatomy"),
    ("wingspan weight size bone anatomy measurements", "Anatomy"),
    ("migration nesting singing foraging behavior courtship", "Behavior"),
    ("feeding eating diving flying flock behavior", "Behavior"),
    ("general note comment misc", "Other"),
]


def make_manager():
    manager = SummaryManager(BufferPool(DiskManager(), capacity=1024))
    manager.create_classifier_instance(
        "ClassBird1", ["Disease", "Anatomy", "Behavior", "Other"], SEED
    )
    manager.create_snippet_instance("TextSummary1", min_chars=80, max_chars=60)
    manager.create_cluster_instance("SimCluster")
    for name in ("ClassBird1", "TextSummary1", "SimCluster"):
        manager.link("birds", name)
    return manager


def row_target(oid, columns=()):
    return [AnnotationTarget("birds", oid, tuple(columns))]


class TestAnnotationStore:
    def test_create_get_roundtrip(self):
        m = make_manager()
        ann = m.annotations.create("a note", row_target(1))
        got = m.annotations.get(ann.ann_id)
        assert got.text == "a note"
        assert got.targets[0].oid == 1

    def test_ids_monotonic(self):
        m = make_manager()
        a = m.annotations.create("x", row_target(1))
        b = m.annotations.create("y", row_target(1))
        assert b.ann_id == a.ann_id + 1

    def test_delete(self):
        m = make_manager()
        ann = m.annotations.create("gone", row_target(1))
        m.annotations.delete(ann.ann_id)
        with pytest.raises(RecordNotFoundError):
            m.annotations.get(ann.ann_id)

    def test_texts_order(self):
        m = make_manager()
        ids = [m.annotations.create(f"t{i}", row_target(1)).ann_id for i in range(3)]
        assert m.annotations.texts(ids) == ["t0", "t1", "t2"]

    def test_annotation_needs_target(self):
        m = make_manager()
        with pytest.raises(SummaryError):
            m.annotations.create("orphan", [])


class TestInstanceRegistry:
    def test_duplicate_instance_rejected(self):
        m = make_manager()
        with pytest.raises(SummaryError):
            m.create_snippet_instance("TextSummary1")

    def test_unknown_instance_link_rejected(self):
        m = make_manager()
        with pytest.raises(UnknownInstanceError):
            m.link("birds", "Nope")

    def test_double_link_rejected(self):
        m = make_manager()
        with pytest.raises(SummaryError):
            m.link("birds", "ClassBird1")

    def test_unlink(self):
        m = make_manager()
        m.unlink("birds", "SimCluster")
        assert not m.is_linked("birds", "SimCluster")
        names = [i.name for i in m.instances_for("birds")]
        assert names == ["ClassBird1", "TextSummary1"]

    def test_tables_with_instance(self):
        m = make_manager()
        m.link("synonyms", "TextSummary1")
        assert set(m.tables_with_instance("TextSummary1")) == {"birds", "synonyms"}


class TestAddAnnotation:
    def test_first_annotation_creates_storage_row(self):
        m = make_manager()
        storage = m.storage_for("birds")
        assert storage.get(1) is None
        m.add_annotation("bird shows avian flu infection disease", row_target(1))
        objects = storage.get(1)
        assert objects is not None
        assert set(objects) == {"ClassBird1", "TextSummary1", "SimCluster"}

    def test_classifier_counts_grow(self):
        m = make_manager()
        m.add_annotation("avian flu infection disease symptoms", row_target(1))
        m.add_annotation("another virus disease outbreak infected", row_target(1))
        m.add_annotation("wing plumage anatomy beak", row_target(1))
        clf = m.summary_set_for("birds", 1).get_summary_object("ClassBird1")
        assert clf.get_label_value("Disease") == 2
        assert clf.get_label_value("Anatomy") == 1

    def test_long_annotation_gets_snippet(self):
        m = make_manager()
        long_text = (
            "The specimen was observed daily. " * 5
            + "It was eating stonewort near the lake."
        )
        assert len(long_text) > 80
        m.add_annotation(long_text, row_target(1))
        snip = m.summary_set_for("birds", 1).get_summary_object("TextSummary1")
        assert snip.get_size() == 1
        assert len(snip.get_snippet(0)) <= 60

    def test_short_annotation_gets_no_snippet(self):
        m = make_manager()
        m.add_annotation("short note", row_target(1))
        snip = m.summary_set_for("birds", 1).get_summary_object("TextSummary1")
        assert snip.get_size() == 0
        assert snip.all_annotation_ids()  # still tracked for keyword search

    def test_cluster_groups_similar_annotations(self):
        m = make_manager()
        m.add_annotation("eating stonewort in the lake", row_target(1))
        m.add_annotation("found eating stonewort near lake", row_target(1))
        m.add_annotation("skeletal wingspan measurement specimen anatomy", row_target(1))
        clus = m.summary_set_for("birds", 1).get_summary_object("SimCluster")
        assert clus.get_size() == 2
        assert clus.largest_group_size() == 2

    def test_cell_level_annotation_records_columns(self):
        m = make_manager()
        m.add_annotation("size seems wrong", row_target(1, ["weight"]))
        clf = m.summary_set_for("birds", 1).get_summary_object("ClassBird1")
        ann_id = next(iter(clf.all_annotation_ids()))
        assert clf.ann_targets[ann_id] == ("weight",)

    def test_multi_tuple_annotation_updates_both(self):
        m = make_manager()
        targets = [AnnotationTarget("birds", 1), AnnotationTarget("birds", 2)]
        m.add_annotation("disease infection observed flu", targets)
        for oid in (1, 2):
            clf = m.summary_set_for("birds", oid).get_summary_object("ClassBird1")
            assert clf.get_label_value("Disease") == 1

    def test_annotation_on_unlinked_table_only_stored_raw(self):
        m = make_manager()
        ann = m.add_annotation("note", [AnnotationTarget("other_table", 1)])
        assert m.annotations.get(ann.ann_id).text == "note"
        assert m.storage_for("other_table").get(1) is None


class TestDeleteAnnotation:
    def test_delete_reverses_classifier_count(self):
        m = make_manager()
        ann = m.add_annotation("avian flu disease infection", row_target(1))
        m.add_annotation("wing anatomy plumage", row_target(1))
        m.delete_annotation(ann.ann_id)
        clf = m.summary_set_for("birds", 1).get_summary_object("ClassBird1")
        assert clf.get_label_value("Disease") == 0
        assert clf.get_label_value("Anatomy") == 1

    def test_delete_removes_cluster_member(self):
        m = make_manager()
        a = m.add_annotation("eating stonewort lake", row_target(1))
        m.add_annotation("eating stonewort near the lake", row_target(1))
        m.delete_annotation(a.ann_id)
        clus = m.summary_set_for("birds", 1).get_summary_object("SimCluster")
        assert clus.largest_group_size() == 1
        assert a.ann_id not in clus.all_annotation_ids()

    def test_delete_tuple_drops_summary_row(self):
        m = make_manager()
        m.add_annotation("note about disease infection", row_target(5))
        m.on_tuple_delete("birds", 5)
        assert m.storage_for("birds").get(5) is None

    def test_delete_unannotated_tuple_is_noop(self):
        m = make_manager()
        m.on_tuple_delete("birds", 42)  # no error


class TestReadsAndZoom:
    def test_summary_set_for_unannotated_tuple_empty(self):
        m = make_manager()
        assert m.summary_set_for("birds", 9).get_size() == 0

    def test_raw_texts_for(self):
        m = make_manager()
        m.add_annotation("first note on the bird", row_target(1))
        m.add_annotation("second disease note here", row_target(1))
        texts = m.raw_texts_for("birds", 1)
        assert len(texts) == 2
        assert any("disease" in t for t in texts)

    def test_zoom_in_by_label(self):
        m = make_manager()
        m.add_annotation("avian flu disease infection symptoms", row_target(1))
        m.add_annotation("wing anatomy beak plumage", row_target(1))
        texts = m.zoom_in("birds", 1, "ClassBird1", "Disease")
        assert texts == ["avian flu disease infection symptoms"]

    def test_zoom_in_whole_instance(self):
        m = make_manager()
        m.add_annotation("one note here today", row_target(1))
        m.add_annotation("two notes appeared there", row_target(1))
        assert len(m.zoom_in("birds", 1, "ClassBird1")) == 2

    def test_zoom_in_cluster_group(self):
        m = make_manager()
        m.add_annotation("eating stonewort lake", row_target(1))
        m.add_annotation("eating stonewort in lake shallows", row_target(1))
        texts = m.zoom_in("birds", 1, "SimCluster", 0)
        assert len(texts) == 2

    def test_zoom_bad_selector(self):
        m = make_manager()
        m.add_annotation("a note", row_target(1))
        with pytest.raises(SummaryError):
            m.zoom_in("birds", 1, "ClassBird1", "NoLabel")

    def test_zoom_unannotated_returns_empty(self):
        m = make_manager()
        assert m.zoom_in("birds", 3, "ClassBird1") == []


class RecordingObserver:
    def __init__(self):
        self.events = []

    def on_summary_insert(self, oid, obj):
        self.events.append(("insert", oid, dict(obj.rep())))

    def on_summary_update(self, oid, old, new):
        self.events.append(("update", oid, old, new))

    def on_tuple_delete(self, oid, counts):
        self.events.append(("delete", oid, counts))


class TestObservers:
    def test_insert_then_update_events(self):
        m = make_manager()
        observer = RecordingObserver()
        m.add_observer("birds", "ClassBird1", observer)
        m.add_annotation("disease infection flu", row_target(1))
        m.add_annotation("wing anatomy beak", row_target(1))
        kinds = [e[0] for e in observer.events]
        assert kinds == ["insert", "update"]
        _, _, old, new = observer.events[1]
        assert old["Anatomy"] == 0 and new["Anatomy"] == 1

    def test_delete_annotation_fires_update(self):
        m = make_manager()
        observer = RecordingObserver()
        m.add_observer("birds", "ClassBird1", observer)
        ann = m.add_annotation("disease infection flu", row_target(1))
        m.delete_annotation(ann.ann_id)
        # The update to zero counts fires first; then, because that was
        # the tuple's last annotation, the now-hollow row is dropped with
        # a tuple-delete event.
        assert [e[0] for e in observer.events] == ["insert", "update", "delete"]
        assert observer.events[1][3]["Disease"] == 0

    def test_tuple_delete_fires_delete(self):
        m = make_manager()
        observer = RecordingObserver()
        m.add_observer("birds", "ClassBird1", observer)
        m.add_annotation("disease infection flu", row_target(1))
        m.on_tuple_delete("birds", 1)
        assert observer.events[-1][0] == "delete"

    def test_remove_observer(self):
        m = make_manager()
        observer = RecordingObserver()
        m.add_observer("birds", "ClassBird1", observer)
        m.remove_observer("birds", "ClassBird1", observer)
        m.add_annotation("disease flu", row_target(1))
        assert observer.events == []


class TestClustererStateRebuild:
    def test_state_rebuilt_after_eviction(self):
        m = make_manager()
        m.add_annotation("eating stonewort lake", row_target(1))
        m.add_annotation("eating stonewort lake again", row_target(1))
        # Simulate losing the in-memory CluStream state (engine restart).
        m._clusterers.clear()
        m.add_annotation("eating stonewort near lake", row_target(1))
        clus = m.summary_set_for("birds", 1).get_summary_object("SimCluster")
        assert clus.largest_group_size() == 3


class TestHollowRowDropped:
    """Deleting a tuple's last annotation must drop the storage row —
    never leave hollow (all-empty) summary objects for caches and indexes
    to keep serving."""

    def test_last_delete_drops_storage_row(self):
        m = make_manager()
        ann = m.add_annotation("disease infection flu", row_target(7))
        assert m.storage_for("birds").get(7) is not None
        m.delete_annotation(ann.ann_id)
        assert m.storage_for("birds").get(7) is None

    def test_last_delete_fires_objects_delete(self):
        m = make_manager()

        class StarObserver:
            def __init__(self):
                self.deleted = []
                self.written = []

            def on_objects_write(self, oid, objects):
                self.written.append(oid)

            def on_objects_delete(self, oid):
                self.deleted.append(oid)

        star = StarObserver()
        m.add_observer("birds", "*", star)
        ann = m.add_annotation("disease infection flu", row_target(7))
        m.delete_annotation(ann.ann_id)
        assert star.deleted == [7]
        # The hollow row was dropped, not written back.
        assert star.written == [7]  # only the insert wrote

    def test_partial_delete_keeps_row(self):
        m = make_manager()
        a = m.add_annotation("disease infection flu", row_target(7))
        m.add_annotation("wing anatomy beak", row_target(7))
        m.delete_annotation(a.ann_id)
        objects = m.storage_for("birds").get(7)
        assert objects is not None
        assert dict(objects["ClassBird1"].rep())["Anatomy"] == 1

    def test_clusterer_state_dropped_with_row(self):
        m = make_manager()
        ann = m.add_annotation("eating stonewort lake", row_target(7))
        assert ("birds", 7, "SimCluster") in m._clusterers
        m.delete_annotation(ann.ann_id)
        assert ("birds", 7, "SimCluster") not in m._clusterers


class TestUnlinkDetachesObservers:
    """ALTER TABLE … DROP must detach the dropped index and statistics
    observers — a detached-but-subscribed index is a zombie that keeps
    mutating, and re-ADD would register duplicates."""

    SEED = [
        ("observed infection disease flu", "Disease"),
        ("wing beak anatomy", "Anatomy"),
    ]

    def _database(self):
        from repro.catalog.schema import Column
        from repro.core.database import Database
        from repro.storage.record import ValueType

        db = Database(buffer_pages=256)
        db.create_table("birds", [Column("name", ValueType.TEXT)])
        db.create_classifier_instance("C", ["Disease", "Anatomy"], self.SEED)
        db.sql("Alter Table birds Add Indexable C")
        oid = db.insert("birds", {"name": "b1"})
        return db, oid

    def test_drop_stops_zombie_index_mutation(self):
        db, oid = self._database()
        db.add_annotation("disease flu infection", table="birds", oid=oid)
        index = db.summary_indexes[("birds", "C")]
        size_before = len(index)
        db.sql("Alter Table birds Drop C")
        # Re-link the instance without an index: annotation writes resume,
        # but the dropped index must no longer see them.
        db.manager.link("birds", "C")
        db.add_annotation("more disease flu", table="birds", oid=oid)
        assert len(index) == size_before

    def test_drop_detaches_whole_channel(self):
        db, _oid = self._database()
        assert len(db.manager._observers[("birds", "C")]) == 2  # stats + index
        db.sql("Alter Table birds Drop C")
        assert ("birds", "C") not in db.manager._observers

    def test_readd_registers_single_set_of_observers(self):
        db, oid = self._database()
        db.sql("Alter Table birds Drop C")
        db.sql("Alter Table birds Add Indexable C")
        # Exactly one statistics observer + one index observer — the bug
        # left the old pair subscribed, doubling every notification.
        assert len(db.manager._observers[("birds", "C")]) == 2
        index = db.summary_indexes[("birds", "C")]
        db.add_annotation("disease flu infection", table="birds", oid=oid)
        # One notification, one index entry for the tuple.
        assert len(list(index.lookup_range("Disease", lo=1))) == 1

    def test_remove_observer_idempotent(self):
        m = make_manager()
        observer = RecordingObserver()
        m.add_observer("birds", "ClassBird1", observer)
        m.remove_observer("birds", "ClassBird1", observer)
        # Second removal (and removal of a never-added observer) no-op.
        m.remove_observer("birds", "ClassBird1", observer)
        m.remove_observer("birds", "ClassBird1", RecordingObserver())
