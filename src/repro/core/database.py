"""The InsightNotes+ engine facade.

One :class:`Database` object owns the whole stack — simulated disk, buffer
pool, catalog, annotation store, summary manager, indexes, statistics, and
the summary-aware planner — and exposes the end-user surface:

* DDL / DML (programmatic and via :meth:`sql`),
* the extended ``ALTER TABLE … ADD [INDEXABLE] <instance>`` command (§4),
* annotation CRUD with incremental summary maintenance,
* summary-aware SELECTs mixing standard and summary-based operators,
* zoom-in from summaries back to raw annotations, and
* EXPLAIN plus the ablation knobs the benchmarks flip.
"""

from __future__ import annotations

import functools
import os
import pickle
import struct
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from repro.annotations.annotation import AnnotationTarget
from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, Schema
from repro.core.integrity import IntegrityChecker, IntegrityReport
from repro.errors import (
    CatalogError,
    CorruptImageError,
    CorruptPageError,
    IndexError_,
    IntegrityError,
    QueryError,
    ReadOnlyReplicaError,
    ReproError,
    SummaryError,
)
from repro.index.baseline import BaselineClassifierIndex
from repro.index.keyword import TrigramKeywordIndex
from repro.index.replica import NormalizedSnippetReplica
from repro.index.summary_btree import SummaryBTreeIndex
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PlanProfiler
from repro.optimizer.planner import Planner, PlannerOptions
from repro.optimizer.statistics import StatisticsCatalog
from repro.query.ast import (
    AlterTableSummary,
    CreateTableStmt,
    DeleteStmt,
    ExplainStmt,
    InsertStmt,
    SelectItem,
    SelectStmt,
    Star,
    TableRef,
    UpdateStmt,
    ZoomIn,
)
from repro.query.parser import parse_sql
from repro.query.result import ResultSet, ZoomResult
from repro.resilience import (
    AccessPathHealth,
    CircuitBreaker,
    DiskGuard,
    ExecutionContext,
    RetryPolicy,
)
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager, IOStats
from repro.storage.record import ValueType
from repro.summaries.maintenance import SummaryManager
from repro.txn.locks import StripedLockManager
from repro.txn.manager import TransactionManager
from repro.txn.session import Session
from repro.wal.device import MemoryWALDevice
from repro.wal.record import WALRecordType
from repro.wal.writer import WALWriter

_TYPE_KEYWORDS = {
    "int": ValueType.INT,
    "float": ValueType.FLOAT,
    "text": ValueType.TEXT,
    "bool": ValueType.BOOL,
}


def _env_fault_disk(metrics) -> "DiskManager | None":
    """A seeded transient-fault disk when ``REPRO_FAULT_INJECT=transient``.

    This is the whole-suite soak knob: with it set, every Database built
    without an explicit ``disk`` argument runs over a device that throws a
    :class:`~repro.errors.TransientIOError` on a seeded periodic schedule
    (``REPRO_FAULT_SEED``, ``REPRO_FAULT_PERIOD``) — and the retry layer
    must absorb every one of them transparently. The period is clamped to
    ≥2 so the retry that follows each injected fault (the next read index)
    can never land on the schedule again.
    """
    kind = os.environ.get("REPRO_FAULT_INJECT", "").strip().lower()
    if kind != "transient":
        return None
    from repro.faults.disk import FaultyDiskManager
    from repro.faults.plan import FaultPlan

    seed = int(os.environ.get("REPRO_FAULT_SEED", "0"))
    period = max(2, int(os.environ.get("REPRO_FAULT_PERIOD", "97")))
    plan = FaultPlan(seed=seed).transient_read(
        at=seed % period, period=period
    )
    return FaultyDiskManager(plan=plan, metrics=metrics)


def _env_retry_policy() -> RetryPolicy:
    attempts = int(os.environ.get("REPRO_RETRY_ATTEMPTS", "3"))
    base_delay = float(os.environ.get("REPRO_RETRY_BASE_DELAY", "0.001"))
    return RetryPolicy(
        max_attempts=max(1, attempts), base_delay=max(0.0, base_delay)
    )


def _env_timeout() -> float | None:
    raw = os.environ.get("REPRO_STATEMENT_TIMEOUT", "").strip()
    return float(raw) if raw else None


def _env_batch_exec() -> bool:
    """Default execution mode from ``REPRO_BATCH_EXEC`` (off unless set
    to a truthy value) — the whole-suite switch CI uses to run tier-1
    under the vectorized batch executor."""
    raw = os.environ.get("REPRO_BATCH_EXEC", "").strip().lower()
    return raw not in ("", "0", "false", "off", "no")


def _env_locks() -> bool:
    """Whether the per-thread default session takes table locks
    (``REPRO_LOCKS``; off unless truthy) — the whole-suite switch CI uses
    to run tier-1 with the lock manager on every statement's path.
    Explicit sessions (:meth:`Database.session`, the server) lock
    regardless."""
    raw = os.environ.get("REPRO_LOCKS", "").strip().lower()
    return raw not in ("", "0", "false", "off", "no")


def _env_summary_async() -> str:
    """Summary-maintenance mode from ``REPRO_SUMMARY_ASYNC``.

    ``"off"`` (default): classic synchronous incremental maintenance
    inside every annotation write.  Any truthy value enables *deferred
    writes*: the write path only appends the raw annotation and marks the
    affected tuples stale.  A generic truthy value (``1``, CI's
    whole-suite switch) selects ``"coherent"`` — stale tuples are
    regenerated at every statement boundary, so reads are observably
    identical to sync mode and the entire test suite doubles as an
    equivalence proof of the regeneration path.  The explicit value
    ``deferred`` selects the fully asynchronous mode: a background worker
    drains staleness and reads serve the last-generated objects with
    ``summary_status`` surfaced (what ``Database(summary_async=True)``
    means).
    """
    raw = os.environ.get("REPRO_SUMMARY_ASYNC", "").strip().lower()
    if raw in ("", "0", "false", "off", "no"):
        return "off"
    if raw == "deferred":
        return "deferred"
    return "coherent"


def _normalize_summary_async(value) -> str:
    """Map the ``summary_async`` constructor argument to a mode string."""
    if value is None:
        return _env_summary_async()
    if value is True:
        return "deferred"
    if value is False:
        return "off"
    mode = str(value).strip().lower()
    if mode not in ("off", "coherent", "deferred"):
        raise ValueError(
            f"summary_async must be off/coherent/deferred, got {value!r}"
        )
    return mode


def _logged_ddl(fn):
    """Wrap a DDL method so top-level calls append a DDL redo record.

    The record carries the method name plus its (picklable) arguments;
    recovery replays it by re-invoking the method on the restored
    database. Nested calls (e.g. ``link_summary_instance`` building its
    index through ``create_summary_index``) log nothing — the outermost
    statement's record re-creates the whole effect on replay.
    """

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        with self._wal_statement() as log:
            if log:
                self._wal_append(
                    WALRecordType.DDL,
                    {"method": fn.__name__, "args": list(args),
                     "kwargs": dict(kwargs)},
                )
            return fn(self, *args, **kwargs)

    return wrapper


@dataclass
class QueryReport:
    """EXPLAIN output: chosen logical plan + physical plan + cost.

    ``EXPLAIN ANALYZE`` additionally executes the query and fills in
    ``analyzed`` (the per-operator annotated plan tree), ``execution``
    (run totals: elapsed, page accesses, disk I/O, per-operator entries,
    metric deltas) and ``result`` (the :class:`ResultSet` itself).
    """

    logical: str
    physical: str
    estimated_cost: float
    analyzed: str | None = None
    execution: dict = field(default_factory=dict)
    result: "ResultSet | None" = None
    #: quarantined access paths the planner excluded, as
    #: ``(kind, table, instance)`` — non-empty means this is a degraded plan.
    degraded: list = field(default_factory=list)

    def __str__(self) -> str:
        text = (
            f"Estimated cost: {self.estimated_cost:.2f}\n"
            f"-- logical --\n{self.logical}\n"
            f"-- physical --\n{self.physical}"
        )
        if self.degraded:
            paths = ", ".join(
                f"{kind} {table}.{instance}"
                for kind, table, instance in self.degraded
            )
            text += f"\nDegraded: excluded unhealthy paths [{paths}]"
        if self.analyzed is not None:
            text += f"\n-- analyze --\n{self.analyzed}"
            ex = self.execution
            if ex:
                text += (
                    f"\nActual: {ex.get('rows', 0)} rows in "
                    f"{ex.get('elapsed_s', 0.0) * 1e3:.2f} ms; "
                    f"pages={ex.get('pages', 0)} "
                    f"reads={ex.get('io_reads', 0)} "
                    f"writes={ex.get('io_writes', 0)}"
                )
        return text


class Database:
    """A complete in-process InsightNotes+ engine."""

    def __init__(
        self,
        buffer_pages: int = 4096,
        options: PlannerOptions | None = None,
        disk: DiskManager | None = None,
        cache_bytes: int | None = None,
        batch_exec: bool | None = None,
        summary_async: bool | str | None = None,
    ):
        # Metrics first: the resilience layer and (under REPRO_FAULT_INJECT)
        # the fault-injecting disk both count through the registry.
        self.metrics = MetricsRegistry()
        if disk is None:
            disk = _env_fault_disk(self.metrics) or DiskManager()
        self.disk = disk
        self.pool = BufferPool(self.disk, capacity=buffer_pages)
        #: degraded-mode planning registry (quarantined access paths).
        self.health = AccessPathHealth(metrics=self.metrics)
        #: retry + circuit-breaker guard over every pool<->disk page I/O.
        self.guard = DiskGuard(
            policy=_env_retry_policy(),
            breaker=CircuitBreaker(metrics=self.metrics),
            metrics=self.metrics,
        )
        self.pool.guard = self.guard
        self.catalog = Catalog(self.pool)
        #: ``cache_bytes`` sizes the summary-set cache (None reads the
        #: REPRO_CACHE_BYTES env var; 0 disables it).
        self.manager = SummaryManager(
            self.pool, metrics=self.metrics, cache_bytes=cache_bytes
        )
        self.statistics = StatisticsCatalog(self.catalog, self.manager)
        self.summary_indexes: dict[tuple[str, str], SummaryBTreeIndex] = {}
        self.baseline_indexes: dict[tuple[str, str], BaselineClassifierIndex] = {}
        self.normalized_replicas: dict[tuple[str, str], NormalizedSnippetReplica] = {}
        self.keyword_indexes: dict[tuple[str, str], TrigramKeywordIndex] = {}
        self.options = options or PlannerOptions()
        #: write-ahead log writer; None until :meth:`attach_wal`.
        self.wal: WALWriter | None = None
        #: LSN stamped into the last checkpoint image (v3 header).
        self.checkpoint_lsn = 0
        #: log offset up to which records are folded into this state
        #: (recovery's idempotency watermark).
        self._applied_lsn = 0
        #: statement nesting depth — only depth-0 mutations emit records.
        self._wal_depth = 0
        #: True while recovery re-applies records (suppresses re-logging).
        self._wal_replaying = False
        #: monotonically increasing statement id carried by WAL records.
        self._stmt_counter = 0
        #: default statement deadline in seconds (None = no deadline);
        #: seeded from REPRO_STATEMENT_TIMEOUT, overridable per call and
        #: from the REPL's ``\timeout`` command.
        self.statement_timeout = _env_timeout()
        #: vectorized batch execution (column-batch Volcano); None reads
        #: the REPRO_BATCH_EXEC env var.
        self.batch_exec = _env_batch_exec() if batch_exec is None else batch_exec
        #: summary-maintenance mode: "off" (sync incremental), "coherent"
        #: (defer + regenerate at statement boundaries) or "deferred"
        #: (background worker + summary_status). None reads
        #: REPRO_SUMMARY_ASYNC; True means "deferred".
        self.summary_async = _normalize_summary_async(summary_async)
        self.manager.async_mode = self.summary_async
        #: replicas set this: every mutating statement raises
        #: ReadOnlyReplicaError unless it arrives via the replication
        #: stream's replay path.
        self.read_only = False
        self._init_concurrency()

    def _init_concurrency(self) -> None:
        """Build the process-local concurrency runtime: none of it is
        picklable and none of it belongs in an image, so ``__init__`` and
        ``__setstate__`` both build it fresh."""
        #: serializes every WAL-logged mutation (the WAL is one serial
        #: stream) — taken by ``_wal_statement``, txn commit, and save().
        self._commit_mutex = threading.RLock()
        #: per-thread slot for the running statement's ExecutionContext;
        #: concurrent sessions on worker threads each see their own.
        self._exec_local = threading.local()
        #: per-thread default Session backing :meth:`sql`.
        self._session_local = threading.local()
        self.lock_manager = StripedLockManager(metrics=self.metrics)
        self.txn_manager = TransactionManager(self)
        # Background maintenance plumbing: regenerations serialize against
        # writers on the commit mutex, deletions are checked against the
        # catalog, and deferred-mode writes wake the worker thread.
        self.manager.regen_lock = self._commit_mutex
        self.manager.tuple_exists = self._summary_tuple_exists
        self.manager.maint_wake = self._maint_wake
        self._maint_worker = None

    # -- background summary maintenance ----------------------------------------------

    def _summary_tuple_exists(self, table: str, oid: int) -> bool:
        """Regeneration guard: never resurrect a deleted data tuple's
        summary row.  Answers True when unverifiable (unknown table) —
        false negatives would drop live summaries, false positives only
        regenerate a row the next tuple delete removes."""
        try:
            if not self.catalog.has_table(table):
                return True
            tbl = self.catalog.table(table)
        except ReproError:
            return True
        try:
            tbl.read(oid)
            return True
        except ReproError:
            return False

    def _maint_wake(self) -> None:
        """Write-path hook: in deferred mode, make sure the worker thread
        exists and nudge it."""
        if self.summary_async != "deferred":
            return
        worker = self._maint_worker
        if worker is None or not worker.running:
            worker = self._ensure_maint_worker()
        worker.wake()

    def _ensure_maint_worker(self):
        from repro.summaries.background import MaintenanceWorker

        worker = self._maint_worker
        if worker is None:
            worker = MaintenanceWorker(self)
            self._maint_worker = worker
        if not worker.running:
            worker.start()
        return worker

    def stop_maintenance(self, drain: bool = True) -> None:
        """Stop the background worker (if any); with ``drain`` (default)
        finish all pending regeneration inline first-and-after, so the
        engine shuts down with zero staleness."""
        worker = self._maint_worker
        if worker is not None:
            worker.stop()
        if drain:
            self.manager.drain_pending()

    def drain_summaries(self) -> int:
        """Regenerate every stale summary now; returns how many tuples
        were refreshed.  The 'converge async to sync equality' primitive —
        after this, reads are exactly what synchronous maintenance would
        have produced."""
        return self.manager.drain_pending()

    # -- sessions --------------------------------------------------------------------

    def session(self, locking: bool = True) -> Session:
        """A new session: its own lock owner and transaction scope (the
        unit one server connection, worker thread, or test actor holds)."""
        return Session(self, locking=locking)

    def _default_session(self) -> Session:
        """The calling thread's implicit session, backing :meth:`sql`.
        Lock acquisition follows ``REPRO_LOCKS`` so the classic
        single-caller surface pays nothing unless CI flips it on."""
        session = getattr(self._session_local, "session", None)
        if session is None:
            session = Session(self, locking=_env_locks(), name="default")
            self._session_local.session = session
        return session

    @property
    def _exec_ctx(self) -> "ExecutionContext | None":
        """ExecutionContext of the statement running on *this thread*;
        what :meth:`cancel_running` cancels."""
        return getattr(self._exec_local, "ctx", None)

    @_exec_ctx.setter
    def _exec_ctx(self, ctx: "ExecutionContext | None") -> None:
        self._exec_local.ctx = ctx

    # -- write-ahead logging ---------------------------------------------------------

    def attach_wal(self, device=None, plan=None) -> WALWriter:
        """Enable write-ahead logging.

        ``device`` defaults to a fresh in-memory log based at the current
        checkpoint LSN; pass a :class:`~repro.faults.plan.FaultPlan` to
        schedule crash points inside the append/fsync path. The buffer
        pool starts enforcing log-before-data immediately.
        """
        if device is None:
            device = MemoryWALDevice(
                base_lsn=self.checkpoint_lsn, plan=plan, metrics=self.metrics
            )
        self.wal = WALWriter(device, metrics=self.metrics)
        self.pool.wal = self.wal
        return self.wal

    def detach_wal(self) -> None:
        """Stop logging; un-synced bytes stay pending on the device."""
        self.wal = None
        self.pool.wal = None

    @contextmanager
    def _wal_statement(self):
        """Scope of one top-level mutating statement.

        Yields True when this frame should emit a WAL record (logging is
        on, not replaying, and no outer statement is already logging). On
        successful completion the log is synced, so a statement is only
        ever acknowledged after its record is durable; on failure the sync
        is skipped — the un-synced record either vanishes with the crash
        or is replayed, fails the same way, and is skipped by recovery.

        Holds the commit mutex for the whole scope: the WAL is one serial
        stream, so concurrent writers (autocommit statements on worker
        threads, transaction commits) must append+apply+sync one at a
        time.  The mutex is reentrant — nested statement scopes and the
        commit protocol (which takes it explicitly) recurse safely.
        """
        with self._commit_mutex:
            if self.read_only and not self._wal_replaying:
                raise ReadOnlyReplicaError(
                    "replica is read-only: route writes to the primary, "
                    "or promote this replica first"
                )
            active = (
                self.wal is not None
                and not self._wal_replaying
                and self._wal_depth == 0
            )
            self._wal_depth += 1
            try:
                yield active
                if active:
                    self.wal.sync()
            finally:
                self._wal_depth -= 1

    def _wal_append(self, rtype: int, payload: dict, txn_id: int = 0) -> int:
        self._stmt_counter += 1
        return self.wal.append(
            rtype, payload, stmt_id=self._stmt_counter, txn_id=txn_id
        )

    @classmethod
    def recover(cls, path, device, verify: bool = False):
        """Crash recovery: load the checkpoint image at ``path`` (None for
        a database that never checkpointed) and replay ``device``'s durable
        WAL tail onto it.

        Torn tails are truncated from the device, never replayed. Returns
        ``(db, report)``; the recovered database has the device re-attached
        so it continues logging from the recovered position.
        ``verify=True`` additionally runs :meth:`check_integrity` and
        raises on any violation.
        """
        from repro.wal.recovery import replay

        db = cls.load(path) if path is not None else cls()
        report = replay(db, device)
        db.attach_wal(device)
        if verify:
            db.check_integrity(raise_on_error=True)
        return db, report

    def repair(self):
        """Self-heal: quarantine CRC-failing heap pages into a salvage
        report, rebuild every *derived* structure (summary B-Trees and
        backward pointers, keyword indexes, baseline/normalized replicas,
        secondary indexes, statistics) from the authoritative heaps, and
        prove convergence with a second integrity check.

        Returns a :class:`~repro.core.repair.RepairReport`.
        """
        from repro.core.repair import RepairManager

        # Repair rebuilds derived structures from the heaps; fold any
        # pending regeneration in first so the rebuilt structures reflect
        # every acknowledged annotation.
        self.manager.drain_pending()
        return RepairManager(self).run()

    # -- pickling --------------------------------------------------------------------

    def __getstate__(self) -> dict:
        # The WAL belongs to the running process, not the image: a loaded
        # database starts detached (recover()/attach_wal re-attach).
        state = self.__dict__.copy()
        state["wal"] = None
        state["_wal_depth"] = 0
        state["_wal_replaying"] = False
        # The concurrency runtime (locks, sessions, transactions, running
        # statements) belongs to the running process, not the image.
        for key in ("_commit_mutex", "_exec_local", "_session_local",
                    "lock_manager", "txn_manager", "_maint_worker"):
            state.pop(key, None)
        return state

    def __setstate__(self, state: dict) -> None:
        # Images written before the WAL era lack the new attributes.
        state.setdefault("wal", None)
        state.setdefault("checkpoint_lsn", 0)
        state.setdefault("_applied_lsn", 0)
        state.setdefault("_wal_depth", 0)
        state.setdefault("_wal_replaying", False)
        state.setdefault("_stmt_counter", 0)
        # … and images before the resilience era lack these.
        state.setdefault("statement_timeout", None)
        state.setdefault("batch_exec", _env_batch_exec())
        # Pre-async images default the maintenance mode from the loading
        # process's environment; newer images keep the mode they ran with.
        state.setdefault("summary_async", _env_summary_async())
        state.setdefault("read_only", False)
        # Pre-concurrency images pickled a _exec_ctx slot; the attribute
        # is a property over thread-local state now.
        state.pop("_exec_ctx", None)
        self.__dict__.update(state)
        self._init_concurrency()
        self.manager.async_mode = self.summary_async
        if "health" not in state:
            self.health = AccessPathHealth(metrics=self.metrics)
        if "guard" not in state:
            self.guard = DiskGuard(
                policy=_env_retry_policy(),
                breaker=CircuitBreaker(metrics=self.metrics),
                metrics=self.metrics,
            )
            self.pool.guard = self.guard

    # -- planner --------------------------------------------------------------------

    @property
    def planner(self) -> Planner:
        return Planner(
            self.catalog,
            self.manager,
            self.statistics,
            self.summary_indexes,
            self.baseline_indexes,
            self.options,
            self.normalized_replicas,
            self.keyword_indexes,
            health=self.health,
        )

    # -- DDL ------------------------------------------------------------------------

    @_logged_ddl
    def create_table(self, name: str, columns: list[Column] | Schema):
        """Create a user relation."""
        schema = columns if isinstance(columns, Schema) else Schema(list(columns))
        return self.catalog.create_table(name, schema)

    @_logged_ddl
    def create_index(self, table: str, column: str) -> None:
        """Standard B-Tree on a data column."""
        self.catalog.table(table).create_index(column)

    # -- summary instances -------------------------------------------------------------

    @_logged_ddl
    def create_classifier_instance(
        self, name: str, labels: list[str],
        seed_examples: list[tuple[str, str]] | None = None,
    ):
        return self.manager.create_classifier_instance(name, labels, seed_examples)

    @_logged_ddl
    def create_hierarchical_classifier_instance(
        self, name: str, tree_spec: dict,
        seed_examples: list[tuple[str, str]] | None = None,
    ):
        """Multi-level classifier (§8 future work): nested-dict hierarchy,
        leaves are classified classes, inner nodes roll up in queries —
        e.g. ``getLabelValue('Health')`` sums its subtree's leaf counts."""
        return self.manager.create_hierarchical_classifier_instance(
            name, tree_spec, seed_examples
        )

    @_logged_ddl
    def create_snippet_instance(self, name: str, min_chars: int = 1000,
                                max_chars: int = 400):
        return self.manager.create_snippet_instance(name, min_chars, max_chars)

    @_logged_ddl
    def create_cluster_instance(self, name: str, **kwargs):
        return self.manager.create_cluster_instance(name, **kwargs)

    @_logged_ddl
    def link_summary_instance(
        self, table: str, instance: str, indexable: bool = False
    ) -> None:
        """``ALTER TABLE <table> ADD [INDEXABLE] <instance>`` (§4)."""
        if not self.catalog.has_table(table):
            raise CatalogError(f"no table named {table!r}")
        self.manager.link(table, instance)
        self.manager.add_observer(
            table, instance, self.statistics.observer_for(table)
        )
        if indexable:
            self.create_summary_index(table, instance)

    @_logged_ddl
    def unlink_summary_instance(self, table: str, instance: str) -> None:
        """``ALTER TABLE <table> DROP <instance>``."""
        self.manager.unlink(table, instance)
        self.summary_indexes.pop((table.lower(), instance), None)
        self.baseline_indexes.pop((table.lower(), instance), None)
        # Detach everything link_summary_instance/create_summary_index
        # registered on this channel — the popped index and the statistics
        # observer must stop receiving events (a detached-but-subscribed
        # index keeps mutating as a zombie, and re-ADD would then register
        # a duplicate statistics observer).
        self.manager.clear_observers(table, instance)

    @_logged_ddl
    def create_summary_index(
        self, table: str, instance: str, backward_pointers: bool = True
    ) -> SummaryBTreeIndex:
        """Build a Summary-BTree over an already-linked classifier instance."""
        key = (table.lower(), instance)
        if key in self.summary_indexes:
            raise SummaryError(f"summary index on {key} already exists")
        index = SummaryBTreeIndex(
            self.catalog.table(table),
            self.manager.storage_for(table),
            instance,
            backward_pointers=backward_pointers,
        )
        index.bulk_build()
        self.manager.add_observer(table, instance, index)
        self.summary_indexes[key] = index
        return index

    @_logged_ddl
    def create_baseline_index(
        self, table: str, instance: str
    ) -> BaselineClassifierIndex:
        """Build the Figure 4(c) baseline index (normalized replica)."""
        key = (table.lower(), instance)
        if key in self.baseline_indexes:
            raise SummaryError(f"baseline index on {key} already exists")
        labels = getattr(self.manager.instance(instance), "labels", None)
        index = BaselineClassifierIndex(
            self.catalog.table(table), instance, self.pool,
            label_order=list(labels) if labels else None,
        )
        index.bulk_build(self.manager.storage_for(table))
        self.manager.add_observer(table, instance, index)
        self.baseline_indexes[key] = index
        return index

    @_logged_ddl
    def create_keyword_index(self, table: str, instance: str
                             ) -> TrigramKeywordIndex:
        """Build a trigram keyword index over a snippet instance's text.

        Serves ``containsSingle``/``containsUnion`` predicates in
        snippet-only search mode (``options.search_raw = False``) — the
        §3.1 snippets-vs-raw trade-off's fast side."""
        key = (table.lower(), instance)
        if key in self.keyword_indexes:
            raise SummaryError(f"keyword index on {key} already exists")
        index = TrigramKeywordIndex(table, instance, self.pool)
        index.bulk_build(self.manager.storage_for(table))
        self.manager.add_observer(table, "*", index)
        self.keyword_indexes[key] = index
        return index

    @_logged_ddl
    def create_normalized_replicas(self, table: str) -> list:
        """Normalize the non-classifier summary objects of ``table`` —
        the rest of the Baseline scheme's replica, needed so normalized
        propagation (Figure 12) can form *complete* summary sets from
        primitives."""
        from repro.summaries.instances import SnippetInstance

        built = []
        for instance in self.manager.instances_for(table):
            key = (table.lower(), instance.name)
            if key in self.normalized_replicas:
                continue
            if isinstance(instance, SnippetInstance):
                replica = NormalizedSnippetReplica(
                    table, instance.name, self.pool
                )
                replica.bulk_build(self.manager.storage_for(table))
                self.manager.add_observer(table, "*", replica)
                self.normalized_replicas[key] = replica
                built.append(replica)
        return built

    @_logged_ddl
    def drop_summary_index(self, table: str, instance: str) -> None:
        index = self.summary_indexes.pop((table.lower(), instance), None)
        if index is not None:
            self.manager.remove_observer(table, instance, index)

    def register_udf(self, name: str, fn) -> None:
        """Register a black-box summary-set UDF usable in queries (§3.2):
        ``db.register_udf("heavy", lambda s: s.get_size() > 2)`` then
        ``... Where heavy(r.$)``."""
        self.manager.register_udf(name, fn)

    # -- DML --------------------------------------------------------------------------------

    def insert(self, table: str, row: dict | list) -> int:
        tbl = self.catalog.table(table)
        with self._wal_statement() as log:
            if log:
                # Canonicalize before logging: the record carries the
                # positional values and the OID the insert will assign, so
                # replay reproduces the tuple under its original identity.
                values = tbl.canonical_row(row)
                self._wal_append(
                    WALRecordType.INSERT,
                    {"table": tbl.name, "oid": tbl.next_oid, "values": values},
                )
                return tbl.insert(values)
            return tbl.insert(row)

    def delete_tuple(self, table: str, oid: int) -> None:
        with self._wal_statement() as log:
            if log:
                self._wal_append(
                    WALRecordType.DELETE, {"table": table, "oid": oid}
                )
            self.manager.on_tuple_delete(table, oid)
            self.catalog.table(table).delete(oid)

    # -- annotations ---------------------------------------------------------------------------

    def add_annotation(
        self,
        text: str,
        targets: list[AnnotationTarget] | None = None,
        *,
        table: str | None = None,
        oid: int | None = None,
        columns: tuple[str, ...] = (),
    ):
        """Attach a raw annotation.

        Either pass explicit ``targets`` (cells/rows across tables) or the
        ``table=/oid=/columns=`` shorthand for a single attachment.
        """
        if targets is None:
            if table is None or oid is None:
                raise SummaryError("add_annotation needs targets or table+oid")
            targets = [AnnotationTarget(table, oid, tuple(columns))]
        with self._wal_statement() as log:
            if log:
                self._wal_append(
                    WALRecordType.ANN_ADD,
                    {"text": text, "targets": list(targets),
                     "ann_id": self.manager.annotations.next_id},
                )
            annotation = self.manager.add_annotation(text, targets)
            if self.summary_async == "coherent":
                self.manager.drain_pending()
            return annotation

    def add_annotations_bulk(
        self, items: list[tuple[str, list[AnnotationTarget]]]
    ) -> list:
        """Bulk-attach annotations through one framed WAL record.

        The durable path for dataset loads: unlike calling
        ``manager.add_annotations_bulk`` directly, a crash after this
        returns replays the whole batch (the record carries the first
        assigned annotation id, so replay reproduces identical ids).
        """
        with self._wal_statement() as log:
            if log:
                self._wal_append(
                    WALRecordType.ANN_BULK,
                    {"items": [(text, list(targets)) for text, targets in items],
                     "first_id": self.manager.annotations.next_id},
                )
            annotations = self.manager.add_annotations_bulk(items)
            if self.summary_async == "coherent":
                self.manager.drain_pending()
            return annotations

    def delete_annotation(self, ann_id: int) -> None:
        with self._wal_statement() as log:
            if log:
                self._wal_append(WALRecordType.ANN_DEL, {"ann_id": ann_id})
            self.manager.delete_annotation(ann_id)
            if self.summary_async == "coherent":
                self.manager.drain_pending()

    def zoom_in(self, table: str, oid: int, instance: str,
                selector: str | int | None = None) -> list[str]:
        """Zoom-in: raw annotation texts behind a summary object.

        In deferred mode the returned list is a :class:`ZoomResult` whose
        ``summary_status`` reports whether the tuple's summary objects are
        behind its raw annotations (the texts themselves always come from
        the last-generated objects — graceful degradation, not blocking).
        """
        texts = self.manager.zoom_in(table, oid, instance, selector)
        if self.summary_async == "deferred":
            return ZoomResult(
                texts, summary_status=self.manager.summary_status(table, oid)
            )
        return texts

    # -- integrity -----------------------------------------------------------------------------

    def check_integrity(self, raise_on_error: bool = False) -> IntegrityReport:
        """Audit every structure in the database (see ``repro.core.integrity``):
        on-disk page checksums, heap slot accounting, B-Tree invariants, and
        cross-structure consistency (OID indexes, secondary indexes,
        summary storage, Summary-BTree backward pointers, baseline replicas,
        annotation references).

        With ``raise_on_error`` a non-empty report raises
        :class:`~repro.errors.IntegrityError` instead of being returned.
        """
        # Staleness is a deliberate, bounded inconsistency; don't let the
        # auditor report it as corruption.
        self.manager.drain_pending()
        report = IntegrityChecker(self).run()
        # Feed degraded-mode planning: every derived access path a
        # violation names is quarantined until a converged repair
        # (RepairManager.run -> health.restore_all) rebuilds it.
        for kind, table, instance in report.unhealthy_paths():
            self.health.quarantine(
                kind, table, instance, reason="integrity violation"
            )
        if raise_on_error and not report.ok:
            raise IntegrityError(str(report))
        return report

    # -- persistence ---------------------------------------------------------------------------

    _IMAGE_MAGIC = b"INSIGHTNOTES-IMAGE"
    _IMAGE_VERSION = 3
    #: v2 header after the magic: version:u16 | payload_len:u64 | crc32:u32.
    _IMAGE_HEADER_V2 = struct.Struct(">HQI")
    #: v3 appends the checkpoint LSN: … | checkpoint_lsn:u64.
    _IMAGE_HEADER = struct.Struct(">HQIQ")

    def save(self, path: str | Path) -> None:
        """Checkpoint the whole database — pages, catalog, summary
        instances, indexes, statistics — as a single-file image.

        The image carries the payload length and a CRC32 so a truncated or
        corrupted file is detected at :meth:`load` time, and it is written
        to a temporary sibling then atomically renamed into place: a crash
        mid-save leaves the previous image intact, never a torn one — and
        a failed write unlinks the temp sibling instead of leaking it.

        With a WAL attached this is the checkpoint protocol: flush data
        pages (WAL first — log-before-data), sync the log, stamp the
        checkpoint LSN into the v3 header, and truncate the log only once
        the rename has landed. A crash between rename and truncation is
        safe: replay skips records below the checkpoint LSN.

        Registered UDFs are *not* persisted (arbitrary callables don't
        serialize portably); re-register them after :meth:`load`.
        """
        # Checkpoints are atomic with respect to writers: the commit mutex
        # keeps any concurrent statement's apply+log out of the image and
        # out of the truncated log region.
        with self._commit_mutex:
            self._save_locked(path)

    def _save_locked(self, path: str | Path) -> None:
        # Checkpoint images are always fully maintained: fold pending
        # regeneration in before flushing pages, so a load never starts
        # from stale summary rows (the WAL tail re-marks anything the
        # image predates).
        self.manager.drain_pending()
        self.pool.flush_all()
        if self.wal is not None:
            self.wal.sync()
            self.checkpoint_lsn = self.wal.next_lsn
            self._applied_lsn = max(self._applied_lsn, self.checkpoint_lsn)
        udfs = self.manager.udfs
        self.manager.udfs = {}
        try:
            payload = pickle.dumps(self)
        finally:
            self.manager.udfs = udfs
        header = self._IMAGE_MAGIC + self._IMAGE_HEADER.pack(
            self._IMAGE_VERSION, len(payload),
            zlib.crc32(payload) & 0xFFFFFFFF, self.checkpoint_lsn,
        )
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        try:
            tmp.write_bytes(header + payload)
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        if self.wal is not None:
            self.wal.truncate(self.checkpoint_lsn)

    def snapshot_bytes(self) -> bytes:
        """Serialize the current state as image bytes — the replication
        bootstrap primitive.

        Same format (and drain/flush/sync discipline) as :meth:`save`,
        with two deliberate differences: nothing touches the filesystem,
        and the WAL is **not** truncated — the snapshot LSN is stamped
        into the header but the primary keeps its log, so an attached
        replica's stream position stays valid across a bootstrap.
        """
        with self._commit_mutex:
            self.manager.drain_pending()
            self.pool.flush_all()
            if self.wal is not None:
                self.wal.sync()
                snapshot_lsn = self.wal.next_lsn
            else:
                snapshot_lsn = max(self.checkpoint_lsn, self._applied_lsn)
            udfs = self.manager.udfs
            self.manager.udfs = {}
            try:
                payload = pickle.dumps(self)
            finally:
                self.manager.udfs = udfs
            header = self._IMAGE_MAGIC + self._IMAGE_HEADER.pack(
                self._IMAGE_VERSION, len(payload),
                zlib.crc32(payload) & 0xFFFFFFFF, snapshot_lsn,
            )
            return header + payload

    @classmethod
    def load(cls, path: str | Path, verify: bool = False) -> "Database":
        """Restore a database image written by :meth:`save`.

        Any damage — wrong magic, unsupported version, truncation, payload
        CRC mismatch, undecodable payload — raises a typed
        :class:`~repro.errors.CorruptImageError`; a load never returns
        silently-wrong data. ``verify=True`` additionally runs
        :meth:`check_integrity` on the restored database and raises
        :class:`~repro.errors.IntegrityError` on any violation.
        """
        return cls.load_bytes(
            Path(path).read_bytes(), source=str(path), verify=verify
        )

    @classmethod
    def load_bytes(cls, data: bytes, source: str = "<bytes>",
                   verify: bool = False) -> "Database":
        """Restore a database from in-memory image bytes (:meth:`load`'s
        engine; also deserializes :meth:`snapshot_bytes` payloads on the
        replica side). ``source`` names the origin in error messages."""
        if not data.startswith(cls._IMAGE_MAGIC):
            raise CorruptImageError(f"{source} is not an InsightNotes image")
        offset = len(cls._IMAGE_MAGIC)
        if len(data) < offset + 2:
            raise CorruptImageError(
                f"{source}: image header truncated "
                f"({len(data) - offset} of {cls._IMAGE_HEADER.size} bytes)"
            )
        (version,) = struct.unpack_from(">H", data, offset)
        if version == 2:
            header_struct = cls._IMAGE_HEADER_V2  # pre-WAL images
        elif version == cls._IMAGE_VERSION:
            header_struct = cls._IMAGE_HEADER
        else:
            raise CorruptImageError(
                f"image version {version} unsupported "
                f"(engine writes v{cls._IMAGE_VERSION})"
            )
        if len(data) < offset + header_struct.size:
            raise CorruptImageError(
                f"{source}: image header truncated "
                f"({len(data) - offset} of {header_struct.size} bytes)"
            )
        fields = header_struct.unpack_from(data, offset)
        payload_len, crc = fields[1], fields[2]
        checkpoint_lsn = fields[3] if version >= 3 else 0
        payload = data[offset + header_struct.size:]
        if len(payload) != payload_len:
            raise CorruptImageError(
                f"{source}: payload truncated "
                f"({len(payload)} of {payload_len} bytes)"
            )
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise CorruptImageError(f"{source}: payload CRC32 mismatch")
        try:
            db = pickle.loads(payload)
        except Exception as exc:
            raise CorruptImageError(
                f"{source}: payload does not unpickle: {exc}"
            ) from exc
        if not isinstance(db, cls):
            raise CorruptImageError(f"{source} does not contain a Database")
        # The header's checkpoint LSN is authoritative (v2 images carry 0).
        db.checkpoint_lsn = checkpoint_lsn
        db._applied_lsn = max(db._applied_lsn, checkpoint_lsn)
        cache = getattr(db.manager, "cache", None)
        if cache is not None:
            # Images deserialize cold by construction; the bump makes the
            # fresh-epoch guarantee hold even if that ever changes.
            cache.bump_all("load")
        if verify:
            db.check_integrity(raise_on_error=True)
        return db

    # -- statistics -------------------------------------------------------------------------------

    def analyze(self, table: str) -> None:
        """Collect optimizer statistics (Figure 6) for one table."""
        self.statistics.analyze(table)

    def io_snapshot(self) -> IOStats:
        return self.disk.stats.snapshot()

    def io_since(self, before: IOStats) -> IOStats:
        return self.disk.stats.delta(before)

    # -- observability ----------------------------------------------------------------------------

    def metrics_snapshot(self) -> dict[str, float]:
        """One flat dict of every engine counter: the metrics registry
        (maintenance events, timers), buffer-pool hits/misses, disk I/O,
        and per-index probe counts.

        Diff two snapshots with :meth:`MetricsRegistry.delta` to attribute
        counters to a region of work.
        """
        snap = self.metrics.snapshot()
        snap["pool.hits"] = self.pool.hits
        snap["pool.misses"] = self.pool.misses
        snap["pool.pages"] = self.pool.hits + self.pool.misses
        snap["disk.reads"] = self.disk.stats.reads
        snap["disk.writes"] = self.disk.stats.writes
        snap["disk.allocations"] = self.disk.stats.allocations
        for (table, instance), index in self.summary_indexes.items():
            snap[f"index.summary.{table}.{instance}.probes"] = getattr(
                index, "probes", 0
            )
            snap[f"index.summary.{table}.{instance}.rebuilds"] = index.rebuilds
        for (table, instance), index in self.baseline_indexes.items():
            snap[f"index.baseline.{table}.{instance}.probes"] = getattr(
                index, "probes", 0
            )
        for (table, instance), index in self.keyword_indexes.items():
            snap[f"index.keyword.{table}.{instance}.probes"] = getattr(
                index, "probes", 0
            )
        cache = getattr(self.manager, "cache", None)
        if cache is not None:
            # Event counters (cache.hits/misses/…) already live in the
            # shared registry; add the occupancy gauges.
            snap["cache.capacity_bytes"] = cache.capacity_bytes
            snap["cache.used_bytes"] = cache.used_bytes
            snap["cache.entries"] = len(cache)
        if getattr(self, "summary_async", "off") != "off":
            # Live staleness gauges (the set_gauge values only move on
            # mark/drain; these report the instantaneous truth).
            snap["maint.backlog"] = self.manager.pending_count()
            snap["maint.lag_seconds"] = self.manager.pending_lag_seconds()
        guard = getattr(self, "guard", None)
        if guard is not None and guard.breaker is not None:
            # Gauge (0=closed, 1=half-open, 2=open), not a counter.
            snap["resilience.breaker_state"] = guard.breaker.state_code
        health = getattr(self, "health", None)
        if health is not None:
            snap["resilience.unhealthy_paths"] = len(health)
        txn_manager = getattr(self, "txn_manager", None)
        if txn_manager is not None:
            # Gauges; the txn.*/lock.* event counters live in the registry.
            snap["txn.open"] = len(txn_manager.active)
        lock_manager = getattr(self, "lock_manager", None)
        if lock_manager is not None:
            snap["lock.tables"] = len(lock_manager)
        return snap

    def reset_metrics(self) -> None:
        """Zero every counter :meth:`metrics_snapshot` reports: the
        registry, the buffer-pool hit/miss counters, the disk
        :class:`IOStats`, and the per-index probe counts.  Snapshots taken
        before a reset are stale — re-snapshot after."""
        self.metrics.reset()
        self.pool.hits = 0
        self.pool.misses = 0
        self.disk.stats.reset()
        for index in (
            list(self.summary_indexes.values())
            + list(self.baseline_indexes.values())
            + list(self.keyword_indexes.values())
        ):
            if hasattr(index, "probes"):
                index.probes = 0

    # -- queries ------------------------------------------------------------------------------------

    def execute(self, query: str, timeout: float | None = None,
                interruptible: bool = False):
        """Execute one SQL statement under a resilience
        :class:`~repro.resilience.context.ExecutionContext`.

        Same surface as :meth:`sql`, plus a deadline and cooperative
        cancellation: ``timeout`` (seconds; defaults to
        ``self.statement_timeout``) raises
        :class:`~repro.errors.QueryTimeoutError` at the next operator
        batch boundary once the deadline passes, and
        :meth:`cancel_running` (or, with ``interruptible=True``, a SIGINT)
        raises :class:`~repro.errors.QueryCancelledError` — the statement
        dies, the session survives. Both errors carry the partial progress
        made (``exc.partial``).
        """
        import signal

        effective = timeout if timeout is not None else self.statement_timeout
        ctx = ExecutionContext(timeout=effective, metrics=self.metrics)
        self._exec_ctx = ctx
        previous_handler = None
        installed = False
        if interruptible:
            try:
                previous_handler = signal.signal(
                    signal.SIGINT, lambda signum, frame: ctx.cancel()
                )
                installed = True
            except ValueError:
                pass  # not the main thread: Ctrl-C handling unavailable
        try:
            return self.sql(query)
        finally:
            if installed:
                signal.signal(signal.SIGINT, previous_handler)
            self._exec_ctx = None

    def cancel_running(self) -> bool:
        """Request cancellation of the statement currently inside
        :meth:`execute`; returns False when nothing is running. The
        statement observes the flag at its next batch boundary."""
        ctx = self._exec_ctx
        if ctx is None:
            return False
        ctx.cancel()
        return True

    def _attach_runtime(self, physical) -> None:
        """Thread the active statement's ExecutionContext (deadline +
        cancel flag) through a lowered plan's operators."""
        if self._exec_ctx is not None:
            self._exec_ctx.attach(physical)

    def sql(self, query: str):
        """Execute one SQL statement.

        SELECT returns a :class:`ResultSet`; ZOOM IN returns raw texts; DDL
        and INSERT return None; DELETE/UPDATE return the affected-row
        count; ANNOTATE returns the new annotation id.

        Statements route through the calling thread's default
        :class:`~repro.txn.session.Session`, which is what makes
        ``BEGIN``/``COMMIT``/``ABORT`` work from here and the REPL, and
        (under ``REPRO_LOCKS``) takes table locks around every statement.
        """
        return self._default_session().execute_stmt(parse_sql(query))

    def _dispatch_stmt(self, stmt):
        """Session-free statement dispatch: the engine's raw execution
        surface, called by sessions after lock/transaction handling."""
        if self.summary_async == "coherent":
            # The coherence point: every statement starts from fully
            # maintained summaries, so deferral is unobservable here.
            self.manager.drain_pending()
        if isinstance(stmt, SelectStmt):
            return self._execute_select(stmt)
        if isinstance(stmt, ExplainStmt):
            return self._execute_explain(stmt)
        if isinstance(stmt, AlterTableSummary):
            if stmt.action == "add":
                self.link_summary_instance(stmt.table, stmt.instance,
                                           stmt.indexable)
            else:
                self.unlink_summary_instance(stmt.table, stmt.instance)
            return None
        if isinstance(stmt, ZoomIn):
            return self.zoom_in(stmt.table, stmt.oid, stmt.instance, stmt.selector)
        if isinstance(stmt, CreateTableStmt):
            self.create_table(
                stmt.name,
                [Column(c, _TYPE_KEYWORDS[t]) for c, t in stmt.columns],
            )
            return None
        if isinstance(stmt, InsertStmt):
            # Route through self.insert so each row emits a WAL record.
            for row in stmt.rows:
                if stmt.columns is not None:
                    self.insert(stmt.table, dict(zip(stmt.columns, row)))
                else:
                    self.insert(stmt.table, row)
            return None
        if isinstance(stmt, DeleteStmt):
            return self._execute_delete(stmt)
        if isinstance(stmt, UpdateStmt):
            return self._execute_update(stmt)
        raise QueryError(f"unsupported statement {stmt!r}")

    def _matching_oids(self, table: str, alias: str | None,
                       where) -> list[int]:
        """OIDs satisfying a DML statement's WHERE — planned like a
        SELECT, so data AND summary predicates (first-class summaries
        extend to DML) both work and may use indexes."""
        alias = alias or table
        select = SelectStmt(
            items=[Star(None)],
            tables=[TableRef(table, alias)],
            where=where,
        )
        physical, _logical, _cost = self.planner.plan(select)
        self._attach_runtime(physical)
        return [
            t.provenance[alias][1] for t in self._plan_rows(physical)
        ]

    def _execute_delete(self, stmt: DeleteStmt) -> int:
        """Returns the number of deleted tuples."""
        oids = self._matching_oids(stmt.table, stmt.alias, stmt.where)
        for oid in oids:
            self.delete_tuple(stmt.table, oid)
        return len(oids)

    def _update_plan(self, stmt: UpdateStmt) -> list[tuple[int, dict]]:
        """Evaluate an UPDATE's WHERE and assignment expressions against
        current state: ``(oid, assigned-values)`` per matching row.
        Shared by immediate execution and transactional buffering (which
        logs post-evaluation values, never expressions)."""
        from repro.query.eval import EvalContext, evaluate

        alias = stmt.alias or stmt.table
        select = SelectStmt(
            items=[Star(None)],
            tables=[TableRef(stmt.table, alias)],
            where=stmt.where,
        )
        physical, _logical, _cost = self.planner.plan(select)
        self._attach_runtime(physical)
        ctx = EvalContext(manager=self.manager, udfs=self.manager.udfs)
        updates: list[tuple[int, dict]] = []
        for row in self._plan_rows(physical):
            oid = row.provenance[alias][1]
            assigned = {
                column: evaluate(expr, row, ctx)
                for column, expr in stmt.assignments
            }
            updates.append((oid, assigned))
        return updates

    def _execute_update(self, stmt: UpdateStmt) -> int:
        """Returns the number of updated tuples.  Assignment expressions
        evaluate per row (columns and summary expressions allowed)."""
        updates = self._update_plan(stmt)
        table = self.catalog.table(stmt.table)
        for oid, assigned in updates:
            with self._wal_statement() as log:
                if log:
                    # Post-evaluation values: replay must not re-evaluate
                    # the assignment expressions against replayed state.
                    self._wal_append(
                        WALRecordType.UPDATE,
                        {"table": stmt.table, "oid": oid, "values": assigned},
                    )
                table.update(oid, assigned)
        if updates:
            self.statistics.mark_stale(stmt.table)
        return len(updates)

    def explain(self, query: str, analyze: bool = False) -> QueryReport:
        """EXPLAIN a SELECT: plan it and report logical + physical plans.

        ``analyze=True`` (or an ``EXPLAIN ANALYZE …`` query string) also
        executes the plan under a :class:`PlanProfiler` and annotates every
        operator with its actual rows, ``next()`` calls, wall time, page
        accesses, and disk I/O.
        """
        stmt = parse_sql(query)
        if isinstance(stmt, ExplainStmt):
            stmt = ExplainStmt(stmt.query, analyze=stmt.analyze or analyze)
        elif isinstance(stmt, SelectStmt):
            stmt = ExplainStmt(stmt, analyze=analyze)
        else:
            raise QueryError("EXPLAIN supports SELECT statements only")
        return self._execute_explain(stmt)

    def _execute_explain(self, stmt: ExplainStmt) -> QueryReport:
        planner = self.planner
        physical, logical, cost = planner.plan(stmt)
        degraded = sorted(planner.excluded)
        report = QueryReport(logical.pretty(), physical.explain(), cost,
                             degraded=degraded)
        if not stmt.analyze:
            return report
        result = self._run_physical(stmt.query, physical, cost, profile=True,
                                    degraded=degraded)
        report.analyzed = result.stats["plan_analyzed"]
        report.execution = {
            key: value
            for key, value in result.stats.items()
            if key not in ("plan", "plan_analyzed", "estimated_cost")
        }
        report.execution["rows"] = len(result)
        report.result = result
        return report

    def _execute_select(self, stmt: SelectStmt,
                        _retrying: bool = False) -> ResultSet:
        planner = self.planner
        physical, logical, cost = planner.plan(stmt)
        try:
            return self._run_physical(
                stmt, physical, cost, degraded=sorted(planner.excluded)
            )
        except (CorruptPageError, IndexError_) as exc:
            # Mid-query corruption inside a derived access path: quarantine
            # every index path the dying plan used and retry the statement
            # once — the re-plan falls back to heap scans, which read only
            # the authoritative data (the repair contract). A plan with no
            # index paths, or a second failure, propagates: the corruption
            # is not in a structure planning can route around.
            quarantined = self._quarantine_plan_paths(physical, str(exc))
            if _retrying or not quarantined:
                raise
            self.metrics.inc("resilience.statement_retries")
            return self._execute_select(stmt, _retrying=True)

    def _quarantine_plan_paths(self, physical, reason: str) -> list[tuple]:
        """Quarantine every derived access path a physical plan touches;
        returns the freshly quarantined ``(kind, table, instance)`` keys."""
        from repro.query.physical import (
            BaselineIndexScan,
            KeywordIndexScan,
            SummaryIndexNestedLoopJoin,
            SummaryIndexScan,
        )

        quarantined: list[tuple] = []
        stack = [physical]
        while stack:
            op = stack.pop()
            stack.extend(op.children)
            if isinstance(op, SummaryIndexScan):
                key = ("summary", op.table, op.instance)
            elif isinstance(op, BaselineIndexScan):
                key = ("baseline", op.table, op.instance)
            elif isinstance(op, KeywordIndexScan):
                key = ("keyword", op.table, op.instance)
            elif isinstance(op, SummaryIndexNestedLoopJoin):
                key = ("summary", op.inner_table, op.instance)
            else:
                continue
            if self.health.quarantine(*key, reason=reason):
                quarantined.append(key)
        return quarantined

    def _plan_rows(self, physical) -> list:
        """Drain a lowered plan under the configured execution mode.

        In batch mode the root operator materializes each batch's row
        views *inside* its own instrumented iterator (see
        ``materialize_output``), so lazily-built summary sets charge
        their page reads to the plan — keeping EXPLAIN ANALYZE's
        per-operator attribution exact — and stay covered by deadline
        checkpoints.
        """
        if not self.batch_exec:
            return list(physical.rows())
        physical.materialize_output = True
        return [
            row for batch in physical.batches() for row in batch.to_rows()
        ]

    def _run_physical(
        self,
        stmt: SelectStmt,
        physical,
        cost: float,
        profile: bool = False,
        degraded: list | tuple = (),
    ) -> ResultSet:
        """Execute a lowered plan, capturing run totals (and, when
        ``profile`` is set, the per-operator EXPLAIN ANALYZE counters)."""
        self._attach_runtime(physical)
        if degraded:
            self.metrics.inc("resilience.degraded_plans")
        profiler = None
        metrics_before: dict[str, float] | None = None
        if profile:
            profiler = PlanProfiler(
                self.pool, self.disk, cache=getattr(self.manager, "cache", None)
            ).attach(physical)
            metrics_before = self.metrics_snapshot()
        io_before = self.disk.stats.snapshot()
        pages_before = self.pool.hits + self.pool.misses
        started = time.perf_counter()
        tuples = self._plan_rows(physical)
        elapsed = time.perf_counter() - started
        io = self.disk.stats.delta(io_before)
        columns = (
            tuples[0].columns if tuples else self._expected_columns(stmt)
        )
        stats = {
            "elapsed_s": elapsed,
            "io_reads": io.reads,
            "io_writes": io.writes,
            "pages": self.pool.hits + self.pool.misses - pages_before,
            "estimated_cost": cost,
            "plan": physical.explain(),
            "degraded_paths": list(degraded),
        }
        if profiler is not None:
            stats["plan_analyzed"] = profiler.render()
            stats["operators"] = profiler.summarize()
            stats["metrics"] = MetricsRegistry.delta(
                self.metrics_snapshot(), metrics_before or {}
            )
        summary_status = None
        if self.summary_async == "deferred" and self.manager.has_pending():
            # Per-row freshness: a row is stale when any tuple it was
            # built from has queued maintenance work (its summary objects
            # answer from the last generation).
            pending = self.manager.pending
            summary_status = [
                "stale" if any(
                    key in pending for key in t.provenance.values()
                ) else "fresh"
                for t in tuples
            ]
        return ResultSet(
            columns, tuples, stats=stats, summary_status=summary_status
        )

    @staticmethod
    def _expected_columns(stmt: SelectStmt) -> list[str]:
        out = []
        for item in stmt.items:
            if isinstance(item, Star):
                out.append(f"{item.alias}.*" if item.alias else "*")
            elif isinstance(item, SelectItem):
                out.append(item.alias or str(item.expr))
        return out
