"""Overload-safe serving: admission control, clamping, graceful drain.

Covers the PR-8 robustness contract end to end (DESIGN.md §5h):

* admission control — the connection cap and the bounded statement
  queue shed with *typed* overload errors, within the queue deadline,
  and a shed statement is guaranteed to never have executed;
* the oversized-*result* regression — a result that cannot fit the
  frame cap answers a typed ``ServerError`` and keeps the connection
  (only peers that cannot frame get hung up on);
* server-side statement-deadline clamping and idle-connection reaping;
* the ``{"op": "health"}`` frame (answered inline, never queued);
* metrics reconciliation under churn — every well-formed statement is
  accounted exactly once: succeeded, erred, or shed;
* graceful drain — ``stop()`` lets in-flight statements finish, then
  cooperatively cancels stragglers; no lock and no open transaction
  survives shutdown (the PR-7 ``shutdown(wait=False)`` regression);
* the ``python -m repro serve`` SIGTERM path drains and exits 0.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.catalog.schema import Column
from repro.core.database import Database
from repro.errors import ProtocolError, ServerError
from repro.server import QueryClient, QueryServer
from repro.storage.record import ValueType
from tests.test_server import ServerHarness, wait_for


def held_locks(db) -> dict:
    """Owners that actually hold lock modes right now (the registry's
    lock *entries* are intentionally never deleted, so ``len(lock
    manager)`` is not a leak signal — held modes are)."""
    manager = db.lock_manager
    with manager._held_lock:
        return {owner: set(resources)
                for owner, resources in manager._held.items() if resources}


@pytest.fixture()
def db():
    database = Database(buffer_pages=32)
    database.create_table("t", [Column("name", ValueType.TEXT),
                                Column("v", ValueType.INT)])
    database.create_table("u", [Column("name", ValueType.TEXT),
                                Column("v", ValueType.INT)])
    for i in range(10):
        database.insert("t", [f"r{i}", i])
        database.insert("u", [f"u{i}", i])
    return database


def make_harness(db, **kwargs) -> ServerHarness:
    return ServerHarness(db, **kwargs)


class _LockHolder:
    """Pins table ``t`` exclusively so admitted statements park in a
    lock wait — a deterministic way to keep workers busy."""

    def __init__(self, db, table: str = "t"):
        self.db = db
        self.table = table
        db.lock_manager.acquire_exclusive("holder", table)
        self.released = False

    def release(self):
        if not self.released:
            self.db.lock_manager.release_all("holder")
            self.released = True


class TestConnectionCap:
    def test_excess_connection_sheds_with_typed_frame(self, db):
        h = make_harness(db, max_connections=2, workers=2)
        try:
            a = QueryClient(port=h.port)
            b = QueryClient(port=h.port)
            a.execute("Select * From t")
            b.execute("Select * From t")
            # Third connection: rejected before any session exists.
            with QueryClient(port=h.port) as c:
                with pytest.raises(ServerError) as exc_info:
                    c.execute("Select * From t")
            assert exc_info.value.error_type == "ServerOverloadedError"
            snap = db.metrics.snapshot()
            assert snap["server.shed"] == 1
            assert snap["server.shed.connections"] == 1
            # No session was created for the shed connection.
            assert snap["server.connections"] == 2
            # Releasing an admitted slot re-opens admission.
            a.close()
            assert wait_for(lambda: db.metrics.get_gauge(
                "server.active_connections") == 1)
            with QueryClient(port=h.port) as d:
                assert d.execute("Select * From t")["row_count"] == 10
            b.close()
        finally:
            h.stop()

    def test_shed_connection_acquired_nothing(self, db):
        h = make_harness(db, max_connections=1, workers=1)
        try:
            keeper = QueryClient(port=h.port)
            keeper.execute("Select * From t")
            with QueryClient(port=h.port) as shed:
                with pytest.raises(ServerError):
                    shed.execute("Insert Into t Values ('shed', 1)")
            assert db.metrics.get("txn.begins") >= 0  # server survived
            keeper.close()
            assert wait_for(lambda: not held_locks(db))
        finally:
            h.stop()


class TestStatementQueue:
    def test_queue_full_sheds_immediately(self, db):
        h = make_harness(db, workers=1, max_connections=16,
                         queue_limit=1, queue_timeout=5.0)
        holder = _LockHolder(db)
        try:
            busy = QueryClient(port=h.port)
            results: dict = {}

            def run_busy():
                try:
                    results["busy"] = busy.execute(
                        "Insert Into t Values ('busy', 1)", timeout=30)
                except Exception as exc:  # pragma: no cover
                    results["busy"] = exc

            t_busy = threading.Thread(target=run_busy, daemon=True)
            t_busy.start()
            # Wait until the worker is genuinely occupied.
            assert wait_for(lambda: db.metrics.get("server.requests") >= 1)
            time.sleep(0.1)

            queued = QueryClient(port=h.port)

            def run_queued():
                try:
                    results["queued"] = queued.execute(
                        "Select * From u", timeout=30)
                except Exception as exc:  # pragma: no cover
                    results["queued"] = exc

            t_queued = threading.Thread(target=run_queued, daemon=True)
            t_queued.start()
            assert wait_for(lambda: db.metrics.get_gauge(
                "server.queue_depth") == 1)

            # Queue is at its limit: the next statement sheds *now*.
            started = time.monotonic()
            with QueryClient(port=h.port) as extra:
                with pytest.raises(ServerError) as exc_info:
                    extra.execute("Select * From u")
            assert time.monotonic() - started < 2.0
            assert exc_info.value.error_type == "ServerOverloadedError"
            assert db.metrics.get("server.shed.queue_full") == 1

            holder.release()
            t_busy.join(30)
            t_queued.join(30)
            assert results["busy"] is None  # INSERT returns None
            assert results["queued"]["row_count"] == 10
            busy.close()
            queued.close()
        finally:
            holder.release()
            h.stop()

    def test_queue_deadline_sheds_within_deadline(self, db):
        h = make_harness(db, workers=1, max_connections=16,
                         queue_limit=8, queue_timeout=0.2)
        holder = _LockHolder(db)
        try:
            busy = QueryClient(port=h.port)
            done: list = []

            def run_busy():
                try:
                    busy.execute("Insert Into t Values ('busy', 1)",
                                 timeout=30)
                finally:
                    done.append(True)

            threading.Thread(target=run_busy, daemon=True).start()
            assert wait_for(lambda: db.metrics.get("server.requests") >= 1)
            time.sleep(0.1)

            started = time.monotonic()
            with QueryClient(port=h.port) as waiter:
                with pytest.raises(ServerError) as exc_info:
                    waiter.execute("Select * From u")
            elapsed = time.monotonic() - started
            assert exc_info.value.error_type == "ServerOverloadedError"
            assert "queue deadline" in str(exc_info.value)
            # Typed answer within the queue deadline (+ scheduling slack).
            assert 0.15 <= elapsed < 2.0
            assert db.metrics.get("server.shed.queue_deadline") == 1

            holder.release()
            assert wait_for(lambda: bool(done), timeout=30)
            busy.close()
        finally:
            holder.release()
            h.stop()

    def test_shed_statement_never_executed(self, db):
        h = make_harness(db, workers=1, max_connections=16,
                         queue_limit=1, queue_timeout=0.15)
        holder = _LockHolder(db)
        try:
            busy = QueryClient(port=h.port)
            threading.Thread(
                target=lambda: busy.execute(
                    "Insert Into t Values ('busy', 1)", timeout=30),
                daemon=True,
            ).start()
            assert wait_for(lambda: db.metrics.get("server.requests") >= 1)
            time.sleep(0.1)
            # This write is shed (queue deadline) — it must never run.
            with QueryClient(port=h.port) as shed:
                with pytest.raises(ServerError) as exc_info:
                    shed.execute("Insert Into u Values ('phantom', 9)")
            assert exc_info.value.error_type == "ServerOverloadedError"
            holder.release()
            assert wait_for(
                lambda: len(db.sql(
                    "Select * From t r Where r.name = 'busy'")) == 1,
                timeout=30)
            with QueryClient(port=h.port) as check:
                assert check.execute(
                    "Select * From u r Where r.name = 'phantom'"
                )["row_count"] == 0
            busy.close()
        finally:
            holder.release()
            h.stop()


class TestTimeoutClamping:
    def test_max_timeout_clamps_client_deadline(self, db):
        h = make_harness(db, workers=2, max_connections=16,
                         max_timeout=0.15)
        holder = _LockHolder(db)
        try:
            started = time.monotonic()
            with QueryClient(port=h.port) as client:
                with pytest.raises(ServerError) as exc_info:
                    # The client asks for a minute; the server caps it.
                    client.execute("Insert Into t Values ('x', 1)",
                                   timeout=60)
            elapsed = time.monotonic() - started
            assert exc_info.value.error_type in (
                "QueryTimeoutError", "LockTimeoutError")
            assert elapsed < 5.0
        finally:
            holder.release()
            h.stop()

    def test_default_timeout_applies_when_client_sends_none(self, db):
        h = make_harness(db, workers=2, max_connections=16,
                         default_timeout=0.15)
        holder = _LockHolder(db)
        try:
            with QueryClient(port=h.port) as client:
                with pytest.raises(ServerError) as exc_info:
                    client.execute("Insert Into t Values ('x', 1)")
            assert exc_info.value.error_type in (
                "QueryTimeoutError", "LockTimeoutError")
        finally:
            holder.release()
            h.stop()


class TestOversizedResult:
    def test_oversized_result_answers_typed_error_and_keeps_conn(self, db):
        # Small response cap; requests stay tiny, the SELECT result
        # does not fit.
        h = make_harness(db, max_frame=2048, workers=2, max_connections=16)
        try:
            with QueryClient(port=h.port, max_frame=2048) as client:
                wide = "x" * 120
                for i in range(40):
                    client.execute(
                        f"Insert Into u Values ('{wide}{i}', {i})")
                with pytest.raises(ServerError) as exc_info:
                    client.execute("Select * From u")
                assert exc_info.value.error_type == "ServerError"
                assert "frame cap" in str(exc_info.value)
                # The connection survived: narrow queries still answer.
                assert client.execute(
                    "Select * From u r Where r.v = 1"
                )["row_count"] == 2
        finally:
            h.stop()


class TestIdleTimeout:
    def test_idle_connection_is_reaped(self, db):
        h = make_harness(db, workers=2, max_connections=16,
                         idle_timeout=0.2)
        try:
            client = QueryClient(port=h.port)
            assert client.execute("Select * From t")["row_count"] == 10
            assert wait_for(
                lambda: db.metrics.get("server.idle_closed") == 1,
                timeout=5)
            # The server said goodbye (typed frame) and hung up.
            with pytest.raises((ServerError, ProtocolError,
                                ConnectionError, OSError)):
                client.execute("Select * From t")
                client.execute("Select * From t")
            client.close()
            assert wait_for(lambda: db.metrics.get_gauge(
                "server.active_connections") == 0)
            assert not held_locks(db)
        finally:
            h.stop()


class TestHealthFrame:
    def test_health_snapshot_shape(self, db):
        h = make_harness(db, workers=3, max_connections=7, queue_limit=5)
        try:
            with QueryClient(port=h.port) as client:
                health = client.health()
            assert health["status"] == "ok"
            assert health["draining"] is False
            assert health["accepting"] is True
            assert health["connections"] == 1
            assert health["max_connections"] == 7
            assert health["queue_depth"] == 0
            assert health["queue_limit"] == 5
            assert health["workers"] == 3
            assert health["open_txns"] == 0
            assert health["shed"] == 0
            assert health["degraded_paths"] == []
            assert db.metrics.get("server.health_requests") == 1
            # Health probes are not statements: requests stays 0.
            assert db.metrics.get("server.requests") == 0
        finally:
            h.stop()

    def test_health_reports_degraded_paths(self, db):
        h = make_harness(db, workers=2, max_connections=16)
        try:
            db.health.quarantine("summary", "t", "SummaryIndex",
                                 reason="chaos test")
            with QueryClient(port=h.port) as client:
                health = client.health()
            assert ["summary", "t", "SummaryIndex"] in \
                health["degraded_paths"]
        finally:
            db.health.restore_all()
            h.stop()

    def test_health_reflects_drain_state(self, db):
        h = make_harness(db, workers=2, max_connections=16)
        try:
            with QueryClient(port=h.port) as client:
                # Round-trip first so the connection is fully admitted
                # before the drain flag flips.
                client.execute("Select * From t")
                h.server.draining = True
                health = client.health()  # still answered while draining
                assert health["status"] == "draining"
                assert health["draining"] is True
                assert health["accepting"] is False
                h.server.draining = False
        finally:
            h.stop()

    def test_draining_server_rejects_new_statements(self, db):
        h = make_harness(db, workers=2, max_connections=16)
        try:
            with QueryClient(port=h.port) as client:
                client.execute("Select * From t")
                h.server.draining = True
                with pytest.raises(ServerError) as exc_info:
                    client.execute("Select * From t")
                assert exc_info.value.error_type == \
                    "ServerShuttingDownError"
                h.server.draining = False
            assert db.metrics.get("server.shed.draining") == 1
        finally:
            h.stop()


class TestMetricsReconciliation:
    def test_churn_reconciles_exactly(self, db):
        """Every well-formed statement is accounted exactly once:
        ``server.requests == succeeded + server.errors + server.shed``
        (shape errors and health probes are not statements)."""
        h = make_harness(db, workers=1, max_connections=16,
                         queue_limit=1, queue_timeout=0.15)
        outcomes = {"ok": 0, "error": 0, "shed": 0}
        lock = threading.Lock()

        def record(kind):
            with lock:
                outcomes[kind] += 1

        def run(client, sql, timeout=None):
            try:
                client.execute(sql, timeout=timeout)
                record("ok")
            except ServerError as exc:
                record("shed" if exc.error_type == "ServerOverloadedError"
                       else "error")

        try:
            # Phase 1: plain traffic — successes and statement errors.
            with QueryClient(port=h.port) as client:
                for _ in range(5):
                    run(client, "Select * From t")
                for _ in range(2):
                    run(client, "SELEKT nope")
                client.health()  # not a statement

            # Phase 2: congestion — one statement occupies the worker,
            # one queues, one is shed off the full queue.
            holder = _LockHolder(db)
            busy = QueryClient(port=h.port)
            queued = QueryClient(port=h.port)
            threads = [
                threading.Thread(target=run, args=(
                    busy, "Insert Into t Values ('busy', 1)", 0.6),
                    daemon=True),
            ]
            threads[0].start()
            assert wait_for(lambda: db.metrics.get("server.requests") >= 8)
            time.sleep(0.1)
            threads.append(threading.Thread(
                target=run, args=(queued, "Select * From u", 30),
                daemon=True))
            threads[1].start()
            assert wait_for(lambda: db.metrics.get_gauge(
                "server.queue_depth") == 1)
            with QueryClient(port=h.port) as extra:
                run(extra, "Select * From u")  # queue full -> shed
            for t in threads:
                t.join(30)
            holder.release()
            busy.close()
            queued.close()

            assert wait_for(lambda: db.metrics.get_gauge(
                "server.active_connections") == 0)
            snap = db.metrics.snapshot()
            attempted = snap["server.requests"]
            assert attempted == sum(outcomes.values()) == 10
            # Each bucket is individually right, and they partition.
            assert outcomes["shed"] >= 1
            assert snap["server.shed"] == outcomes["shed"]
            assert snap["server.errors"] == outcomes["error"]
            assert attempted == (outcomes["ok"] + snap["server.errors"]
                                 + snap["server.shed"])
            assert snap.get("server.queue_depth", 0) == 0
        finally:
            h.stop()


class TestGracefulDrain:
    def test_stop_with_open_transaction_releases_everything(self, db):
        """The PR-7 regression: ``stop()`` used to abandon live
        connections (``shutdown(wait=False)``), stranding their
        transactions and table locks."""
        h = make_harness(db, workers=2, max_connections=16)
        client = QueryClient(port=h.port)
        client.execute("BEGIN")
        client.execute("Insert Into t Values ('open-txn', 1)")
        assert len(db.txn_manager.active) == 1
        assert held_locks(db)
        h.stop()  # graceful drain, no client cooperation
        assert len(db.txn_manager.active) == 0
        assert not held_locks(db)
        assert h.server._executor is None
        assert h.server._connections == set()
        client.close()
        # The uncommitted write is gone (txn aborted, not committed).
        assert len(db.sql("Select * From t")) == 10

    def test_drain_waits_for_inflight_statement(self, db):
        h = make_harness(db, workers=2, max_connections=16)
        holder = _LockHolder(db)
        client = QueryClient(port=h.port)
        results: dict = {}

        def run():
            try:
                results["value"] = client.execute(
                    "Insert Into t Values ('drained', 7)", timeout=30)
            except Exception as exc:  # pragma: no cover
                results["value"] = exc

        worker = threading.Thread(target=run, daemon=True)
        worker.start()
        assert wait_for(lambda: db.metrics.get("server.requests") >= 1)
        time.sleep(0.1)
        # Free the statement shortly *after* the drain begins.
        threading.Timer(0.3, holder.release).start()
        import asyncio
        asyncio.run_coroutine_threadsafe(
            h.server.stop(drain_timeout=10), h.loop
        ).result(30)
        worker.join(10)
        # The in-flight statement finished and its response went out.
        assert results["value"] is None
        assert db.metrics.get("server.drain_cancelled") == 0
        assert len(db.sql(
            "Select * From t r Where r.name = 'drained'")) == 1
        assert len(db.txn_manager.active) == 0
        assert not held_locks(db)
        client.close()
        h.stop()

    def test_drain_deadline_cancels_stragglers(self, db):
        h = make_harness(db, workers=2, max_connections=16)
        holder = _LockHolder(db)
        client = QueryClient(port=h.port)
        failures: list = []

        def run():
            try:
                client.execute("Insert Into t Values ('stuck', 1)",
                               timeout=60)
            except Exception as exc:
                failures.append(exc)

        worker = threading.Thread(target=run, daemon=True)
        worker.start()
        assert wait_for(lambda: db.metrics.get("server.requests") >= 1)
        time.sleep(0.15)
        import asyncio
        started = time.monotonic()
        asyncio.run_coroutine_threadsafe(
            h.server.stop(drain_timeout=0.3), h.loop
        ).result(30)
        elapsed = time.monotonic() - started
        # Past the deadline the straggler was cooperatively cancelled —
        # stop() never waits for the full 60s statement deadline.
        assert elapsed < 10
        assert db.metrics.get("server.drain_cancelled") == 1
        assert len(db.txn_manager.active) == 0
        holder.release()
        assert not held_locks(db)
        worker.join(10)
        assert failures  # the client saw a failure, never a fake success
        client.close()
        h.stop()


class TestServeSigterm:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        """tier-1 smoke for the CLI lifecycle: start ``python -m repro
        serve``, open a transaction, SIGTERM, expect a clean drain."""
        repo_root = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo_root, "src")
        env["PYTHONUNBUFFERED"] = "1"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "2", "--drain-timeout", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=repo_root,
        )
        try:
            line = proc.stdout.readline()
            assert "listening on" in line, line
            port = int(line.rsplit(":", 1)[1])
            client = QueryClient(port=port, connect_timeout=10)
            client.execute(
                "Create Table s (name TEXT, v INT)")
            client.execute("BEGIN")
            client.execute("Insert Into s Values ('inflight', 1)")
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0, out
            assert "repro server drained" in out
            # The drained server hung up on the open-transaction client.
            with pytest.raises((ServerError, ProtocolError,
                                ConnectionError, OSError)):
                client.execute("COMMIT")
                client.execute("COMMIT")
            client.close()
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup path
                proc.kill()
                proc.communicate()

    def test_second_connection_during_drain_is_rejected_typed(self, db):
        h = make_harness(db, workers=2, max_connections=16)
        try:
            h.server.draining = True
            with QueryClient(port=h.port) as client:
                with pytest.raises(ServerError) as exc_info:
                    client.execute("Select * From t")
            assert exc_info.value.error_type == "ServerShuttingDownError"
            h.server.draining = False
        finally:
            h.stop()
