"""WAL record framing.

The log is a byte stream of self-describing frames.  Each frame is::

    [ lsn:u64 | type:u8 | stmt_id:u64 | txn_id:u64 | payload_len:u32 | crc32:u32 ]
    [ payload (pickled dict) ]

``txn_id`` is 0 for autocommit records (one statement = one implicit
transaction, synced at the statement boundary — exactly the pre-txn-era
contract) and non-zero for records belonging to an explicit
BEGIN…COMMIT transaction.  Explicit transactions are *buffered-redo*: the
whole group — a ``TXN_BEGIN`` frame, the DML redo records, a
``TXN_COMMIT`` frame — is appended and synced at commit time, so recovery
replays a transaction's records only when its commit frame made it to
durable storage (see ``repro.wal.recovery``).

``lsn`` is the byte offset of the frame's first byte in the *logical* log
stream (monotonic across checkpoint truncations — truncating re-bases the
physical log but never reuses an offset), so a frame read back from disk
self-identifies its position: a frame whose stored LSN disagrees with the
offset it was found at is garbage, not log.

``crc32`` covers the header fields (with the CRC field itself zeroed) plus
the payload.  Scanning stops cleanly at the first frame that is truncated,
mis-positioned, or fails its CRC: a torn tail is the *end* of the log, not
an error — everything before it replays, nothing after it can be trusted.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator

from repro.errors import WALError

_FRAME = struct.Struct("<QBQQII")  # lsn, type, stmt_id, txn_id, payload_len, crc32
FRAME_SIZE = _FRAME.size


class WALRecordType:
    """Logical redo-record types (one per mutating statement class)."""

    #: DDL replayed by re-invoking the Database method by name.
    DDL = 1
    #: Row insert with the assigned OID and canonical positional values.
    INSERT = 2
    #: Row delete by OID (summary maintenance replays as a side effect).
    DELETE = 3
    #: Row update with post-evaluation assigned column values.
    UPDATE = 4
    #: Annotation attach with the assigned annotation id and targets.
    ANN_ADD = 5
    #: Annotation delete by id.
    ANN_DEL = 6
    #: Explicit transaction opens (first frame of a commit group).
    TXN_BEGIN = 7
    #: Explicit transaction commit — the durability point of its group.
    TXN_COMMIT = 8
    #: Bulk annotation load: one framed record for the whole batch, with
    #: the first assigned annotation id (ids are sequential from there).
    ANN_BULK = 9

    ALL = (DDL, INSERT, DELETE, UPDATE, ANN_ADD, ANN_DEL,
           TXN_BEGIN, TXN_COMMIT, ANN_BULK)

    NAMES = {
        DDL: "ddl", INSERT: "insert", DELETE: "delete",
        UPDATE: "update", ANN_ADD: "ann_add", ANN_DEL: "ann_del",
        TXN_BEGIN: "txn_begin", TXN_COMMIT: "txn_commit",
        ANN_BULK: "ann_bulk",
    }


@dataclass(frozen=True)
class WALRecord:
    """One decoded log record."""

    lsn: int            #: byte offset of the frame start in the log stream
    type: int
    stmt_id: int
    payload: dict
    #: owning explicit transaction (0 = autocommit record).
    txn_id: int = 0

    @property
    def end_lsn(self) -> int:
        """Byte offset one past this record's frame (the next record's LSN)."""
        return self.lsn + FRAME_SIZE + len(self._encoded_payload())

    def _encoded_payload(self) -> bytes:
        return pickle.dumps(self.payload)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WALRecord(lsn={self.lsn}, "
            f"type={WALRecordType.NAMES.get(self.type, self.type)}, "
            f"stmt={self.stmt_id}, txn={self.txn_id})"
        )


def _frame_crc(lsn: int, rtype: int, stmt_id: int, txn_id: int,
               payload: bytes) -> int:
    header = _FRAME.pack(lsn, rtype, stmt_id, txn_id, len(payload), 0)
    return zlib.crc32(payload, zlib.crc32(header)) & 0xFFFFFFFF


def encode_record(lsn: int, rtype: int, stmt_id: int, payload: dict,
                  txn_id: int = 0) -> bytes:
    """Frame one record at log offset ``lsn``."""
    if rtype not in WALRecordType.ALL:
        raise WALError(f"unknown WAL record type {rtype}")
    body = pickle.dumps(payload)
    crc = _frame_crc(lsn, rtype, stmt_id, txn_id, body)
    return _FRAME.pack(lsn, rtype, stmt_id, txn_id, len(body), crc) + body


@dataclass
class ScanResult:
    """Outcome of scanning a log byte stream."""

    records: list[WALRecord]
    #: bytes at the tail that did not form a valid frame (torn tail).
    torn_bytes: int
    #: log offset one past the last valid frame.
    end_lsn: int


def scan_records(data: bytes, base_lsn: int) -> ScanResult:
    """Decode every valid frame of ``data`` (whose first byte sits at log
    offset ``base_lsn``).

    Stops at the first truncated frame, CRC failure, or frame whose stored
    LSN disagrees with its physical position — the torn-tail contract: a
    partially synced frame cleanly ends the log.
    """
    records: list[WALRecord] = []
    pos = 0
    n = len(data)
    while pos + FRAME_SIZE <= n:
        lsn, rtype, stmt_id, txn_id, payload_len, crc = _FRAME.unpack_from(
            data, pos
        )
        if lsn != base_lsn + pos:
            break  # mis-positioned frame: garbage, not log
        end = pos + FRAME_SIZE + payload_len
        if end > n:
            break  # frame body truncated mid-sync
        body = bytes(data[pos + FRAME_SIZE:end])
        if _frame_crc(lsn, rtype, stmt_id, txn_id, body) != crc:
            break  # torn or bit-rotted frame
        try:
            payload = pickle.loads(body)
        except Exception:
            break  # CRC collided with undecodable bytes: treat as torn
        records.append(WALRecord(lsn, rtype, stmt_id, payload, txn_id))
        pos = end
    return ScanResult(records, torn_bytes=n - pos, end_lsn=base_lsn + pos)


def iter_records(data: bytes, base_lsn: int) -> Iterator[WALRecord]:
    """Convenience: just the valid records of :func:`scan_records`."""
    return iter(scan_records(data, base_lsn).records)
