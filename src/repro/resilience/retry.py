"""Transient-error classification and the bounded retry policy.

The resilience layer splits storage read/write errors into two classes:

* **transient** — :class:`~repro.errors.TransientIOError` (the fault
  layer's retryable class). The operation failed but the device is
  usable; an immediate retry may succeed.
* **permanent** — everything else: fail-stop
  :class:`~repro.errors.InjectedFaultError` (the disk is dead),
  unallocated-page :class:`~repro.errors.StorageError`, and — for plain
  device calls — :class:`~repro.errors.CorruptPageError` (the data rotted;
  retrying the same bytes cannot help).

One refinement: the buffer pool's *verified read* (read + CRC check as a
unit) re-fetches from disk on every attempt, so for that call a checksum
failure IS worth retrying — bit rot injected on the read path corrupts only
the returned copy, and a re-read heals it. Persistent on-disk rot still
fails every attempt and surfaces after the budget. Callers opt in via the
``also`` argument of :func:`is_transient` / :meth:`DiskGuard.call`.

:class:`RetryPolicy` is seeded and bounded: delays grow exponentially from
``base_delay`` up to ``max_delay`` with a seeded jitter term, so a retry
schedule is reproducible from (policy parameters, seed) alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import TransientIOError


def is_transient(exc: BaseException, also: tuple = ()) -> bool:
    """True when ``exc`` is worth retrying (see module docstring)."""
    if isinstance(exc, TransientIOError):
        return True
    return bool(also) and isinstance(exc, also)


@dataclass
class RetryPolicy:
    """Seeded, bounded exponential-backoff retry schedule.

    ``max_attempts`` counts *total* attempts (1 = no retries). ``delay(n)``
    is the sleep before retry ``n`` (1-based):
    ``min(base_delay * 2**(n-1), max_delay) + jitter * rng.random()``.
    With ``base_delay == 0`` and ``jitter == 0`` retries are immediate —
    the test/CI configuration.
    """

    max_attempts: int = 3
    base_delay: float = 0.001
    jitter: float = 0.0
    max_delay: float = 0.05
    seed: int = 0
    rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.rng = random.Random(self.seed)

    def delay(self, attempt: int) -> float:
        """Backoff before the ``attempt``-th retry (1-based)."""
        backoff = min(self.base_delay * (2 ** (attempt - 1)), self.max_delay)
        if self.jitter:
            backoff += self.jitter * self.rng.random()
        return backoff

    def delays(self) -> list[float]:
        """The full retry-delay schedule (``max_attempts - 1`` entries)."""
        return [self.delay(n) for n in range(1, self.max_attempts)]
