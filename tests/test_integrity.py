"""Integrity-checker tests.

Three layers:

1. clean databases — empty, hand-built, every bench preset scale — must
   audit clean;
2. the seeded corruption sweep from the acceptance criteria — torn page
   write, bit flip, truncated image, dangling backward pointer — must be
   detected 100% of the time;
3. manufactured structural damage (slot accounting, B-Tree ordering,
   index drift, annotation references) must each produce its typed
   violation kind.
"""

from __future__ import annotations

import os

import pytest

from repro.catalog.schema import Column
from repro.core.database import Database
from repro.core.integrity import IntegrityChecker
from repro.errors import CorruptImageError, IntegrityError
from repro.faults import FaultPlan, install_faults, remove_faults
from repro.storage.record import ValueType
from repro.workload.generator import WorkloadConfig, build_database


#: The CI fault-sweep matrix shifts every seeded schedule into a disjoint
#: band per matrix entry (REPRO_FAULT_SEED=0..3), so the nightly runs cover
#: different torn lengths / bit positions than the tier-1 run.
FAULT_SEED_BASE = int(os.environ.get("REPRO_FAULT_SEED", "0")) * 100


def workload_db(num_birds=12, apt=5, indexes="summary_btree", seed=6):
    return build_database(WorkloadConfig(
        num_birds=num_birds, annotations_per_tuple=apt,
        indexes=indexes, cell_fraction=0.0, seed=seed,
    ))


class TestCleanDatabases:
    def test_empty_database(self):
        report = Database().check_integrity()
        assert report.ok
        assert "OK" in str(report)

    def test_after_dml_churn(self):
        db = Database(buffer_pages=16)
        db.create_table("t", [Column("name", ValueType.TEXT),
                              Column("v", ValueType.INT)])
        db.create_index("t", "v")
        oids = [db.insert("t", [f"row{i}", i % 7]) for i in range(300)]
        for oid in oids[::3]:
            db.delete_tuple("t", oid)
        for oid in oids[1::3]:
            db.catalog.table("t").update(oid, {"v": 99})
        report = db.check_integrity()
        assert report.ok, str(report)
        assert report.heaps_checked >= 2  # t + annotation store
        assert report.btrees_checked >= 3

    def test_annotated_workload_both_indexes(self):
        db = workload_db(indexes="both")
        # Exercise annotation deletion paths too.
        ann = db.add_annotation("extra note", table="birds", oid=1)
        db.delete_annotation(ann.ann_id)
        db.delete_tuple("birds", 2)
        report = db.check_integrity()
        assert report.ok, str(report)
        assert report.pages_checked > 0

    def test_raise_on_error_flag(self):
        db = Database()
        db.check_integrity(raise_on_error=True)  # clean: no raise

    @pytest.mark.parametrize("preset", ["quick", "default", "full"])
    def test_bench_preset_scales(self, preset):
        """check_integrity passes on a workload at every bench preset scale.

        The 'full' point is slow; it runs only when REPRO_SLOW_TESTS is set
        (the scheduled CI job exports it).
        """
        from repro.bench.presets import PRESETS

        if preset == "full" and not os.environ.get("REPRO_SLOW_TESTS"):
            pytest.skip("full preset gated behind REPRO_SLOW_TESTS")
        scale = PRESETS[preset]
        db = workload_db(
            num_birds=scale.num_birds, apt=min(scale.densities), indexes="both"
        )
        report = db.check_integrity()
        assert report.ok, str(report)


class TestCorruptionSweep:
    """The acceptance sweep: every seeded corruption class is detected."""

    @pytest.mark.parametrize("seed", [FAULT_SEED_BASE + i for i in range(5)])
    def test_torn_page_write(self, seed):
        from repro.faults.plan import Fault, FaultKind

        db = workload_db(seed=seed % 7 + 1)
        db.sql("INSERT INTO birds (scientific_name) VALUES ('torn victim')")
        # Tear every write of the flush (silent firmware-style tearing), so
        # checksummed heap pages are guaranteed to be among the victims.
        plan = FaultPlan(seed=seed).schedule(
            Fault(FaultKind.TORN_WRITE, "write", 0, period=1, crash=False)
        )
        faulty = install_faults(db, plan)
        db.pool.flush_all()
        remove_faults(db)
        assert faulty.injected, "setup failed to tear a write"
        report = db.check_integrity()
        assert not report.ok
        assert any(v.kind == "checksum-mismatch" for v in report.violations)

    @pytest.mark.parametrize("seed", [FAULT_SEED_BASE + i for i in range(5)])
    def test_bit_flip_write(self, seed):
        from repro.faults.plan import Fault, FaultKind

        db = workload_db(seed=seed % 7 + 1)
        db.sql("INSERT INTO birds (scientific_name) VALUES ('flip victim')")
        plan = FaultPlan(seed=seed).schedule(
            Fault(FaultKind.BIT_FLIP, "write", 0, period=1, bits=1)
        )
        faulty = install_faults(db, plan)
        db.pool.flush_all()
        remove_faults(db)
        assert faulty.injected
        report = db.check_integrity()
        assert not report.ok
        assert any(v.kind == "checksum-mismatch" for v in report.violations)

    def test_truncated_image_every_boundary(self, tmp_path):
        """A save() image truncated at any point must raise typed errors."""
        db = workload_db(num_birds=4, apt=2)
        path = tmp_path / "img.db"
        db.save(path)
        data = path.read_bytes()
        # Dense boundaries through the header, sparse through the payload.
        cuts = list(range(0, min(len(data), 40))) + list(
            range(40, len(data), max(1, len(data) // 50))
        )
        for cut in cuts:
            path.write_bytes(data[:cut])
            with pytest.raises(CorruptImageError):
                Database.load(path)

    def test_image_bit_flip(self, tmp_path):
        db = workload_db(num_birds=4, apt=2)
        path = tmp_path / "img.db"
        db.save(path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x40
        path.write_bytes(data)
        with pytest.raises(CorruptImageError):
            Database.load(path)

    def test_dangling_backward_pointer(self):
        """Deleting a data tuple behind the SummaryManager's back leaves
        Summary-BTree backward pointers aimed at nothing."""
        db = workload_db()
        table = db.catalog.table("birds")
        victim = next(oid for oid, _ in table.scan())
        table.delete(victim)  # bypasses manager + index maintenance
        report = db.check_integrity()
        assert not report.ok
        kinds = {v.kind for v in report.violations}
        assert "dangling-backward-pointer" in kinds
        assert "orphan-summary-row" in kinds

    def test_raise_on_error_raises(self):
        db = workload_db()
        db.catalog.table("birds").delete(1)
        with pytest.raises(IntegrityError):
            db.check_integrity(raise_on_error=True)


class TestManufacturedDamage:
    def test_slot_accounting_damage(self):
        db = Database()
        db.create_table("t", [Column("v", ValueType.INT)])
        for i in range(20):
            db.insert("t", [i])
        heap = db.catalog.table("t").heap
        frame = db.pool.get_page(heap.page_ids[0])
        # Point slot 0 outside the record area.
        import struct
        struct.pack_into("<HH", frame, 8, 9999, 4)
        db.pool.mark_dirty(heap.page_ids[0])
        report = db.check_integrity()
        assert any(v.kind == "page-accounting" for v in report.violations)

    def test_btree_order_damage(self):
        from repro.btree.node import LeafNode, parse_node

        db = Database()
        db.create_table("t", [Column("v", ValueType.INT)])
        db.create_index("t", "v")
        for i in range(200):
            db.insert("t", [i])
        tree = db.catalog.table("t").secondary_indexes["v"]
        # Swap two entries in the leftmost leaf to break key ordering.
        leaf_id = tree._leftmost_leaf()
        node = parse_node(db.pool.get_page(leaf_id))
        assert isinstance(node, LeafNode) and len(node.entries) >= 2
        node.entries[0], node.entries[-1] = node.entries[-1], node.entries[0]
        db.pool.put_page(leaf_id, node.to_bytes(db.pool.disk.page_size))
        tree._cache.clear()
        report = db.check_integrity()
        assert any(v.kind == "btree-structure" for v in report.violations)

    def test_secondary_index_drift(self):
        from repro.catalog.keys import encode_int, encode_key

        db = Database()
        db.create_table("t", [Column("v", ValueType.INT)])
        db.create_index("t", "v")
        oid = db.insert("t", [5])
        db.insert("t", [6])
        index = db.catalog.table("t").secondary_indexes["v"]
        index.delete(encode_key(5, ValueType.INT), encode_int(oid))
        report = db.check_integrity()
        assert any(
            v.kind == "index-mismatch" and "missing" in v.detail
            for v in report.violations
        )

    def test_summary_index_stale_entry(self):
        db = workload_db()
        index = next(iter(db.summary_indexes.values()))
        index.tree.insert(b"bogus:0042", index._pointer_for(1))
        report = db.check_integrity()
        assert any(
            v.kind == "index-mismatch" and "stale" in v.detail
            for v in report.violations
        )

    def test_dangling_annotation_reference(self):
        db = workload_db()
        # Remove one raw annotation directly from the store: the summary
        # objects still reference its id.
        ann = next(iter(db.manager.annotations.scan()))
        db.manager.annotations.delete(ann.ann_id)
        report = db.check_integrity()
        assert any(v.kind == "dangling-element" for v in report.violations)

    def test_checker_survives_broken_structures(self):
        """A corrupt structure must not abort the rest of the audit."""
        db = workload_db(indexes="both")
        db.catalog.table("birds").delete(1)  # corruption #1
        ann = next(iter(db.manager.annotations.scan()))
        db.manager.annotations.delete(ann.ann_id)  # corruption #2
        report = IntegrityChecker(db).run()
        kinds = {v.kind for v in report.violations}
        # Both independent corruptions surfaced in one run.
        assert "dangling-element" in kinds
        assert kinds & {"dangling-backward-pointer", "orphan-summary-row"}


class TestCliCheck:
    def test_repl_check_command(self):
        from repro.cli import execute_line

        db = workload_db(num_birds=4, apt=2)
        out = execute_line(db, "\\check")
        assert "OK" in out

    def test_check_verb_clean_image(self, tmp_path, capsys):
        from repro.cli import main

        db = workload_db(num_birds=4, apt=2)
        path = tmp_path / "img.db"
        db.save(path)
        assert main(["check", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_check_verb_violations(self, tmp_path, capsys):
        from repro.cli import main

        db = workload_db(num_birds=4, apt=2)
        db.catalog.table("birds").delete(1)
        path = tmp_path / "img.db"
        db.save(path)
        assert main(["check", str(path)]) == 1
        assert "violation" in capsys.readouterr().out

    def test_check_verb_corrupt_image(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "img.db"
        path.write_bytes(b"not an image at all")
        assert main(["check", str(path)]) == 2
        assert "error" in capsys.readouterr().out

    def test_check_verb_usage(self, capsys):
        from repro.cli import main

        assert main(["check"]) == 2
        assert "usage" in capsys.readouterr().out
