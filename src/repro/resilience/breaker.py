"""Per-device circuit breaker.

A :class:`CircuitBreaker` sits in front of one device (the database's disk,
as seen through the buffer pool) and fails fast once the device has failed
repeatedly, instead of letting every statement hammer a dying disk:

* **closed** — calls pass through; consecutive *final* failures (after the
  retry policy's budget is exhausted) are counted.
* **open** — entered after ``failure_threshold`` consecutive failures;
  every call is rejected immediately with a typed
  :class:`~repro.errors.CircuitOpenError` until ``cooldown_s`` has passed.
* **half-open** — after the cooldown one trial call is admitted; success
  closes the breaker (counters reset), failure re-opens it for another
  cooldown.

Only *device*-class errors trip the breaker (injected fail-stop/transient
I/O). Data corruption (:class:`~repro.errors.CorruptPageError`) is a media
problem, not a device problem — it is surfaced to the caller but never
counted, so a handful of rotten pages cannot take a healthy disk offline.

The clock is injectable so state transitions are unit-testable without
real sleeps.
"""

from __future__ import annotations

import time

from repro.errors import CircuitOpenError, InjectedFaultError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: numeric gauge for metrics snapshots (closed < half-open < open).
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


def is_device_failure(exc: BaseException) -> bool:
    """True for errors that indict the device itself (see module doc)."""
    return isinstance(exc, InjectedFaultError)


class CircuitBreaker:
    """Closed / open / half-open breaker guarding one device."""

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 1.0,
        clock=time.monotonic,
        metrics=None,
        device: str = "disk",
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.clock = clock
        self.metrics = metrics
        self.device = device
        self.state = CLOSED
        self.failures = 0
        self.opened_at: float | None = None

    @property
    def state_code(self) -> int:
        return STATE_CODES[self.state]

    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        if self.metrics is not None:
            self.metrics.inc(f"resilience.breaker.{state}")

    def before_call(self) -> None:
        """Admit or reject the next call; called before every device op."""
        if self.state != OPEN:
            return
        assert self.opened_at is not None
        if self.clock() - self.opened_at >= self.cooldown_s:
            self._transition(HALF_OPEN)
            return
        if self.metrics is not None:
            self.metrics.inc("resilience.breaker.rejected")
        raise CircuitOpenError(
            f"circuit breaker for device {self.device!r} is open "
            f"({self.failures} consecutive failures; retry after "
            f"{self.cooldown_s}s cooldown)"
        )

    def record_success(self) -> None:
        self.failures = 0
        if self.state != CLOSED:
            self._transition(CLOSED)

    def record_failure(self, exc: BaseException | None = None) -> None:
        """Count one final (post-retry) failure; may open the breaker."""
        if exc is not None and not is_device_failure(exc):
            return
        self.failures += 1
        if self.state == HALF_OPEN or self.failures >= self.failure_threshold:
            self.opened_at = self.clock()
            self._transition(OPEN)

    def reset(self) -> None:
        """Force-close (e.g. after the faulty device was swapped out)."""
        self.failures = 0
        self.opened_at = None
        self._transition(CLOSED)
