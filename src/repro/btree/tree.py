"""B-Tree over buffer-pool pages.

Entries are ``(key, value)`` byte pairs ordered lexicographically by the
composite pair, which makes duplicate keys well-defined for both insertion
and deletion. Splits happen when a node's serialized form would overflow its
page. Deletion is *lazy*: underflowing nodes are left in place (they remain
correct, merely under-full) — the classic simplification used by several
production engines; the workloads here are append-dominated so occupancy
stays healthy.
"""

from __future__ import annotations

import bisect
from typing import Iterator

from repro.errors import DuplicateKeyError, IndexError_, StorageError
from repro.storage.buffer import BufferPool
from repro.btree.node import Entry, InternalNode, LeafNode, parse_node


def _byte_balanced_mid(sizes: list[int]) -> int:
    """Split index that balances the two halves by serialized bytes.

    Always leaves at least one element on each side.
    """
    total = sum(sizes)
    running = 0
    for i, size in enumerate(sizes):
        running += size
        if running >= total // 2:
            return min(max(i + 1, 1), len(sizes) - 1)
    return len(sizes) // 2


class BTree:
    """A disk-paged B-Tree of ``(key, value)`` byte entries.

    Parameters
    ----------
    pool:
        Buffer pool the node pages live in.
    unique:
        When True, inserting a key that already exists raises
        :class:`DuplicateKeyError`.
    """

    def __init__(self, pool: BufferPool, unique: bool = False):
        self.pool = pool
        self.unique = unique
        self.page_size = pool.disk.page_size
        self._len = 0
        #: Node visits since the last reset — used by the theoretical-bounds
        #: benchmark to verify logarithmic behaviour.
        self.touches = 0
        self._cache: dict[int, LeafNode | InternalNode] = {}
        self.root_id = self.pool.new_page()
        self._write(self.root_id, LeafNode())

    # -- node I/O -------------------------------------------------------------

    def _read(self, page_id: int) -> LeafNode | InternalNode:
        self.touches += 1
        # Pull through the pool so cache misses are charged a disk read even
        # when the parsed form is memoized.
        data = self.pool.get_page(page_id)
        node = self._cache.get(page_id)
        if node is None:
            node = parse_node(data)
            self._cache[page_id] = node
        return node

    def _write(self, page_id: int, node: LeafNode | InternalNode) -> None:
        self.pool.put_page(page_id, node.to_bytes(self.page_size))
        self._cache[page_id] = node

    def _max_entry_size(self) -> int:
        # Three entries must always fit so splits can make progress.
        return (self.page_size - 16) // 3

    # -- public API -----------------------------------------------------------

    def __len__(self) -> int:
        return self._len

    def insert(self, key: bytes, value: bytes) -> None:
        """Insert ``(key, value)``. Duplicate pairs are rejected."""
        if len(key) + len(value) + 8 > self._max_entry_size():
            raise IndexError_(
                f"entry of {len(key) + len(value)} bytes exceeds index limit"
            )
        entry = (key, value)
        path = self._descend(entry)
        leaf_id = path[-1][0]
        leaf = self._read(leaf_id)
        assert isinstance(leaf, LeafNode)
        pos = bisect.bisect_left(leaf.entries, entry)
        if pos < len(leaf.entries) and leaf.entries[pos] == entry:
            raise DuplicateKeyError(f"entry already present: {key!r}")
        if self.unique and (
            (pos < len(leaf.entries) and leaf.entries[pos][0] == key)
            or (pos > 0 and leaf.entries[pos - 1][0] == key)
        ):
            raise DuplicateKeyError(f"duplicate key in unique index: {key!r}")
        leaf.insert_entry(pos, entry)
        self._len += 1
        if leaf.serialized_size() <= self.page_size:
            self._write(leaf_id, leaf)
            return
        self._split(path, leaf)

    def delete(self, key: bytes, value: bytes) -> bool:
        """Delete ``(key, value)``; returns True when it was present."""
        entry = (key, value)
        path = self._descend(entry)
        leaf_id = path[-1][0]
        leaf = self._read(leaf_id)
        assert isinstance(leaf, LeafNode)
        pos = bisect.bisect_left(leaf.entries, entry)
        if pos >= len(leaf.entries) or leaf.entries[pos] != entry:
            return False
        leaf.remove_entry(pos)
        self._write(leaf_id, leaf)
        self._len -= 1
        return True

    def search(self, key: bytes) -> list[bytes]:
        """Return every value stored under exactly ``key``."""
        return [v for _, v in self.range_scan(key, key)]

    def contains_key(self, key: bytes) -> bool:
        for _ in self.range_scan(key, key):
            return True
        return False

    def range_scan(
        self,
        lo: bytes | None,
        hi: bytes | None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> Iterator[tuple[bytes, bytes]]:
        """Yield entries with ``lo <= key <= hi`` (bounds optional).

        Exclusive bounds are honoured via ``lo_inclusive`` / ``hi_inclusive``.
        Entries stream in key order by walking the leaf chain.
        """
        if lo is None:
            leaf_id = self._leftmost_leaf()
        else:
            leaf_id = self._descend((lo, b""))[-1][0]
        while leaf_id != -1:
            leaf = self._read(leaf_id)
            assert isinstance(leaf, LeafNode)
            for key, value in leaf.entries:
                if lo is not None:
                    if key < lo or (not lo_inclusive and key == lo):
                        continue
                if hi is not None:
                    if key > hi or (not hi_inclusive and key == hi):
                        return
                yield key, value
            leaf_id = leaf.next_leaf

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Every entry in key order."""
        return self.range_scan(None, None)

    @property
    def height(self) -> int:
        """Number of levels (1 for a lone leaf)."""
        levels = 1
        node = self._read(self.root_id)
        while isinstance(node, InternalNode):
            levels += 1
            node = self._read(node.children[0])
        return levels

    def node_count(self) -> int:
        """Total number of node pages in the tree."""
        count = 0
        stack = [self.root_id]
        while stack:
            node = self._read(stack.pop())
            count += 1
            if isinstance(node, InternalNode):
                stack.extend(node.children)
        return count

    def reset_touches(self) -> None:
        self.touches = 0

    # -- integrity ------------------------------------------------------------

    def structure_errors(self, location: str = "btree") -> list[str]:
        """Verify the tree's structural invariants; returns violations.

        Checked: node pages parse, no page is reachable twice, entries and
        separators are strictly sorted and within their separator bounds,
        serialized nodes fit their page, every leaf sits at the same depth,
        the sibling chain visits exactly the leaves in left-to-right order,
        and the entry count matches ``len(self)``.

        Pages are re-parsed from the buffer pool (bypassing the node memo
        cache) so corruption in the backing bytes is not masked by a stale
        parsed form.
        """
        errors: list[str] = []
        seen: set[int] = set()
        leaves_in_order: list[int] = []
        leaf_depths: set[int] = set()
        sibling_pointers: dict[int, int] = {}
        entry_total = 0
        prev_entry: Entry | None = None

        def visit(page_id: int, depth: int,
                  lo: Entry | None, hi: Entry | None) -> None:
            nonlocal entry_total, prev_entry
            if page_id in seen:
                errors.append(f"{location}: page {page_id} reachable twice")
                return
            seen.add(page_id)
            try:
                node = parse_node(self.pool.get_page(page_id))
            except StorageError as exc:
                errors.append(f"{location}: node page {page_id}: {exc}")
                return
            if node.serialized_size() > self.page_size:
                errors.append(
                    f"{location}: node page {page_id} serializes to "
                    f"{node.serialized_size()} bytes (> {self.page_size})"
                )
            if isinstance(node, LeafNode):
                leaf_depths.add(depth)
                leaves_in_order.append(page_id)
                sibling_pointers[page_id] = node.next_leaf
                entry_total += len(node.entries)
                for entry in node.entries:
                    if prev_entry is not None and entry <= prev_entry:
                        errors.append(
                            f"{location}: leaf {page_id} entry {entry!r} out "
                            f"of order (follows {prev_entry!r})"
                        )
                    if lo is not None and entry < lo:
                        errors.append(
                            f"{location}: leaf {page_id} entry {entry!r} "
                            f"below its separator bound {lo!r}"
                        )
                    if hi is not None and entry >= hi:
                        errors.append(
                            f"{location}: leaf {page_id} entry {entry!r} at "
                            f"or above its separator bound {hi!r}"
                        )
                    prev_entry = entry
                return
            if len(node.children) != len(node.separators) + 1:
                errors.append(
                    f"{location}: internal {page_id} has "
                    f"{len(node.children)} children for "
                    f"{len(node.separators)} separators"
                )
                return
            for i, sep in enumerate(node.separators):
                if i > 0 and sep <= node.separators[i - 1]:
                    errors.append(
                        f"{location}: internal {page_id} separators out of "
                        f"order at index {i}"
                    )
                if lo is not None and sep < lo:
                    errors.append(
                        f"{location}: internal {page_id} separator {sep!r} "
                        f"below bound {lo!r}"
                    )
                if hi is not None and sep >= hi:
                    errors.append(
                        f"{location}: internal {page_id} separator {sep!r} "
                        f"at or above bound {hi!r}"
                    )
            bounds = [lo] + list(node.separators) + [hi]
            for i, child in enumerate(node.children):
                visit(child, depth + 1, bounds[i], bounds[i + 1])

        visit(self.root_id, 1, None, None)

        if len(leaf_depths) > 1:
            errors.append(
                f"{location}: non-uniform leaf depth {sorted(leaf_depths)}"
            )
        if leaves_in_order:
            # Walk the sibling chain from the leftmost leaf; it must visit
            # exactly the tree-ordered leaves, then terminate.
            chain: list[int] = []
            current = leaves_in_order[0]
            while current != -1 and len(chain) <= len(leaves_in_order):
                chain.append(current)
                current = sibling_pointers.get(current, -1)
            if chain != leaves_in_order:
                errors.append(
                    f"{location}: sibling chain {chain} does not match "
                    f"leaf order {leaves_in_order}"
                )
        if entry_total != self._len:
            errors.append(
                f"{location}: {entry_total} entries in leaves but tree "
                f"reports len {self._len}"
            )
        return errors

    def drop(self) -> None:
        """Free every node page."""
        stack = [self.root_id]
        while stack:
            page_id = stack.pop()
            node = self._read(page_id)
            if isinstance(node, InternalNode):
                stack.extend(node.children)
            self._cache.pop(page_id, None)
            self.pool.free_page(page_id)
        self._len = 0

    # -- internals ------------------------------------------------------------

    def _descend(self, entry: Entry) -> list[tuple[int, int]]:
        """Walk from root to the leaf that owns ``entry``.

        Returns the path as ``[(page_id, child_index_in_parent), ...]``; the
        root's child index is -1.
        """
        path = [(self.root_id, -1)]
        node = self._read(self.root_id)
        while isinstance(node, InternalNode):
            idx = bisect.bisect_right(node.separators, entry)
            child_id = node.children[idx]
            path.append((child_id, idx))
            node = self._read(child_id)
        return path

    def _leftmost_leaf(self) -> int:
        page_id = self.root_id
        node = self._read(page_id)
        while isinstance(node, InternalNode):
            page_id = node.children[0]
            node = self._read(page_id)
        return page_id

    def _split(self, path: list[tuple[int, int]], node: LeafNode | InternalNode) -> None:
        """Split the overflowing ``node`` at ``path[-1]``, cascading upward."""
        page_id, child_idx = path[-1]
        if isinstance(node, LeafNode):
            mid = _byte_balanced_mid([4 + len(k) + len(v) for k, v in node.entries])
            right = LeafNode(node.entries[mid:], node.next_leaf)
            right_id = self.pool.new_page()
            node.entries = node.entries[:mid]
            node.invalidate_size()
            node.next_leaf = right_id
            separator = right.entries[0]
            self._write(right_id, right)
            self._write(page_id, node)
        else:
            mid = len(node.separators) // 2
            separator = node.separators[mid]
            right = InternalNode(
                node.separators[mid + 1:], node.children[mid + 1:]
            )
            right_id = self.pool.new_page()
            node.separators = node.separators[:mid]
            node.children = node.children[:mid + 1]
            node.invalidate_size()
            self._write(right_id, right)
            self._write(page_id, node)

        if len(path) == 1:
            # Root split: grow the tree by one level.
            new_root = InternalNode([separator], [page_id, right_id])
            new_root_id = self.pool.new_page()
            self._write(new_root_id, new_root)
            self.root_id = new_root_id
            return

        parent_id, _ = path[-2]
        parent = self._read(parent_id)
        assert isinstance(parent, InternalNode)
        pos = bisect.bisect_right(parent.separators, separator)
        parent.insert_separator(pos, separator, right_id)
        if parent.serialized_size() <= self.page_size:
            self._write(parent_id, parent)
        else:
            self._split(path[:-1], parent)
