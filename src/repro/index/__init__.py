"""Summary-based indexing schemes (§4).

Two implementations of the Classifier-type indexing scheme:

* :class:`SummaryBTreeIndex` — the paper's proposal: itemized
  ``label:count`` keys over the *de-normalized* summary storage, with
  *backward pointers* straight to the annotated data tuples.
* :class:`BaselineClassifierIndex` — the straw-man: a normalized
  classifier-primitives table with a standard B-Tree on a derived
  ``label-count`` column (Figure 4(c)), requiring extra joins at query time
  and doubling storage.
"""

from repro.index.itemize import extend_count, itemize, parse_item, probe_range
from repro.index.summary_btree import SummaryBTreeIndex, IndexPointer
from repro.index.baseline import BaselineClassifierIndex

__all__ = [
    "itemize",
    "extend_count",
    "parse_item",
    "probe_range",
    "SummaryBTreeIndex",
    "IndexPointer",
    "BaselineClassifierIndex",
]
