"""End-to-end engine tests: SQL over an annotated database.

These tests exercise the full stack (parser -> binder -> optimizer ->
physical operators -> summary propagation) on scenarios lifted from the
paper: the SPJ propagation of Example 1/Figure 3, the case-study queries of
Figures 2 and 16, zoom-in, and the F/S/J/O operators.
"""

import pytest

from repro import Column, Database, PlannerOptions, ValueType
from repro.errors import BindError

SEED = [
    ("infection avian flu disease symptoms virus sick", "Disease"),
    ("outbreak parasite illness disease infected epidemic", "Disease"),
    ("wing beak feather plumage anatomy skeleton shape", "Anatomy"),
    ("wingspan weight bone anatomy measurement size", "Anatomy"),
    ("migration nesting singing foraging behavior courtship", "Behavior"),
    ("feeding eating diving flying behavior flock", "Behavior"),
    ("note comment misc general provenance", "Other"),
]

DISEASE_TEXT = "observed avian flu infection disease symptoms"
ANATOMY_TEXT = "remarkable wingspan and plumage anatomy measurements"
BEHAVIOR_TEXT = "seen foraging and nesting behavior near the reeds"


def build_db(propagate=True):
    db = Database()
    db.create_table(
        "birds",
        [
            Column("name", ValueType.TEXT),
            Column("family", ValueType.TEXT),
            Column("weight", ValueType.FLOAT),
        ],
    )
    db.create_classifier_instance(
        "ClassBird1", ["Disease", "Anatomy", "Behavior", "Other"], SEED
    )
    db.create_snippet_instance("TextSummary1", min_chars=60, max_chars=50)
    db.create_cluster_instance("SimCluster")
    db.sql("Alter Table birds Add Indexable ClassBird1")
    db.sql("Alter Table birds Add TextSummary1")
    db.sql("Alter Table birds Add SimCluster")
    return db


@pytest.fixture()
def db():
    database = build_db()
    names = [
        ("Swan Goose", "Anatidae"),
        ("Swan Mute", "Anatidae"),
        ("Heron Grey", "Ardeidae"),
        ("Eagle Bald", "Accipitridae"),
        ("Crow Common", "Corvidae"),
    ]
    for i, (name, family) in enumerate(names):
        oid = database.insert(
            "birds", {"name": name, "family": family, "weight": 1.0 + i}
        )
        for _ in range(i):  # bird i gets i disease annotations
            database.add_annotation(DISEASE_TEXT, table="birds", oid=oid)
        database.add_annotation(ANATOMY_TEXT, table="birds", oid=oid)
    database.analyze("birds")
    return database


class TestBasicSql:
    def test_select_star(self, db):
        result = db.sql("Select * From birds")
        assert len(result) == 5
        assert "birds.name" in result.columns

    def test_projection(self, db):
        result = db.sql("Select name From birds Order By name")
        assert result.column("name")[0] == "Crow Common"

    def test_data_where(self, db):
        result = db.sql("Select name From birds Where family = 'Anatidae'")
        assert len(result) == 2

    def test_like_wildcard(self, db):
        # Figure 2's Q1 pattern: name like "Swan*".
        result = db.sql("Select name From birds Where name Like 'Swan%'")
        assert sorted(result.column("name")) == ["Swan Goose", "Swan Mute"]
        result2 = db.sql("Select name From birds Where name Like 'Swan*'")
        assert len(result2) == 2

    def test_order_by_data_column(self, db):
        result = db.sql("Select name, weight From birds Order By weight Desc")
        weights = result.column("weight")
        assert weights == sorted(weights, reverse=True)

    def test_limit(self, db):
        assert len(db.sql("Select * From birds Limit 2")) == 2

    def test_group_by_count(self, db):
        result = db.sql(
            "Select family, count(*) c From birds Group By family Order By family"
        )
        rows = {r["family"]: r["c"] for r in result.rows}
        assert rows["Anatidae"] == 2
        assert rows["Corvidae"] == 1

    def test_aggregates(self, db):
        result = db.sql("Select min(weight) lo, max(weight) hi From birds")
        assert result.rows[0] == {"lo": 1.0, "hi": 5.0}

    def test_create_insert_roundtrip(self, db):
        db.sql("Create Table notes (id int, body text)")
        db.sql("Insert Into notes (id, body) Values (1, 'hello'), (2, 'world')")
        assert len(db.sql("Select * From notes")) == 2

    def test_unknown_column_rejected(self, db):
        with pytest.raises(BindError):
            db.sql("Select bogus From birds")

    def test_unknown_table_rejected(self, db):
        with pytest.raises(BindError):
            db.sql("Select * From nothere")


class TestSummarySelection:
    def test_selection_on_label_value(self, db):
        result = db.sql(
            "Select name From birds r Where "
            "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 2"
        )
        assert sorted(result.column("name")) == ["Crow Common", "Eagle Bald"]

    def test_selection_equality_zero(self, db):
        result = db.sql(
            "Select name From birds r Where "
            "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 0"
        )
        assert result.column("name") == ["Swan Goose"]

    def test_range_sugar(self, db):
        result = db.sql(
            "Select name From birds r Where "
            "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') in [1, 2]"
        )
        assert len(result) == 2

    def test_mixed_data_and_summary_predicates(self, db):
        # Figure 2 Q1: disease-related annotations on birds named Swan*.
        result = db.sql(
            "Select name From birds r Where name Like 'Swan%' And "
            "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 0"
        )
        assert result.column("name") == ["Swan Mute"]

    def test_keyword_search_single(self, db):
        result = db.sql(
            "Select name From birds r Where "
            "r.$.getSummaryObject('TextSummary1').containsSingle('wingspan', 'plumage')"
        )
        assert len(result) == 5  # every bird has the anatomy annotation

    def test_keyword_search_union_negative(self, db):
        result = db.sql(
            "Select name From birds r Where "
            "r.$.getSummaryObject('TextSummary1').containsUnion('zebra')"
        )
        assert len(result) == 0

    def test_get_size_predicate(self, db):
        result = db.sql("Select name From birds r Where r.$.getSize() = 3")
        assert len(result) == 5


class TestSummarySort:
    def test_order_by_label_value_desc(self, db):
        # Figure 16 Q1 / the motivating Q3: sort by disease count.
        result = db.sql(
            "Select name From birds r Order By "
            "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') Desc"
        )
        assert result.column("name")[0] == "Crow Common"
        assert result.column("name")[-1] == "Swan Goose"

    def test_order_by_label_value_asc(self, db):
        result = db.sql(
            "Select name From birds r Order By "
            "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease')"
        )
        assert result.column("name")[0] == "Swan Goose"

    def test_sort_then_limit(self, db):
        result = db.sql(
            "Select name From birds r Order By "
            "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') Desc "
            "Limit 1"
        )
        assert result.column("name") == ["Crow Common"]


class TestPropagation:
    def test_summaries_propagate_with_results(self, db):
        result = db.sql("Select * From birds r Where name = 'Eagle Bald'")
        display = result.summaries(0)
        assert dict(display["ClassBird1"])["Disease"] == 3
        assert dict(display["ClassBird1"])["Anatomy"] == 1
        assert "TextSummary1" in display
        assert "SimCluster" in display

    def test_propagation_off(self):
        db = build_db()
        oid = db.insert("birds", {"name": "x", "family": "f", "weight": 1.0})
        db.add_annotation(DISEASE_TEXT, table="birds", oid=oid)
        db.options.propagate = False
        result = db.sql("Select * From birds")
        assert result.summaries(0) == {}

    def test_group_by_merges_summaries(self, db):
        # Figure 2 Q2: behavior/disease counts per family group.
        result = db.sql(
            "Select family, count(*) c From birds Group By family "
            "Order By family"
        )
        anatidae = next(
            i for i, t in enumerate(result.tuples)
            if t.get("family") == "Anatidae"
        )
        merged = result.summaries(anatidae)
        # Swan Goose (0 disease) + Swan Mute (1 disease), 2 anatomy total.
        assert dict(merged["ClassBird1"])["Disease"] == 1
        assert dict(merged["ClassBird1"])["Anatomy"] == 2

    def test_post_group_summary_expression(self, db):
        result = db.sql(
            "Select family, r.$.getSummaryObject('ClassBird1')."
            "getLabelValue('Disease') d From birds r Group By family "
            "Order By family"
        )
        by_family = {t.get("family"): t.get("d") for t in result.tuples}
        assert by_family["Anatidae"] == 1
        assert by_family["Accipitridae"] == 3


class TestProjectionElimination:
    def test_cell_annotation_eliminated_when_column_dropped(self):
        db = build_db()
        oid = db.insert("birds", {"name": "b", "family": "f", "weight": 2.0})
        db.add_annotation(DISEASE_TEXT, table="birds", oid=oid,
                          columns=("weight",))
        db.add_annotation(DISEASE_TEXT, table="birds", oid=oid)  # row-level
        # Projecting name only: the weight-attached annotation's effect goes.
        result = db.sql("Select name From birds r Where name = 'b'")
        counts = dict(result.summaries(0)["ClassBird1"])
        assert counts["Disease"] == 1
        # Selecting weight keeps it.
        result2 = db.sql("Select name, weight From birds r Where name = 'b'")
        counts2 = dict(result2.summaries(0)["ClassBird1"])
        assert counts2["Disease"] == 2

    def test_star_projection_keeps_everything(self):
        db = build_db()
        oid = db.insert("birds", {"name": "b", "family": "f", "weight": 2.0})
        db.add_annotation(DISEASE_TEXT, table="birds", oid=oid,
                          columns=("weight",))
        result = db.sql("Select * From birds")
        assert dict(result.summaries(0)["ClassBird1"])["Disease"] == 1


class TestJoins:
    def make_joined_db(self):
        db = build_db()
        db.create_table(
            "synonyms",
            [Column("bird_name", ValueType.TEXT), Column("syn", ValueType.TEXT)],
        )
        db.create_index("synonyms", "bird_name")
        for i in range(3):
            oid = db.insert(
                "birds", {"name": f"b{i}", "family": "f", "weight": 1.0}
            )
            for _ in range(i + 1):
                db.add_annotation(DISEASE_TEXT, table="birds", oid=oid)
            db.insert("synonyms", {"bird_name": f"b{i}", "syn": f"alias{i}"})
        db.analyze("birds")
        db.analyze("synonyms")
        return db

    def test_data_join(self):
        db = self.make_joined_db()
        result = db.sql(
            "Select r.name, s.syn From birds r, synonyms s "
            "Where r.name = s.bird_name"
        )
        assert len(result) == 3

    def test_join_with_summary_selection(self):
        db = self.make_joined_db()
        result = db.sql(
            "Select r.name, s.syn From birds r, synonyms s "
            "Where r.name = s.bird_name And "
            "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 1"
        )
        assert sorted(t.get("r.name") for t in result.tuples) == ["b1", "b2"]

    def test_join_propagates_merged_summaries(self):
        db = self.make_joined_db()
        result = db.sql(
            "Select r.name, s.syn From birds r, synonyms s "
            "Where r.name = s.bird_name And r.name = 'b2'"
        )
        counts = dict(result.summaries(0)["ClassBird1"])
        assert counts["Disease"] == 3

    def test_summary_join_revision_style(self):
        # Figure 16 Q2: join two versions on id, keep pairs whose
        # provenance/disease counts differ.
        db = self.make_joined_db()
        result = db.sql(
            "Select v1.name, v2.name From birds v1, birds v2 "
            "Where v1.name = v2.name And "
            "v1.$.getSummaryObject('ClassBird1').getLabelValue('Disease') <> "
            "v2.$.getSummaryObject('ClassBird1').getLabelValue('Disease')"
        )
        assert len(result) == 0  # identical versions differ nowhere

    def test_summary_join_finds_differences(self):
        db = self.make_joined_db()
        # Second "revision" table with different annotation counts.
        db.create_table(
            "birds_v2",
            [Column("name", ValueType.TEXT), Column("family", ValueType.TEXT),
             Column("weight", ValueType.FLOAT)],
        )
        db.manager.link("birds_v2", "ClassBird1")
        for i in range(3):
            oid = db.insert(
                "birds_v2", {"name": f"b{i}", "family": "f", "weight": 1.0}
            )
            db.add_annotation(DISEASE_TEXT, table="birds_v2", oid=oid)
        result = db.sql(
            "Select v1.name From birds v1, birds_v2 v2 "
            "Where v1.name = v2.name And "
            "v1.$.getSummaryObject('ClassBird1').getLabelValue('Disease') <> "
            "v2.$.getSummaryObject('ClassBird1').getLabelValue('Disease')"
        )
        # b0 has 1 == 1; b1 has 2 != 1; b2 has 3 != 1.
        assert sorted(t.get("v1.name") for t in result.tuples) == ["b1", "b2"]


class TestSummaryFilter:
    def test_structural_filter_keeps_tuples(self, db):
        result = db.sql(
            "Select name From birds "
            "FILTER SUMMARIES getSummaryType() = 'Classifier'"
        )
        assert len(result) == 5
        display = result.summaries(0)
        assert set(display) == {"ClassBird1"}

    def test_filter_by_instance_name(self, db):
        result = db.sql(
            "Select name From birds "
            "FILTER SUMMARIES getSummaryName() = 'SimCluster'"
        )
        assert set(result.summaries(0)) == {"SimCluster"}

    def test_content_filter_on_size(self, db):
        result = db.sql(
            "Select name From birds FILTER SUMMARIES getSize() >= 4"
        )
        # Only the classifier has >= 4 representatives (4 labels).
        assert set(result.summaries(0)) == {"ClassBird1"}


class TestZoomIn:
    def test_zoom_by_label(self, db):
        texts = db.sql("Zoom In birds 4 ClassBird1 'Disease'")
        assert len(texts) == 3
        assert all("disease" in t for t in texts)

    def test_zoom_whole_instance(self, db):
        assert len(db.sql("Zoom In birds 4 ClassBird1")) == 4

    def test_zoom_cluster_group(self, db):
        texts = db.sql("Zoom In birds 5 SimCluster 0")
        assert texts  # largest group's raw annotations

    def test_zoom_api(self, db):
        assert db.zoom_in("birds", 2, "ClassBird1", "Anatomy") == [ANATOMY_TEXT]


class TestDistinct:
    def test_distinct_merges_summaries(self, db):
        result = db.sql("Select Distinct family From birds Where family = 'Anatidae'")
        assert len(result) == 1
        counts = dict(result.summaries(0)["ClassBird1"])
        assert counts["Anatomy"] == 2  # both swans' annotations merged


class TestExplain:
    def test_explain_shows_plans(self, db):
        report = db.explain(
            "Select name From birds r Where "
            "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 1"
        )
        assert "SummarySelect" in report.logical or "Scan" in report.logical
        assert report.estimated_cost > 0

    def test_explain_rejects_non_select(self, db):
        with pytest.raises(Exception):
            db.explain("Alter Table birds Drop ClassBird1")
