"""Quickstart: annotation summaries as first-class citizens in 60 lines.

Creates a small annotated table, links a Classifier and a Snippet summary
instance, and runs the paper's signature queries: summary-based selection,
summary-based ordering, and zoom-in back to the raw annotations.

Run with::

    python examples/quickstart.py
"""

from repro import Column, Database, ValueType

db = Database()

# 1. A user relation, exactly like any other SQL table.
db.create_table("birds", [
    Column("name", ValueType.TEXT),
    Column("family", ValueType.TEXT),
])

# 2. Summary instances: a domain expert defines HOW annotations are
#    summarized. The classifier learns from a few seed examples.
db.create_classifier_instance(
    "ClassBird1",
    labels=["Disease", "Behavior", "Other"],
    seed_examples=[
        ("avian influenza outbreak with visible symptoms", "Disease"),
        ("parasite infection reported in sick individuals", "Disease"),
        ("observed foraging and nesting behavior", "Behavior"),
        ("courtship display and migration pattern", "Behavior"),
        ("photo checklist uploaded from the county survey", "Other"),
        ("general observation note from a volunteer", "Other"),
    ],
)
db.create_snippet_instance("TextSummary1", min_chars=120, max_chars=60)

# 3. Link them to the table; INDEXABLE builds a Summary-BTree (§4).
db.sql("Alter Table birds Add Indexable ClassBird1")
db.sql("Alter Table birds Add TextSummary1")

# 4. Data + annotations.
birds = {
    "Swan Goose": [
        "avian flu outbreak observed, several sick individuals",
        "unusual mortality event, influenza suspected",
        "feeding on stonewort in the shallows",
    ],
    "Mute Swan": [
        "nesting behavior recorded near the reed bed",
        "long report: the wintering population was surveyed across the "
        "entire wetland complex and notable courtship displays were "
        "recorded on three occasions during the first week",
    ],
    "House Crow": [
        "parasite infection found during ringing",
        "roosting flock of several hundred at dusk",
    ],
}
for name, notes in birds.items():
    oid = db.insert("birds", {"name": name, "family": "various"})
    for note in notes:
        db.add_annotation(note, table="birds", oid=oid)

# 5. Summary-based selection (§3.2): birds with disease-related reports.
result = db.sql(
    "Select name From birds r Where "
    "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 0"
)
print("Birds with disease-related annotations:")
for i in range(len(result)):
    row = result.tuples[i]
    print(f"  {row.get('name')}  summaries={result.summaries(i)}")

# 6. Summary-based ordering (§3.2) — the paper's Q3.
ordered = db.sql(
    "Select name From birds r Order By "
    "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') Desc"
)
print("\nBirds ordered by disease-annotation count:")
for t in ordered.tuples:
    print(f"  {t.get('name')}")

# 7. Zoom-in (§2): from a summary back to the raw annotations behind it.
top = ordered.tuples[0]
table_name, oid = next(iter(top.provenance.values()))
print(f"\nZoom-in on {top.get('name')}'s Disease annotations:")
for text in db.zoom_in(table_name, oid, "ClassBird1", "Disease"):
    print(f"  - {text}")

# 8. EXPLAIN shows the summary-aware plan (the Summary-BTree answers the
#    predicate directly).
print("\nEXPLAIN for the selection query:")
print(db.explain(
    "Select name From birds r Where "
    "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 0"
))
