"""Summary-aware query engine.

SQL subset -> AST -> logical plan -> (optimizer) -> physical operators ->
Volcano-style execution. The engine mixes standard relational operators with
the paper's summary-based operators (Filter F, Selection S, Join J, Sort O)
in a single pipeline (§3.2), propagating and transforming summary objects per
the InsightNotes algebra (§2.2).
"""

from repro.query.parser import parse_sql
from repro.query.result import ResultSet
from repro.query.tuples import QTuple

__all__ = ["parse_sql", "ResultSet", "QTuple"]
