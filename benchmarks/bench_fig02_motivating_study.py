"""Figure 2 — the motivating usability case study (§1.1).

Paper: 20 students over 100 AKN tuples (75–380 annotations each); the
InsightNotes group answers Q1/Q2 in ≈47 s at 100% accuracy while the
Raw-Annotations group needs 21–45 minutes and reports 17–34% error
ratios; Q3 (summary-based sorting) is manual for both.  See
``repro.study`` for the human-cost model and its calibration.
"""

import pytest

from repro.bench import FigureTable
from repro.study import simulate_motivating_study
from repro.study.dataset import StudyConfig, build_study_database

CONFIG = StudyConfig(num_birds=100, scale=0.25, seed=7)


@pytest.mark.benchmark(group="fig02-motivating-study")
def test_motivating_study(benchmark, figure_writer):
    db = build_study_database(CONFIG)
    report = benchmark.pedantic(
        lambda: simulate_motivating_study(db, config=CONFIG),
        rounds=1, iterations=1,
    )

    table = figure_writer.setdefault(
        "fig02_motivating_study",
        FigureTable("Figure 2 — motivating usability study", unit="s"),
    )
    acc = figure_writer.setdefault(
        "fig02_accuracy",
        FigureTable("Figure 2 — result accuracy", unit="%"),
    )
    for r in report.results:
        if r.feasible:
            table.add(r.group, r.query, r.total_s)
            acc.add(r.group, r.query, r.accuracy * 100)
        else:
            table.note(f"{r.group} {r.query}: infeasible — {r.notes}")

    q1_gap = table.ratio("Raw-Annotations", "InsightNotes", "Q1")
    table.note(
        f"Raw-Annotations group takes {q1_gap:.0f}x longer on Q1"
        "  [paper: 47 s vs 21 min at full density]"
    )
    raw_q1 = report.result("Raw-Annotations", "Q1")
    table.note(
        f"Raw group error ratios on Q1: FP {raw_q1.false_positives:.0%}, "
        f"FN {raw_q1.false_negatives:.0%}  [paper: 17% / 25%]"
    )
    assert report.result("InsightNotes", "Q1").accuracy == 1.0
    assert not report.result("Raw-Annotations", "Q3").feasible
