"""Versioned in-memory cache over the de-normalized summary storage."""

from repro.cache.summary_cache import (
    CacheInvalidator,
    SummaryCache,
    default_cache_bytes,
)

__all__ = ["CacheInvalidator", "SummaryCache", "default_cache_bytes"]
