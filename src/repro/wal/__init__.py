"""Redo-only write-ahead logging and crash recovery (``repro.wal``).

Layers, bottom-up:

* :mod:`repro.wal.record` — CRC32-framed logical record encoding and the
  torn-tail-aware scanner;
* :mod:`repro.wal.device` — append/sync devices with explicit durability
  (in-memory with fault injection, or file-backed for the CLI);
* :mod:`repro.wal.writer` — the LSN-assigning writer the Database's
  mutating statement paths append through;
* :mod:`repro.wal.recovery` — replay of the durable tail onto a
  checkpoint image.
"""

from repro.wal.device import FileWALDevice, MemoryWALDevice
from repro.wal.record import (
    FRAME_SIZE,
    ScanResult,
    WALRecord,
    WALRecordType,
    encode_record,
    iter_records,
    scan_records,
)
from repro.wal.recovery import RecoveryReport, apply_record, replay
from repro.wal.writer import WALWriter

__all__ = [
    "FRAME_SIZE",
    "FileWALDevice",
    "MemoryWALDevice",
    "RecoveryReport",
    "ScanResult",
    "WALRecord",
    "WALRecordType",
    "WALWriter",
    "apply_record",
    "encode_record",
    "iter_records",
    "replay",
    "scan_records",
]
