"""Whole-database integrity verification.

:class:`IntegrityChecker` walks every persistent structure the engine owns
and validates the invariants that hold between them:

* **Physical** — on-disk CRC32 checksums of every protected slotted page
  (read straight from the disk manager, *not* through the buffer pool, so
  resident clean frames cannot mask on-disk corruption), and slot/free-space
  accounting inside each heap page.
* **Per-structure** — B-Tree invariants for every index (key ordering,
  uniform leaf depth, sibling links, child/separator bounds) via
  :meth:`~repro.btree.tree.BTree.structure_errors`, and record decodability
  against each table's schema.
* **Cross-structure** — OID-index ↔ heap RID bijections, secondary-index
  agreement with table contents, SummaryStorage rows ↔ data tuples,
  Summary-BTree entries (including the backward pointers of §4.1) ↔ the
  de-normalized storage, baseline normalized replicas ↔ stored classifier
  objects, and summary Elements[][] references ↔ the raw annotation store.

The result is an :class:`IntegrityReport`: a list of typed
:class:`Violation` records plus counters of what was covered. A clean
database at any scale must produce an empty list; any seeded corruption
(torn write, bit flip, truncated image, dangling pointer) must produce at
least one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.keys import decode_int, encode_int, encode_key
from repro.catalog.table import Table, unpack_rid
from repro.errors import ReproError
from repro.index.itemize import itemize
from repro.storage.heapfile import RID, HeapFile
from repro.storage.page import SlottedPage, verify_checksum
from repro.summaries.objects import ClassifierObject


@dataclass(frozen=True)
class Violation:
    """One detected integrity violation."""

    #: Which structure ("table birds", "summary index birds.C", …).
    location: str
    #: Violation class ("checksum-mismatch", "index-mismatch", …).
    kind: str
    #: Human-readable specifics.
    detail: str

    def __str__(self) -> str:
        return f"[{self.location}] {self.kind}: {self.detail}"


@dataclass
class IntegrityReport:
    """Outcome of one :meth:`IntegrityChecker.run`."""

    violations: list[Violation] = field(default_factory=list)
    pages_checked: int = 0
    heaps_checked: int = 0
    btrees_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def __str__(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        lines = [
            f"integrity: {status} "
            f"({self.pages_checked} checksummed pages, "
            f"{self.heaps_checked} heaps, {self.btrees_checked} B-Trees)"
        ]
        lines.extend(str(v) for v in self.violations)
        return "\n".join(lines)

    #: location prefix -> access-path kind (repro.resilience.health).
    _PATH_PREFIXES = (
        ("summary index ", "summary"),
        ("baseline index ", "baseline"),
        ("keyword index ", "keyword"),
        ("replica ", "replica"),
    )

    def unhealthy_paths(self) -> list[tuple[str, str, str]]:
        """Derived access paths named by violations, as
        ``(kind, table, instance)`` health-registry keys.

        Violations against heaps, tables, or the annotation store are not
        access paths and are excluded — the planner cannot route around
        the authoritative data.
        """
        paths: set[tuple[str, str, str]] = set()
        for violation in self.violations:
            for prefix, kind in self._PATH_PREFIXES:
                if violation.location.startswith(prefix):
                    name = violation.location[len(prefix):].split()[0]
                    table, _, instance = name.partition(".")
                    if instance:
                        paths.add((kind, table.lower(), instance))
                    break
        return sorted(paths)


class IntegrityChecker:
    """Runs every integrity check against one live Database."""

    def __init__(self, db):
        self.db = db
        self.report = IntegrityReport()

    def _flag(self, location: str, kind: str, detail: str) -> None:
        self.report.violations.append(Violation(location, kind, detail))

    def _guard(self, location: str, check, *args) -> None:
        """Run one check section; a crash inside it becomes a violation
        rather than aborting the whole audit (a checker that dies on the
        first corrupt structure would hide every other problem)."""
        try:
            check(*args)
        except ReproError as exc:
            self._flag(location, "check-aborted", f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # pragma: no cover - defensive
            self._flag(location, "check-crashed", f"{type(exc).__name__}: {exc}")

    # -- physical layer ------------------------------------------------------

    def _check_disk_checksums(self) -> None:
        """Verify the on-disk CRC of every checksum-protected page.

        Reads go straight to the disk manager: the buffer pool may hold a
        clean in-memory copy of a page whose on-disk image has rotted, and
        a pool read would serve the frame and mask the corruption. Pages
        that are still all zeroes on disk were never written back and carry
        no checksum yet.
        """
        guard = getattr(self.db.pool, "guard", None)
        for page_id in sorted(self.db.pool.protected_pages):
            if guard is None:
                data = self.db.disk.read_page(page_id)
            else:
                # Retried like any pool read: a transient device error must
                # not masquerade as corruption during an audit.
                data = guard.read_page(self.db.disk, page_id)
            self.report.pages_checked += 1
            if not any(data):
                continue
            if not verify_checksum(data):
                self._flag(
                    f"page {page_id}", "checksum-mismatch",
                    "stored CRC32 does not match on-disk contents",
                )

    def _check_heap(self, heap: HeapFile, location: str) -> None:
        """Slot/free-space accounting of every page + record count."""
        self.report.heaps_checked += 1
        live = 0
        for page_no in range(len(heap.page_ids)):
            page = SlottedPage(
                self.db.pool.get_page(heap.page_ids[page_no]),
                page_size=self.db.pool.disk.page_size,
            )
            for problem in page.check():
                self._flag(f"{location} page {page_no}", "page-accounting", problem)
            live += page.live_count()
        if live != len(heap):
            self._flag(
                location, "count-mismatch",
                f"pages hold {live} live records, heap counter says {len(heap)}",
            )

    def _check_btree(self, tree, location: str) -> None:
        self.report.btrees_checked += 1
        for problem in tree.structure_errors(location):
            self._flag(location, "btree-structure", problem)

    # -- heap + OID-index pairs ---------------------------------------------

    def _check_heap_index_pair(
        self, heap: HeapFile, oid_index, location: str, decode=None
    ) -> dict[int, RID]:
        """Common audit for the (heap, unique OID B-Tree) pairs used by
        tables and summary storages: structures are sound, the index maps
        OIDs onto exactly the heap's live RIDs, and every record decodes.

        Returns the oid -> RID mapping for callers' cross-structure checks.
        """
        self._check_heap(heap, location)
        self._check_btree(oid_index, f"{location} oid-index")
        indexed: dict[int, RID] = {}
        for key, value in oid_index.items():
            oid = decode_int(key)
            rid = unpack_rid(value)
            if oid in indexed:
                self._flag(
                    location, "duplicate-oid",
                    f"OID {oid} appears twice in the OID index",
                )
            indexed[oid] = rid
        heap_rids = set()
        for rid, record in heap.scan():
            heap_rids.add(rid)
            if decode is not None:
                try:
                    decode(record)
                except ReproError as exc:
                    self._flag(
                        location, "record-decode",
                        f"record at {rid} does not decode: {exc}",
                    )
        index_rids = set(indexed.values())
        for rid in sorted(index_rids - heap_rids):
            self._flag(
                location, "dangling-rid",
                f"OID index points at {rid} which holds no live record",
            )
        for rid in sorted(heap_rids - index_rids):
            self._flag(
                location, "unindexed-record",
                f"live record at {rid} has no OID-index entry",
            )
        return indexed

    # -- tables --------------------------------------------------------------

    def _check_table(self, table: Table, location: str) -> None:
        def decode(record: bytes) -> None:
            values = table._codec.decode(record)
            table.schema.validate_row(values)

        indexed = self._check_heap_index_pair(
            table.heap, table.oid_index, location, decode
        )
        if indexed and max(indexed) >= table._next_oid:
            self._flag(
                location, "oid-counter",
                f"max OID {max(indexed)} >= next_oid {table._next_oid}: "
                "future inserts would collide",
            )
        rows = dict(table.scan())
        for column, index in table.secondary_indexes.items():
            loc = f"{location} index({column})"
            self._check_btree(index, loc)
            ctype = table.schema.column(column).type
            pos = table.schema.index_of(column)
            expected = {
                (encode_key(values[pos], ctype), encode_int(oid))
                for oid, values in rows.items()
            }
            actual = set(index.items())
            for key, value in sorted(expected - actual):
                self._flag(
                    loc, "index-mismatch",
                    f"missing entry for OID {decode_int(value)}",
                )
            for key, value in sorted(actual - expected):
                self._flag(
                    loc, "index-mismatch",
                    f"stale entry for OID {decode_int(value)}",
                )

    # -- summaries -----------------------------------------------------------

    def _known_annotation_ids(self) -> set[int]:
        return {ann.ann_id for ann in self.db.manager.annotations.scan()}

    def _check_summary_storage(self, table_name: str, storage) -> None:
        location = f"summary storage {table_name}"
        self._check_heap_index_pair(
            storage.heap, storage.oid_index, location, storage._decode
        )
        known_anns = self._known_annotation_ids()
        table_oids = None
        if self.db.catalog.has_table(table_name):
            table = self.db.catalog.table(table_name)
            table_oids = {oid for oid, _ in table.scan()}
        for oid, objects in storage.scan():
            if table_oids is not None and oid not in table_oids:
                # Annotations on deleted tuples are removed through
                # SummaryManager.on_tuple_delete; a leftover row means a
                # tuple was dropped behind the manager's back.
                self._flag(
                    location, "orphan-summary-row",
                    f"summary row for OID {oid} but no such data tuple",
                )
            for obj in objects.values():
                missing = obj.all_annotation_ids() - known_anns
                for ann_id in sorted(missing):
                    self._flag(
                        location, "dangling-element",
                        f"object {obj.instance_name!r} on OID {oid} references "
                        f"annotation {ann_id} absent from the store",
                    )

    def _check_summary_index(self, table_name: str, instance: str, index) -> None:
        location = f"summary index {table_name}.{instance}"
        self._check_btree(index.tree, location)
        expected: set[tuple[bytes, bytes]] = set()
        for oid, objects in index.storage.scan():
            obj = objects.get(instance)
            if not isinstance(obj, ClassifierObject):
                continue
            try:
                pointer = index._pointer_for(oid)
            except ReproError as exc:
                # Backward pointers resolve through disk_tuple_loc(): a
                # summarized OID whose data tuple is gone is exactly the
                # dangling-backward-pointer corruption class.
                self._flag(
                    location, "dangling-backward-pointer",
                    f"cannot resolve pointer for OID {oid}: {exc}",
                )
                continue
            for label, count in obj.rep():
                expected.add(
                    (itemize(label, count, index.width).encode(), pointer)
                )
        actual = set(index.tree.items())
        for key, value in sorted(expected - actual):
            self._flag(
                location, "index-mismatch",
                f"missing entry {key.decode()!r}",
            )
        for key, value in sorted(actual - expected):
            self._flag(
                location, "index-mismatch",
                f"stale entry {key.decode()!r}",
            )

    def _check_baseline_index(self, table_name: str, instance: str, index) -> None:
        location = f"baseline index {table_name}.{instance}"
        self._check_table(index.norm, f"{location} norm-table")
        storage = self.db.manager.storage_for(table_name)
        expected: set[tuple[int, str, int, str]] = set()
        for oid, objects in storage.scan():
            obj = objects.get(instance)
            if not isinstance(obj, ClassifierObject):
                continue
            for label, count in obj.rep():
                expected.add(
                    (oid, label, count, itemize(label, count, index.width))
                )
        actual = set()
        for _, values in index.norm.scan():
            row = index.norm.schema.dict_from_row(values)
            actual.add(
                (row["data_oid"], row["label"], row["cnt"], row["derived"])
            )
        for oid, label, count, _ in sorted(expected - actual):
            self._flag(
                location, "replica-mismatch",
                f"missing normalized row ({oid}, {label!r}, {count})",
            )
        for oid, label, count, _ in sorted(actual - expected):
            self._flag(
                location, "replica-mismatch",
                f"stale normalized row ({oid}, {label!r}, {count})",
            )

    # -- entry point ---------------------------------------------------------

    def run(self) -> IntegrityReport:
        db = self.db
        self._guard("disk", self._check_disk_checksums)
        for name, table in db.catalog._tables.items():
            self._guard(f"table {name}", self._check_table, table, f"table {name}")
        self._guard(
            "annotation store", self._check_table,
            db.manager.annotations._table, "annotation store",
        )
        for table_name, storage in db.manager._storages.items():
            self._guard(
                f"summary storage {table_name}",
                self._check_summary_storage, table_name, storage,
            )
        for (table_name, instance), index in db.summary_indexes.items():
            self._guard(
                f"summary index {table_name}.{instance}",
                self._check_summary_index, table_name, instance, index,
            )
        for (table_name, instance), index in db.baseline_indexes.items():
            self._guard(
                f"baseline index {table_name}.{instance}",
                self._check_baseline_index, table_name, instance, index,
            )
        for (table_name, instance), index in db.keyword_indexes.items():
            loc = f"keyword index {table_name}.{instance}"
            self._guard(loc, self._check_btree, index.postings, f"{loc} postings")
            self._guard(loc, self._check_btree, index.reverse, f"{loc} reverse")
        for (table_name, instance), replica in db.normalized_replicas.items():
            loc = f"replica {table_name}.{instance}"
            self._guard(
                loc, self._check_table, replica.norm, f"{loc} norm-table"
            )
            self._guard(
                loc, self._check_table, replica.members, f"{loc} member-table"
            )
        return self.report
