"""ResilientQueryClient: retry-safety classification and healing.

The stub-driven tests pin the classification matrix exactly — which
failures retry, which reconnect first, and which must surface as
:class:`~repro.errors.AmbiguousStatementError` — without sockets or
timing.  The integration tests at the end prove the same client heals
over a real server.
"""

from __future__ import annotations

import pytest

from repro.catalog.schema import Column
from repro.core.database import Database
from repro.errors import (
    AmbiguousStatementError,
    ClientTimeoutError,
    ProtocolError,
    ServerError,
)
from repro.resilience import RetryPolicy
from repro.server import QueryClient, ResilientQueryClient, is_read_only
from repro.storage.record import ValueType
from tests.test_server import ServerHarness


class TestIsReadOnly:
    def test_reads(self):
        assert is_read_only("Select * From t")
        assert is_read_only("  select 1")
        assert is_read_only("EXPLAIN Select * From t")
        assert is_read_only("Zoom Summary On t")

    def test_writes_and_txns(self):
        assert not is_read_only("Insert Into t Values (1)")
        assert not is_read_only("Delete From t")
        assert not is_read_only("Update t Set v = 1")
        assert not is_read_only("BEGIN")
        assert not is_read_only("COMMIT")
        assert not is_read_only("Create Table x (v INT)")


class _StubClient:
    """Scripted QueryClient stand-in.  Each script entry is either a
    plain value (returned) or ``(exception, in_flight)`` (raised, with
    ``request_in_flight`` left at ``in_flight``)."""

    def __init__(self, script: list):
        self.script = script
        self.request_in_flight = False
        self.calls = 0
        self.closes = 0

    def close(self):
        self.closes += 1

    def _next(self):
        self.calls += 1
        outcome = self.script.pop(0)
        if isinstance(outcome, tuple):
            exc, in_flight = outcome
            self.request_in_flight = in_flight
            raise exc
        self.request_in_flight = False
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome

    def execute(self, sql, timeout=None):
        return self._next()

    def health(self):
        return self._next()


def make_client(script: list, max_attempts: int = 4,
                **retry_kwargs) -> tuple[ResilientQueryClient, _StubClient,
                                         list]:
    stub = _StubClient(script)
    sleeps: list[float] = []
    client = ResilientQueryClient(
        retry=RetryPolicy(max_attempts=max_attempts, base_delay=0.001,
                          **retry_kwargs),
        sleep=sleeps.append,
    )
    client._connect = lambda idx=0: stub  # type: ignore[method-assign]
    # _drop_connection still clears state; give it a closeable target.
    client._client = stub
    return client, stub, sleeps


def shed(kind: str = "ServerOverloadedError") -> ServerError:
    return ServerError("shed", kind)


class TestClassificationMatrix:
    def test_transport_failure_retries_read(self):
        client, stub, sleeps = make_client(
            [(ConnectionResetError("boom"), True), {"row_count": 1}])
        assert client.execute("Select * From t") == {"row_count": 1}
        assert client.retries == 1
        assert len(sleeps) == 1

    def test_transport_failure_on_write_is_ambiguous(self):
        client, stub, _ = make_client(
            [(ConnectionResetError("boom"), True), "never reached"])
        with pytest.raises(AmbiguousStatementError) as exc_info:
            client.execute("Insert Into t Values (1)")
        assert isinstance(exc_info.value.cause, ConnectionResetError)
        assert client.retries == 0
        assert stub.script == ["never reached"]  # no second attempt

    def test_transport_failure_before_send_retries_write(self):
        # in_flight False: the request never hit the wire, so even a
        # write is safe to re-offer.
        client, _, _ = make_client(
            [(ConnectionResetError("boom"), False), None])
        assert client.execute("Insert Into t Values (1)") is None
        assert client.retries == 1

    def test_client_timeout_counts_as_transport(self):
        client, _, _ = make_client(
            [(ClientTimeoutError("slow"), True), {"row_count": 1}])
        assert client.execute("Select * From t")["row_count"] == 1

    def test_overload_shed_retries_even_writes(self):
        client, stub, _ = make_client([shed(), shed(), None])
        assert client.execute("Insert Into t Values (1)") is None
        assert client.retries == 2
        # Plain sheds keep the connection: no reconnect happened.
        assert client.reconnects == 0

    def test_shutting_down_shed_reconnects_before_retry(self):
        client, stub, _ = make_client(
            [shed("ServerShuttingDownError"), None])
        assert client.execute("Insert Into t Values (1)") is None
        assert client.reconnects == 1
        assert stub.closes == 1

    def test_protocol_error_answer_reconnects_and_retries(self):
        # The server answered "your frame never decoded" and hung up:
        # the statement never executed, so even a write retries.
        client, _, _ = make_client(
            [ServerError("checksum mismatch", "ProtocolError"), None])
        assert client.execute("Insert Into t Values (1)") is None
        assert client.retries == 1
        assert client.reconnects == 1

    def test_statement_errors_never_retry(self):
        client, stub, sleeps = make_client(
            [ServerError("no such table", "BindError"), "never"])
        with pytest.raises(ServerError) as exc_info:
            client.execute("Select * From missing")
        assert exc_info.value.error_type == "BindError"
        assert client.retries == 0 and sleeps == []

    def test_budget_exhaustion_raises_last_error(self):
        client, _, _ = make_client(
            [shed(), shed(), shed(), shed()], max_attempts=3)
        with pytest.raises(ServerError) as exc_info:
            client.execute("Select * From t")
        assert exc_info.value.error_type == "ServerOverloadedError"
        assert client.retries == 3

    def test_connect_failures_always_retry(self):
        sleeps: list[float] = []
        attempts = {"n": 0}
        stub = _StubClient([{"row_count": 1}])
        client = ResilientQueryClient(
            retry=RetryPolicy(max_attempts=4, base_delay=0.001),
            sleep=sleeps.append,
        )

        def flaky_connect(idx=0):
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise ConnectionRefusedError("not up yet")
            return stub

        client._connect = flaky_connect  # type: ignore[method-assign]
        assert client.execute("Select * From t")["row_count"] == 1
        assert attempts["n"] == 3
        assert len(sleeps) == 2


class TestTransactionSafety:
    def test_txn_tracking_follows_begin_commit(self):
        client, _, _ = make_client([None, None, None, None])
        client.execute("BEGIN")
        assert client._in_txn
        client.execute("Insert Into t Values (1)")
        assert client._in_txn
        client.execute("COMMIT")
        assert not client._in_txn

    def test_shed_inside_txn_is_not_retried(self):
        client, stub, _ = make_client([None, shed(), "never"])
        client.execute("BEGIN")
        with pytest.raises(ServerError) as exc_info:
            client.execute("Insert Into t Values (1)")
        assert exc_info.value.error_type == "ServerOverloadedError"
        assert client.retries == 0

    def test_transport_failure_inside_txn_is_ambiguous_even_for_reads(self):
        client, _, _ = make_client(
            [None, (ConnectionResetError("boom"), True), "never"])
        client.execute("BEGIN")
        with pytest.raises(AmbiguousStatementError):
            client.execute("Select * From t")
        # The dead connection killed the server-side transaction.
        assert not client._in_txn

    def test_server_side_abort_clears_txn_state(self):
        client, _, _ = make_client(
            [None, ServerError("victim", "LockTimeoutError"),
             shed(), None])
        client.execute("BEGIN")
        with pytest.raises(ServerError):
            client.execute("Insert Into t Values (1)")
        assert not client._in_txn
        # Out of the txn again: sheds retry transparently once more.
        assert client.execute("Insert Into t Values (2)") is None
        assert client.retries == 1

    def test_failed_begin_does_not_enter_txn(self):
        client, _, _ = make_client(
            [ServerError("nested", "TransactionError")])
        with pytest.raises(ServerError):
            client.execute("BEGIN")
        assert not client._in_txn


class TestBackoffSchedule:
    def test_sleeps_follow_policy_delays(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.01,
                             max_delay=0.04)
        client, _, sleeps = make_client(
            [shed(), shed(), shed(), None])
        client.retry = policy
        client.execute("Select * From t")
        assert sleeps == [policy.delay(1), policy.delay(2),
                          policy.delay(3)]

    def test_no_sleep_after_final_attempt(self):
        client, _, sleeps = make_client(
            [shed(), shed()], max_attempts=2)
        with pytest.raises(ServerError):
            client.execute("Select * From t")
        # One backoff between the two attempts, none after the last.
        assert len(sleeps) == 1


class TestOverRealServer:
    @pytest.fixture()
    def harness(self):
        db = Database(buffer_pages=32)
        db.create_table("t", [Column("name", ValueType.TEXT),
                              Column("v", ValueType.INT)])
        for i in range(5):
            db.insert("t", [f"r{i}", i])
        h = ServerHarness(db, workers=2, max_connections=8)
        try:
            yield h
        finally:
            h.stop()

    def test_survives_connection_loss_between_statements(self, harness):
        client = ResilientQueryClient(
            port=harness.port,
            retry=RetryPolicy(max_attempts=4, base_delay=0.01),
        )
        assert client.execute("Select * From t")["row_count"] == 5
        # Sever the transport out from under the client.
        client._client._sock.close()
        assert client.execute("Select * From t")["row_count"] == 5
        assert client.reconnects >= 1
        client.close()

    def test_health_passthrough(self, harness):
        with ResilientQueryClient(
            port=harness.port,
            retry=RetryPolicy(max_attempts=3, base_delay=0.01),
        ) as client:
            health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2

    def test_plain_client_response_timeout_is_typed(self, harness):
        """Satellite regression: the old client's ``settimeout(None)``
        waited forever; ``response_timeout`` now bounds every read."""
        db = harness.db
        db.lock_manager.acquire_exclusive("holder", "t")
        try:
            client = QueryClient(port=harness.port, response_timeout=0.3)
            with pytest.raises(ClientTimeoutError):
                client.execute("Insert Into t Values ('x', 1)",
                               timeout=30)
            # The socket is closed after the timeout: unusable by
            # contract, never half-read.
            with pytest.raises((ProtocolError, ConnectionError, OSError)):
                client.execute("Select * From t")
            client.close()
        finally:
            db.lock_manager.release_all("holder")
