"""Background summary maintenance (ROADMAP item 5).

Synchronous maintenance reclassifies / re-clusters / re-extracts snippets
inside every annotation write — at scale that is the write-amplification
bottleneck.  This module holds the two pieces that move the expensive part
off the write path:

* :class:`PendingSummaryWork` — the durable staleness set.  The write path
  records ``(table, oid)`` here instead of touching summary objects; each
  entry remembers when it was enqueued (for the ``maint.lag_seconds``
  gauge), the storage row's freshness generation, and the table's cache
  epoch at enqueue time (the PR-4 epoch counters double as staleness
  markers).  The set pickles into the checkpoint image — minus process
  state like its lock and the monotonic timestamps — and is additionally
  rebuilt for free by WAL replay: a replayed ``ANN_ADD``/``ANN_DEL`` in an
  async-mode database re-marks its tuples pending, so a crash can delay
  maintenance work but never lose it.

* :class:`MaintenanceWorker` — the engine-owned daemon thread that drains
  the set in batches through
  :meth:`~repro.summaries.maintenance.SummaryManager.drain_pending`
  (which regenerates each stale tuple's summary objects from the raw
  annotations under the engine's commit mutex).  The worker is
  event-driven: it blocks on an Event the write path sets, with a short
  fallback heartbeat so work enqueued during a race is never stranded.
  ``Database.save()``, ``check_integrity()``, ``repair()`` and the query
  server's ``stop()`` all drain inline instead of waiting on the thread,
  so shutdown and checkpoints never depend on worker scheduling.

Freshness is surfaced, not hidden: while a tuple is pending, reads in
``deferred`` mode answer from its last-generated objects and report
``summary_status: "stale"`` (graceful degradation — never blocking);
``maint.backlog`` / ``maint.lag_seconds`` gauges and the server health
frame expose the same signal to operators.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass


@dataclass
class PendingEntry:
    """Bookkeeping for one stale ``(table, oid)``."""

    #: ``time.monotonic()`` at enqueue — basis of the staleness-lag gauge.
    enqueued_at: float
    #: the storage row's freshness generation when the tuple went stale
    #: (0 when it had no generated row yet).
    generation: int = 0
    #: the table's summary-cache epoch at enqueue time.
    epoch: int = 0


class PendingSummaryWork:
    """Thread-safe FIFO set of stale ``(table, oid)`` tuples.

    Marking an already-pending tuple is a no-op that keeps the *original*
    enqueue time: the lag gauge measures the oldest unserviced staleness,
    not the most recent write.  Iteration order is insertion order, so the
    drain loop services tuples roughly in the order they went stale.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[str, int], PendingEntry] = {}
        self._lock = threading.Lock()

    def mark(self, table: str, oid: int, generation: int = 0,
             epoch: int = 0) -> bool:
        """Record ``(table, oid)`` as stale; True when newly added."""
        key = (table.lower(), oid)
        with self._lock:
            if key in self._entries:
                return False
            self._entries[key] = PendingEntry(
                enqueued_at=time.monotonic(), generation=generation,
                epoch=epoch,
            )
            return True

    def discard(self, table: str, oid: int) -> bool:
        """Forget a pending tuple (its row was dropped with the tuple)."""
        with self._lock:
            return self._entries.pop((table.lower(), oid), None) is not None

    def pop_next(
        self, table: str | None = None
    ) -> tuple[tuple[str, int], PendingEntry] | None:
        """Claim the oldest pending tuple (optionally of one table)."""
        with self._lock:
            for key in self._entries:
                if table is None or key[0] == table:
                    return key, self._entries.pop(key)
            return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple[str, int]) -> bool:
        with self._lock:
            return key in self._entries

    def has_table(self, table: str) -> bool:
        """Any pending work for ``table``? (The coherent-mode read
        barrier's cheap pre-check.)"""
        with self._lock:
            return any(key[0] == table for key in self._entries)

    def oldest_age(self, now: float | None = None) -> float:
        """Seconds the oldest entry has been waiting (0.0 when empty)."""
        with self._lock:
            if not self._entries:
                return 0.0
            now = time.monotonic() if now is None else now
            return max(
                0.0,
                now - min(e.enqueued_at for e in self._entries.values()),
            )

    def snapshot(self) -> dict[tuple[str, int], PendingEntry]:
        """A copy of the current entries (tests and the ``\\maint`` view)."""
        with self._lock:
            return dict(self._entries)

    # -- pickling ------------------------------------------------------------

    def __getstate__(self) -> dict:
        # The lock is process state; monotonic timestamps do not survive a
        # restart either — entries re-age from load time, which only makes
        # the lag gauge conservative (it restarts at 0, never overstates).
        with self._lock:
            return {
                "entries": {
                    key: (entry.generation, entry.epoch)
                    for key, entry in self._entries.items()
                }
            }

    def __setstate__(self, state: dict) -> None:
        now = time.monotonic()
        self._entries = {
            key: PendingEntry(
                enqueued_at=now, generation=generation, epoch=epoch
            )
            for key, (generation, epoch) in state.get("entries", {}).items()
        }
        self._lock = threading.Lock()


class MaintenanceWorker:
    """The background maintenance thread of one async-mode Database.

    Owns no state of its own: every batch goes through
    ``manager.drain_pending(limit=batch_size)``, which takes the engine's
    commit mutex — the worker and foreground writers interleave at batch
    granularity, never inside one tuple's regeneration.
    """

    def __init__(self, db, batch_size: int = 32,
                 heartbeat: float = 0.2) -> None:
        self.db = db
        self.batch_size = batch_size
        #: fallback poll period: the wake Event is the primary signal, the
        #: heartbeat only catches a mark that raced a clear.
        self.heartbeat = heartbeat
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-maint", daemon=True
        )
        self._thread.start()

    def wake(self) -> None:
        """Signal that new pending work exists (called by the write path)."""
        self._wake.set()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the thread.  Does not drain — callers that need an empty
        backlog drain inline via ``manager.drain_pending()`` afterwards."""
        self._stop.set()
        self._wake.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=timeout)
        self._thread = None

    def _run(self) -> None:
        manager = self.db.manager
        metrics = self.db.metrics
        while not self._stop.is_set():
            self._wake.wait(timeout=self.heartbeat)
            self._wake.clear()
            if self._stop.is_set():
                break
            try:
                while not self._stop.is_set():
                    if manager.drain_pending(limit=self.batch_size) == 0:
                        break
                    metrics.inc("maint.worker_batches")
            except Exception:  # pragma: no cover - engine bug surfaced late
                # A failing regeneration must not kill the thread: the
                # tuple stays pending (or was consumed — the next write
                # re-marks it) and the error is visible in the counters.
                metrics.inc("maint.worker_errors")
                time.sleep(self.heartbeat)
