"""LRU buffer pool.

The buffer pool caches page bytes between the storage structures (heap
files, B-Trees) and the simulated disk. Page fetches that miss the pool cost
one disk read; evictions of dirty frames cost one disk write. Hit/miss
counters are tracked so benchmarks can report cache behaviour.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import BufferPoolError
from repro.storage.disk import DiskManager

DEFAULT_POOL_PAGES = 256


@dataclass
class _Frame:
    data: bytearray
    dirty: bool = False
    pins: int = 0


class BufferPool:
    """A fixed-capacity LRU page cache over a :class:`DiskManager`."""

    def __init__(self, disk: DiskManager, capacity: int = DEFAULT_POOL_PAGES):
        if capacity < 1:
            raise BufferPoolError("buffer pool needs at least one frame")
        self.disk = disk
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._frames: OrderedDict[int, _Frame] = OrderedDict()

    # -- page lifecycle -------------------------------------------------------

    def new_page(self) -> int:
        """Allocate a fresh page on disk and cache it; returns the page id."""
        page_id = self.disk.allocate_page()
        self._make_room()
        self._frames[page_id] = _Frame(bytearray(self.disk.page_size), dirty=True)
        return page_id

    def get_page(self, page_id: int) -> bytearray:
        """Return the cached bytes for ``page_id``, reading on a miss.

        The returned bytearray is the live frame: callers that mutate it must
        follow up with :meth:`mark_dirty`.
        """
        frame = self._frames.get(page_id)
        if frame is not None:
            self.hits += 1
            self._frames.move_to_end(page_id)
            return frame.data
        self.misses += 1
        data = self.disk.read_page(page_id)
        self._make_room()
        self._frames[page_id] = _Frame(data)
        return data

    def mark_dirty(self, page_id: int) -> None:
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"page {page_id} is not resident")
        frame.dirty = True

    def put_page(self, page_id: int, data: bytearray) -> None:
        """Replace the cached contents of ``page_id`` and mark it dirty."""
        frame = self._frames.get(page_id)
        if frame is None:
            # The page was not resident: account it like any other fault so
            # hit_rate and page-access totals stay consistent with get_page.
            self.misses += 1
            self._make_room()
            self._frames[page_id] = _Frame(data, dirty=True)
        else:
            frame.data = data
            frame.dirty = True
            self._frames.move_to_end(page_id)

    def free_page(self, page_id: int) -> None:
        """Drop ``page_id`` from the pool and deallocate it on disk.

        Freeing a pinned page would yank the frame out from under whoever
        pinned it (their bytearray would silently stop being the page), so
        that is an error, not a no-op.
        """
        frame = self._frames.get(page_id)
        if frame is not None and frame.pins > 0:
            raise BufferPoolError(
                f"page {page_id} is pinned ({frame.pins}x); cannot free"
            )
        self._frames.pop(page_id, None)
        self.disk.deallocate_page(page_id)

    # -- pinning -------------------------------------------------------------

    def pin(self, page_id: int) -> None:
        frame = self._frames.get(page_id)
        if frame is None:
            self.get_page(page_id)
            frame = self._frames[page_id]
        frame.pins += 1

    def unpin(self, page_id: int) -> None:
        frame = self._frames.get(page_id)
        if frame is None or frame.pins == 0:
            raise BufferPoolError(f"page {page_id} is not pinned")
        frame.pins -= 1

    # -- flushing ------------------------------------------------------------

    def flush_page(self, page_id: int) -> None:
        frame = self._frames.get(page_id)
        if frame is not None and frame.dirty:
            self.disk.write_page(page_id, frame.data)
            frame.dirty = False

    def flush_all(self) -> None:
        for page_id in list(self._frames):
            self.flush_page(page_id)

    def clear(self) -> None:
        """Flush everything and empty the pool (simulates a cold cache)."""
        self.flush_all()
        self._frames.clear()

    # -- internal ------------------------------------------------------------

    def _make_room(self) -> None:
        while len(self._frames) >= self.capacity:
            victim_id = None
            for page_id, frame in self._frames.items():
                if frame.pins == 0:
                    victim_id = page_id
                    break
            if victim_id is None:
                raise BufferPoolError("all frames are pinned; cannot evict")
            frame = self._frames.pop(victim_id)
            if frame.dirty:
                self.disk.write_page(victim_id, frame.data)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
