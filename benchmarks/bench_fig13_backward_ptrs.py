"""Figure 13 — effectiveness of the backward pointers.

Paper: the Summary-BTree's leaf entries point straight at the annotated
data tuples (backward pointers) instead of at the indexed summary rows.
With summary propagation required the two pointer styles tie (the
R ↔ SummaryStorage join is 1-1), but when propagation is NOT required
the backward pointers skip the SummaryStorage join entirely — up to 4×
faster.
"""

import pytest

from repro.bench import FigureTable, cached_database
from repro.bench.queries import equality_constant, sp_equality_query

CASES = {
    # (backward pointers?, propagate summaries?)
    "Backward-Propagation": (True, True),
    "Backward-NoPropagation": (True, False),
    "Conventional-Propagation": (False, True),
    "Conventional-NoPropagation": (False, False),
}


@pytest.mark.benchmark(group="fig13-backward-ptrs")
@pytest.mark.parametrize("label", list(CASES))
@pytest.mark.parametrize("density", [10, 50, 200])
def test_backward_pointers(
    benchmark, case, label, density, preset, figure_writer
):
    if density not in preset.densities:
        pytest.skip(f"density {density} not in preset {preset.name}")
    backward, propagate = CASES[label]
    db = cached_database(
        num_birds=preset.num_birds, annotations_per_tuple=density,
        indexes="summary_btree", backward_pointers=backward,
        cell_fraction=0.0,
    )
    constant = equality_constant(db, "Disease", 0.01)
    query = sp_equality_query("Disease", constant)
    db.options.propagate = propagate
    db.options.force_access = "index"
    try:
        m = case(db, lambda: db.sql(query))
    finally:
        db.options.propagate = True
        db.options.force_access = None

    table = figure_writer.setdefault(
        "fig13_backward_ptrs",
        FigureTable(
            "Figure 13 — backward vs. conventional leaf pointers", unit="ms"
        ),
    )
    table.add_measurement(label, preset.label(density), m)
    pages = figure_writer.setdefault(
        "fig13_backward_ptrs_pages",
        FigureTable(
            "Figure 13 (companion) — logical page accesses", unit="pages"
        ),
    )
    pages.add(label, preset.label(density), m.pages)
    active = [d for d in (10, 50, 200) if d in preset.densities]
    if len(table.cells) == len(CASES) * len(active):
        pages.note_ratio(
            "Conventional-NoPropagation", "Backward-NoPropagation",
            "up to 4x",
        )
        table.note_ratio(
            "Conventional-NoPropagation", "Backward-NoPropagation",
            "up to 4x",
        )
        tie = table.mean_ratio(
            "Conventional-Propagation", "Backward-Propagation"
        )
        table.note(
            f"with propagation the pointer styles are within {tie:.2f}x"
            "  [paper: almost the same cost]"
        )
