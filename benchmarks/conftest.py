"""Shared fixtures for the figure-reproduction benchmarks.

Run with::

    pytest benchmarks/ --benchmark-only

Every bench prints (and writes to ``bench_results/``) a figure-style table
matching the paper's series; pytest-benchmark's own comparison tables give
the raw timings.  ``REPRO_BENCH_SCALE`` ∈ {quick, default, full} selects
the workload scale (see ``repro.bench.presets``).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench import FigureTable, Measurement, active_preset

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture(scope="session")
def preset():
    return active_preset()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def case(benchmark):
    """Benchmark a callable via pytest-benchmark while capturing the page
    I/O delta; returns a Measurement usable in a FigureTable."""

    def run_case(db, fn, rounds: int = 3) -> Measurement:
        holder: dict = {}

        def wrapped():
            before = db.disk.stats.snapshot()
            pages_before = db.pool.hits + db.pool.misses
            out = fn()
            holder["io"] = db.disk.stats.delta(before)
            holder["pages"] = db.pool.hits + db.pool.misses - pages_before
            try:
                holder["rows"] = len(out)
            except TypeError:
                holder["rows"] = 0
            return out

        benchmark.pedantic(wrapped, rounds=rounds, iterations=1)
        return Measurement(benchmark.stats.stats.min, holder["io"],
                           holder["rows"], holder["pages"])

    return run_case


#: rendered figure tables, printed after capture ends (terminal summary).
_RENDERED: list[str] = []


@pytest.fixture(scope="module")
def figure_writer(results_dir):
    """Collects FigureTables from a bench module; when the module's
    benches finish they are written to ``bench_results/<name>.txt`` and
    queued for the terminal summary (which pytest emits uncaptured, so
    the paper-style series appear in plain benchmark runs)."""
    tables: dict[str, FigureTable] = {}
    yield tables
    for name, table in tables.items():
        text = table.render()
        _RENDERED.append(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter):
    if not _RENDERED:
        return
    terminalreporter.section("paper figure reproductions")
    for text in _RENDERED:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
