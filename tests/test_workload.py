"""Workload generator tests: determinism, density control, vocabulary
separability, and the category/snippet knobs the benchmarks rely on."""

import random

import pytest

from repro.workload.generator import (
    WorkloadConfig,
    annotation_batch,
    build_database,
    generate_annotation,
)
from repro.workload.vocab import CATEGORIES, CLASS_LABELS, SEED_EXAMPLES


class TestVocabulary:
    def test_every_label_has_a_category_pool(self):
        assert set(CLASS_LABELS) == set(CATEGORIES)

    def test_category_pools_are_disjoint_enough(self):
        # Pools may share a few generic words, but each pool must have a
        # majority of exclusive keywords for NB to separate them.
        for label, pool in CATEGORIES.items():
            others = {
                w for other, p in CATEGORIES.items() if other != label
                for w in p
            }
            exclusive = [w for w in pool if w not in others]
            assert len(exclusive) >= len(pool) * 0.8, label

    def test_seed_examples_cover_all_labels(self):
        assert {label for _, label in SEED_EXAMPLES} == set(CLASS_LABELS)


class TestGenerateAnnotation:
    def test_deterministic_for_same_seed(self):
        a = generate_annotation(random.Random(1), "Disease")
        b = generate_annotation(random.Random(1), "Disease")
        assert a == b

    def test_long_form_meets_min_chars(self):
        text = generate_annotation(random.Random(2), "Anatomy",
                                   long_form=True, min_chars=400)
        assert len(text) >= 400

    def test_contains_category_keywords(self):
        text = generate_annotation(random.Random(3), "Disease")
        assert any(kw in text.lower() for kw in CATEGORIES["Disease"])


class TestAnnotationBatch:
    def test_batch_size(self):
        config = WorkloadConfig()
        batch = annotation_batch(random.Random(4), 7, config, 12)
        assert len(batch) == 12

    def test_targets_point_at_requested_tuple(self):
        config = WorkloadConfig()
        batch = annotation_batch(random.Random(4), 7, config, 5,
                                 table="other")
        for _text, targets in batch:
            assert targets[0].table == "other"
            assert targets[0].oid == 7

    def test_cell_fraction_zero_means_row_level(self):
        config = WorkloadConfig(cell_fraction=0.0)
        batch = annotation_batch(random.Random(4), 1, config, 50)
        assert all(targets[0].columns == () for _t, targets in batch)

    def test_cell_fraction_one_means_cell_level(self):
        config = WorkloadConfig(cell_fraction=1.0)
        batch = annotation_batch(random.Random(4), 1, config, 20)
        assert all(len(targets[0].columns) == 1 for _t, targets in batch)


class TestBuildDatabase:
    @pytest.fixture(scope="class")
    def db(self):
        return build_database(WorkloadConfig(
            num_birds=12, annotations_per_tuple=8, synonyms_per_bird=2,
            seed=9, indexes="both",
        ))

    def test_row_counts(self, db):
        assert db.sql("Select count(*) n From birds").scalar() == 12
        assert db.sql("Select count(*) n From synonyms").scalar() == 24

    def test_annotation_total(self, db):
        assert len(db.manager.annotations) == 12 * 8

    def test_every_bird_summarized(self, db):
        storage = db.manager.storage_for("birds")
        assert len(storage) == 12

    def test_indexes_built(self, db):
        assert ("birds", "ClassBird1") in db.summary_indexes
        assert ("birds", "ClassBird1") in db.baseline_indexes

    def test_statistics_analyzed(self, db):
        stats = db.statistics.table_stats("birds")
        assert stats.row_count == 12
        assert "ClassBird1" in stats.instances

    def test_deterministic_rebuild(self):
        config = WorkloadConfig(num_birds=5, annotations_per_tuple=4, seed=21)
        a, b = build_database(config), build_database(config)
        rows_a = a.sql("Select * From birds Order By aou_id").rows
        rows_b = b.sql("Select * From birds Order By aou_id").rows
        assert rows_a == rows_b
        for oid in range(1, 6):  # OIDs start at 1
            sa = a.manager.summary_set_for("birds", oid).get_summary_object(
                "ClassBird1")
            sb = b.manager.summary_set_for("birds", oid).get_summary_object(
                "ClassBird1")
            assert sa.rep() == sb.rep()

    def test_cluster_instance_optional(self):
        db = build_database(WorkloadConfig(
            num_birds=3, annotations_per_tuple=5, with_cluster_instance=True,
            indexes="none",
        ))
        sset = db.manager.summary_set_for("birds", 1)  # OIDs start at 1
        assert sset.get_summary_object("SimCluster") is not None

    def test_no_indexes_mode(self):
        db = build_database(WorkloadConfig(
            num_birds=3, annotations_per_tuple=4, indexes="none",
        ))
        assert not db.summary_indexes
        assert not db.baseline_indexes
