"""Thin synchronous client for the query server.

:class:`QueryClient` speaks the length-prefixed JSON protocol over a
blocking socket — one statement in flight at a time, which is exactly
the shape benchmark workers and tests want.  Error responses surface as
:class:`~repro.errors.ServerError` carrying the server-side exception
class name in ``error_type``, so a caller can tell a lock timeout from
a parse error without string-matching messages.
"""

from __future__ import annotations

import socket

from repro.errors import ProtocolError, ServerError
from repro.server.protocol import (
    LENGTH,
    MAX_FRAME,
    decode_length,
    decode_payload,
    encode_frame,
)


class QueryClient:
    """Blocking one-statement-at-a-time client; usable as a context
    manager (``with QueryClient(host, port) as c: c.execute(...)``)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 connect_timeout: float = 5.0,
                 max_frame: int = MAX_FRAME):
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self._sock = socket.create_connection(
            (host, port), timeout=connect_timeout
        )
        # Statements may legitimately run long (lock waits, big scans);
        # the per-connect timeout must not kill the response read.
        self._sock.settimeout(None)

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    # -- protocol -------------------------------------------------------------

    def execute(self, sql: str, timeout: float | None = None):
        """Run one statement; returns the JSON-shaped result value or
        raises :class:`ServerError` mirroring the server-side failure."""
        request: dict = {"sql": sql}
        if timeout is not None:
            request["timeout"] = timeout
        self.send_raw(encode_frame(request, self.max_frame))
        response = self.recv_response()
        if response.get("ok"):
            return response.get("result")
        raise ServerError(
            response.get("error", "unknown server error"),
            response.get("error_type", "ServerError"),
        )

    def send_raw(self, data: bytes) -> None:
        """Send pre-encoded bytes verbatim (tests use this to send
        deliberately malformed frames)."""
        self._sock.sendall(data)

    def recv_response(self) -> dict:
        """Read one response frame off the socket."""
        header = self._recv_exactly(LENGTH.size)
        length = decode_length(header, self.max_frame)
        return decode_payload(self._recv_exactly(length))

    def _recv_exactly(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            data = self._sock.recv(min(remaining, 65536))
            if not data:
                raise ProtocolError(
                    f"server closed the connection mid-frame "
                    f"({n - remaining} of {n} bytes read)"
                )
            chunks.append(data)
            remaining -= len(data)
        return b"".join(chunks)
