"""Fault schedules.

A :class:`FaultPlan` maps (operation kind, operation index) to a
:class:`Fault`. Indexes are 0-based and counted per operation kind by the
:class:`~repro.faults.disk.FaultyDiskManager` — "fail the 3rd write" is
``plan.fail_write(at=2)``. A fault may recur with a ``period`` (fire at
``at``, ``at + period``, ``at + 2*period``, …), which is how the
fuzz-under-fault suites sprinkle transient errors through a query's reads.

Everything random (torn-write lengths, bit-flip positions) comes from one
``random.Random(seed)``, so a failing schedule is reproducible from its
seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import StorageError


class FaultKind:
    """The four injected fault classes."""

    #: The operation fails and the disk is dead from then on (crash).
    FAIL_STOP = "fail_stop"
    #: The operation fails once; the disk stays usable (retryable).
    TRANSIENT = "transient"
    #: Only a prefix of the page reaches disk; the rest keeps its old bytes.
    TORN_WRITE = "torn_write"
    #: One or more bits of the page are silently inverted.
    BIT_FLIP = "bit_flip"

    ALL = (FAIL_STOP, TRANSIENT, TORN_WRITE, BIT_FLIP)


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    ``op`` is ``"read"`` or ``"write"``; ``at`` is the 0-based operation
    index at which the fault fires; a non-None ``period`` makes it recur
    every ``period`` operations after ``at``.
    """

    kind: str
    op: str
    at: int
    period: int | None = None
    #: Torn writes: bytes of the new image that reach disk (None = seeded).
    torn_bytes: int | None = None
    #: Bit flips: number of bits to invert (positions are seeded).
    bits: int = 1
    #: Torn writes: whether the disk fail-stops after the partial write
    #: (crash semantics). False models silent firmware-level tearing.
    crash: bool = True

    def __post_init__(self) -> None:
        if self.kind not in FaultKind.ALL:
            raise StorageError(f"unknown fault kind {self.kind!r}")
        if self.op not in ("read", "write"):
            raise StorageError(f"fault op must be 'read' or 'write', not {self.op!r}")
        if self.kind == FaultKind.TORN_WRITE and self.op != "write":
            raise StorageError("torn faults apply to writes only")
        if self.at < 0 or (self.period is not None and self.period < 1):
            raise StorageError(f"bad fault schedule: at={self.at} period={self.period}")

    def fires_at(self, index: int) -> bool:
        if index == self.at:
            return True
        if self.period is None:
            return False
        return index > self.at and (index - self.at) % self.period == 0


class FaultPlan:
    """A deterministic, seeded schedule of disk faults."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)
        self.faults: list[Fault] = []

    def schedule(self, fault: Fault) -> "FaultPlan":
        self.faults.append(fault)
        return self

    # -- builder shorthands (all chainable) ---------------------------------

    def fail_read(self, at: int) -> "FaultPlan":
        """Fail-stop on the ``at``-th read (0-based)."""
        return self.schedule(Fault(FaultKind.FAIL_STOP, "read", at))

    def fail_write(self, at: int) -> "FaultPlan":
        """Fail-stop on the ``at``-th write (0-based)."""
        return self.schedule(Fault(FaultKind.FAIL_STOP, "write", at))

    def transient_read(self, at: int, period: int | None = None) -> "FaultPlan":
        """Transient error on the ``at``-th read, recurring every ``period``."""
        return self.schedule(Fault(FaultKind.TRANSIENT, "read", at, period))

    def transient_write(self, at: int, period: int | None = None) -> "FaultPlan":
        return self.schedule(Fault(FaultKind.TRANSIENT, "write", at, period))

    def torn_write(
        self, at: int, torn_bytes: int | None = None, crash: bool = True
    ) -> "FaultPlan":
        """Tear the ``at``-th write: only a prefix of the page lands."""
        return self.schedule(
            Fault(FaultKind.TORN_WRITE, "write", at, torn_bytes=torn_bytes,
                  crash=crash)
        )

    def bit_flip_write(self, at: int, bits: int = 1) -> "FaultPlan":
        """Silently invert ``bits`` seeded bit positions of the ``at``-th write."""
        return self.schedule(Fault(FaultKind.BIT_FLIP, "write", at, bits=bits))

    def bit_flip_read(self, at: int, bits: int = 1) -> "FaultPlan":
        """Corrupt the copy returned by the ``at``-th read (transient rot)."""
        return self.schedule(Fault(FaultKind.BIT_FLIP, "read", at, bits=bits))

    # -- matching -----------------------------------------------------------

    def match(self, op: str, index: int) -> Fault | None:
        """First scheduled fault firing for the ``index``-th ``op``."""
        for fault in self.faults:
            if fault.op == op and fault.fires_at(index):
                return fault
        return None

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan(seed={self.seed}, faults={self.faults!r})"
