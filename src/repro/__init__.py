"""repro — a from-scratch reproduction of *Elevating Annotation Summaries To
First-Class Citizens In InsightNotes* (EDBT 2015).

Quickstart::

    from repro import Database, Column, ValueType

    db = Database()
    db.create_table("birds", [Column("name", ValueType.TEXT)])
    db.create_classifier_instance("ClassBird1",
                                  ["Disease", "Anatomy", "Other"],
                                  seed_examples=[...])
    db.sql("Alter Table birds Add Indexable ClassBird1")
    oid = db.insert("birds", {"name": "Swan Goose"})
    db.add_annotation("observed avian flu symptoms", table="birds", oid=oid)
    result = db.sql(
        "Select * From birds r Where "
        "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 0"
    )
"""

from repro.annotations.annotation import Annotation, AnnotationTarget
from repro.catalog.schema import Column, Schema
from repro.core.database import Database
from repro.optimizer.planner import PlannerOptions
from repro.query.result import ResultSet
from repro.summaries.hierarchy import HierarchicalClassifierInstance, LabelTree
from repro.storage.record import ValueType

__version__ = "1.0.0"

__all__ = [
    "Database",
    "PlannerOptions",
    "Column",
    "Schema",
    "ValueType",
    "Annotation",
    "AnnotationTarget",
    "ResultSet",
    "LabelTree",
    "HierarchicalClassifierInstance",
    "__version__",
]
