"""Overload behaviour — admission control keeps latency typed and flat.

The failure mode this PR exists to prevent: a server offered more work
than its worker pool can absorb either stacks unbounded queue latency
(every client suffers) or falls over.  With the bounded admission queue
the contract is different — excess statements are *shed* with a typed
``ServerOverloadedError`` within the queue deadline, and the statements
that are admitted see latency close to the uncontended baseline.

Two phases on fresh servers (1 statement worker, queue of 1):

* **uncontended** — one closed-loop client; per-statement p50 is the
  baseline.
* **overload** — 4× the worker count of closed-loop clients offering
  continuous load; every outcome must be an ok result or a typed shed.

Acceptance gates (asserted here, recorded in EXPERIMENTS.md):

* at least one statement is shed, and every shed is typed;
* shed answers arrive within the queue deadline (+ scheduling slack);
* accepted-statement p50 stays within ``LATENCY_GATE``× of the
  uncontended p50 — overload degrades *capacity*, not admitted latency.
"""

from __future__ import annotations

import asyncio
import statistics
import threading
import time

import pytest

from repro.bench import FigureTable
from repro.catalog.schema import Column
from repro.core.database import Database
from repro.errors import ServerError
from repro.server import QueryClient, QueryServer
from repro.storage.record import ValueType

#: table rows (service time must dominate scheduling noise).
ROWS = {"quick": 300, "default": 800, "full": 1600}

#: closed-loop statements per client in the overload phase.
STATEMENTS = {"quick": 80, "default": 150, "full": 250}

#: statement workers; offered load is OVERLOAD_FACTOR * workers clients.
WORKERS = 1
OVERLOAD_FACTOR = 4

QUEUE_TIMEOUT = 0.3
#: event-loop scheduling slack allowed on top of the queue deadline.
SHED_SLACK = 0.7

#: how long a client honours a shed before re-offering — the retry
#: contract (ResilientQueryClient backs off the same way); without it
#: shed clients would camp on the queue slot and admitted statements
#: would always start behind a full queue.
SHED_BACKOFF = 0.05

LATENCY_GATE = 2.0

#: full table scan server-side, but a small (rows/50) result — the
#: measured latency is the server's service + queue time, not the
#: clients' own response-decode time.
STATEMENT = "Select name, v From t r Where r.v = 7"


class _OverloadServer:
    """A fresh seeded database + overload-shaped server on a
    background event loop (the bench_concurrency harness, with the
    admission knobs exposed)."""

    def __init__(self, rows: int, **server_kwargs):
        self.db = Database(buffer_pages=256)
        self.db.create_table(
            "t", [Column("name", ValueType.TEXT),
                  Column("v", ValueType.INT)]
        )
        for i in range(rows):
            self.db.insert("t", [f"r{i}", i % 50])
        self.server = QueryServer(self.db, **server_kwargs)
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        deadline = time.monotonic() + 10
        while self.server.port == 0 and time.monotonic() < deadline:
            time.sleep(0.005)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self.loop.run_forever()

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        ).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(10)
        self.loop.close()


def _run_uncontended(rows: int, statements: int) -> list[float]:
    bench = _OverloadServer(rows, workers=WORKERS, max_connections=64)
    try:
        latencies = []
        with QueryClient(port=bench.server.port,
                         response_timeout=30) as client:
            for _ in range(statements):
                started = time.perf_counter()
                result = client.execute(STATEMENT)
                latencies.append(time.perf_counter() - started)
                assert result["row_count"] == rows // 50
        return latencies
    finally:
        bench.stop()


def _run_overload(rows: int, statements: int):
    """Returns (accepted latencies, shed latencies, stray errors)."""
    bench = _OverloadServer(
        rows, workers=WORKERS, max_connections=64,
        queue_limit=1, queue_timeout=QUEUE_TIMEOUT,
    )
    accepted: list[float] = []
    shed: list[float] = []
    strays: list[str] = []
    lock = threading.Lock()

    def client_loop():
        try:
            with QueryClient(port=bench.server.port,
                             response_timeout=30) as client:
                for _ in range(statements):
                    started = time.perf_counter()
                    try:
                        result = client.execute(STATEMENT)
                        elapsed = time.perf_counter() - started
                        with lock:
                            accepted.append(elapsed)
                        assert result["row_count"] == rows // 50
                    except ServerError as exc:
                        elapsed = time.perf_counter() - started
                        if exc.error_type != "ServerOverloadedError":
                            raise
                        with lock:
                            shed.append(elapsed)
                        time.sleep(SHED_BACKOFF)
        except Exception as exc:  # pragma: no cover - gate failure path
            with lock:
                strays.append(repr(exc))

    threads = [threading.Thread(target=client_loop, daemon=True)
               for _ in range(OVERLOAD_FACTOR * WORKERS)]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join(600)
        return accepted, shed, strays
    finally:
        bench.stop()


@pytest.mark.benchmark(group="overload")
def test_overload_sheds_typed_and_keeps_admitted_latency(
        benchmark, preset, figure_writer):
    rows = ROWS.get(preset.name, 300)
    statements = STATEMENTS.get(preset.name, 80)

    def run_all():
        base = _run_uncontended(rows, statements)
        accepted, shed_lat, strays = _run_overload(rows, statements)
        return base, accepted, shed_lat, strays

    base, accepted, shed_lat, strays = benchmark.pedantic(
        run_all, rounds=1, iterations=1)

    assert strays == [], strays
    assert accepted, "overload phase admitted nothing"
    assert shed_lat, (
        "no statement was shed at "
        f"{OVERLOAD_FACTOR}x-worker offered load"
    )
    base_p50 = statistics.median(base)
    accepted_p50 = statistics.median(accepted)
    worst_shed = max(shed_lat)
    ratio = accepted_p50 / base_p50

    table = figure_writer.setdefault(
        "overload_latency",
        FigureTable(
            "Overload shedding — admitted p50 vs uncontended, shed "
            "answer time", unit="ms",
        ),
    )
    table.add("uncontended p50", preset.name, base_p50 * 1e3)
    table.add("overload admitted p50", preset.name, accepted_p50 * 1e3)
    table.add("worst shed answer", preset.name, worst_shed * 1e3)
    table.notes.append(
        f"{preset.name}: {len(accepted)} admitted / {len(shed_lat)} "
        f"shed, admitted p50 {ratio:.2f}x uncontended"
    )

    assert worst_shed <= QUEUE_TIMEOUT + SHED_SLACK, (
        f"a shed statement waited {worst_shed * 1e3:.0f} ms for its "
        f"typed answer; the queue deadline is {QUEUE_TIMEOUT * 1e3:.0f} ms"
    )
    assert ratio <= LATENCY_GATE, (
        f"admitted p50 ({accepted_p50 * 1e3:.1f} ms) is {ratio:.2f}x "
        f"the uncontended p50 ({base_p50 * 1e3:.1f} ms); the gate is "
        f"{LATENCY_GATE}x — admission control failed to protect "
        "admitted latency"
    )
