"""Figure 14 — effectiveness of transformation Rules 2 and 5.

Paper: Example 4's query (Birds ⋈ Synonyms on a data column, summary
selection ``Disease > 5``, output sorted by the disease count).  Synonyms
does not link ClassBird1, so Rule 2 pushes the summary selection below
the join where the Summary-BTree answers it (already sorted — Rule 5
then deletes the sort).  The optimized plan wins by ≈15× across all four
join/sort configurations.
"""

import pytest

from repro.bench import FigureTable, cached_database
from repro.bench.queries import example4_query

CONFIGS = {
    "NLoop-Mem": ("nloop", "mem"),
    "NLoop-Disk": ("nloop", "disk"),
    "Index-Mem": ("index", "mem"),
    "Index-Disk": ("index", "disk"),
}
MODES = {"Optimization-Disabled": False, "Optimization-Enabled": True}


@pytest.mark.benchmark(group="fig14-rules-2-5")
@pytest.mark.parametrize("mode", list(MODES))
@pytest.mark.parametrize("config", list(CONFIGS))
def test_rules_2_and_5(benchmark, case, config, mode, preset, figure_writer):
    db = cached_database(
        num_birds=preset.num_birds, annotations_per_tuple=200,
        indexes="summary_btree", cell_fraction=0.0,
    )
    # Threshold chosen so a few percent of tuples qualify at density 200.
    from repro.bench.queries import range_bounds

    _lo, hi = range_bounds(db, "Disease", 0.95)
    query = example4_query(threshold=hi)
    join, sort = CONFIGS[config]
    db.options.force_join = join
    db.options.force_sort = sort
    db.options.enable_rules = MODES[mode]
    try:
        m = case(db, lambda: db.sql(query))
    finally:
        db.options.force_join = None
        db.options.force_sort = None
        db.options.enable_rules = True

    table = figure_writer.setdefault(
        "fig14_rules_2_5",
        FigureTable(
            "Figure 14 — Example 4 query, Rules 2 & 5 on/off "
            "(9M-equivalent density)",
            unit="ms",
        ),
    )
    table.add(mode, config, m.millis)
    if len(table.cells) == len(CONFIGS) * len(MODES):
        table.note_ratio(
            "Optimization-Disabled", "Optimization-Enabled", "about 15x"
        )
