"""Persistent raw-annotation store.

Annotations live in a system heap table (``_annotations``) with a B-Tree on
the annotation id so zoom-in queries can fetch raw texts directly from the
Elements[][] references carried by summary objects.
"""

from __future__ import annotations

import json
from typing import Iterator

from repro.annotations.annotation import Annotation, AnnotationTarget
from repro.catalog.keys import decode_int, encode_key
from repro.catalog.schema import Column, Schema
from repro.catalog.table import Table
from repro.errors import RecordNotFoundError
from repro.storage.buffer import BufferPool
from repro.storage.record import ValueType

_SCHEMA = Schema(
    [
        Column("ann_id", ValueType.INT, nullable=False),
        Column("text", ValueType.TEXT, nullable=False),
        Column("targets", ValueType.TEXT, nullable=False),  # JSON
    ]
)


def _encode_targets(targets: list[AnnotationTarget]) -> str:
    return json.dumps(
        [[t.table, t.oid, list(t.columns)] for t in targets],
        separators=(",", ":"),
    )


def _decode_targets(raw: str) -> list[AnnotationTarget]:
    return [
        AnnotationTarget(table, oid, tuple(columns))
        for table, oid, columns in json.loads(raw)
    ]


#: Bound on the raw-text cache (entries); zoom-in working sets are far
#: smaller, this just keeps a pathological session from holding every
#: annotation text ever read.
_TEXT_CACHE_MAX = 8192


class AnnotationStore:
    """CRUD over raw annotations, indexed by annotation id."""

    #: Class-level fallback so instances unpickled from older images run
    #: with an empty cache instead of crashing on the missing attribute.
    _text_cache: dict[int, str] | None = None

    def __init__(self, pool: BufferPool):
        self._table = Table("_annotations", _SCHEMA, pool)
        self._table.create_index("ann_id")
        self._next_id = 1
        self._text_cache = {}

    def _texts_cached(self) -> dict[int, str]:
        if self._text_cache is None:
            self._text_cache = {}
        return self._text_cache

    def invalidate_texts(self) -> None:
        """Drop the raw-text cache (repair rewrote the table underneath)."""
        if self._text_cache:
            self._text_cache.clear()

    def __len__(self) -> int:
        return len(self._table)

    @property
    def next_id(self) -> int:
        """The id the next create will assign (WAL records log it ahead)."""
        return self._next_id

    def create(
        self, text: str, targets: list[AnnotationTarget],
        ann_id: int | None = None,
    ) -> Annotation:
        """Persist a new annotation; assigns and returns its id.

        ``ann_id`` forces the id (WAL replay re-creating the annotation
        under its original identity); the counter advances past it.
        """
        if ann_id is None:
            ann_id = self._next_id
        annotation = Annotation(ann_id, text, list(targets))
        self._next_id = max(self._next_id, ann_id + 1)
        self._table.insert(
            {
                "ann_id": annotation.ann_id,
                "text": text,
                "targets": _encode_targets(annotation.targets),
            }
        )
        self._texts_cached().pop(ann_id, None)
        return annotation

    def get(self, ann_id: int) -> Annotation:
        """Fetch one annotation by id."""
        oids = self._table.index_lookup("ann_id", ann_id)
        if not oids:
            raise RecordNotFoundError(f"no annotation with id {ann_id}")
        row = self._table.read_dict(oids[0])
        return Annotation(row["ann_id"], row["text"], _decode_targets(row["targets"]))

    def get_many(self, ann_ids: list[int]) -> list[Annotation]:
        """Fetch annotations in the order of ``ann_ids``."""
        return [self.get(a) for a in ann_ids]

    def texts(self, ann_ids: list[int]) -> list[str]:
        """Raw texts for ``ann_ids`` (zoom-in's workhorse).

        Cache-backed and bulk-resolved: misses are fetched together — for
        dense id sets (the usual shape — one tuple's annotations were
        created consecutively) a single range pass over the ann_id index
        maps ids to table OIDs and one OID-index pass decodes just the
        text column, skipping both the per-annotation B-Tree descents and
        the targets-JSON parse that :meth:`get` pays.
        """
        if not ann_ids:
            return []
        cache = self._texts_cached()
        wanted = {a for a in ann_ids if a not in cache}
        if wanted:
            lo, hi = min(wanted), max(wanted)
            oid_of: dict[int, int] = {}
            if hi - lo + 1 <= 4 * len(wanted):
                for key, value in self._table.secondary_indexes[
                    "ann_id"
                ].range_scan(
                    encode_key(lo, ValueType.INT),
                    encode_key(hi, ValueType.INT),
                ):
                    ann_id = decode_int(key[1:])
                    if ann_id in wanted:
                        oid_of[ann_id] = decode_int(value)
            else:
                for ann_id in wanted:
                    oids = self._table.index_lookup("ann_id", ann_id)
                    if oids:
                        oid_of[ann_id] = oids[0]
            missing = wanted - oid_of.keys()
            if missing:
                raise RecordNotFoundError(
                    f"no annotation with id {min(missing)}"
                )
            texts = self._table.read_column_many(
                list(oid_of.values()), "text"
            )
            for ann_id, oid in oid_of.items():
                if oid not in texts:  # index entry without a live heap row
                    raise RecordNotFoundError(
                        f"no annotation with id {ann_id}"
                    )
                cache[ann_id] = texts[oid]
            while len(cache) > _TEXT_CACHE_MAX:
                cache.pop(next(iter(cache)))
        try:
            return [cache[a] for a in ann_ids]
        except KeyError:  # trimmed straight back out by an oversized ask
            return [
                cache[a] if a in cache else self.get(a).text
                for a in ann_ids
            ]

    def delete(self, ann_id: int) -> Annotation:
        """Remove an annotation; returns what was removed."""
        oids = self._table.index_lookup("ann_id", ann_id)
        if not oids:
            raise RecordNotFoundError(f"no annotation with id {ann_id}")
        annotation = self.get(ann_id)
        self._table.delete(oids[0])
        self._texts_cached().pop(ann_id, None)
        return annotation

    def scan(self) -> Iterator[Annotation]:
        for _, values in self._table.scan():
            row = _SCHEMA.dict_from_row(values)
            yield Annotation(
                row["ann_id"], row["text"], _decode_targets(row["targets"])
            )

    @property
    def heap_pages(self) -> int:
        return self._table.heap.num_pages
