"""Vectorized batch execution vs tuple-at-a-time (DESIGN.md §5f).

The scan-heavy NoIndex plans of Figures 10 and 11 are where the batch
executor earns its keep: column-major scans, vectorized predicate masks,
and lazy summary materialization mean filtered-out rows never build
SummaryObjects.  Each bench runs the same query in both modes on the
same cached database — pytest-benchmark times the vectorized run, a
matching best-of-N manual loop times the tuple run — and asserts the
vectorized executor is not slower (the CI smoke gate).  The recorded
speedups go to EXPERIMENTS.md.
"""

import time

import pytest

from repro.bench import FigureTable, cached_database
from repro.bench.queries import (
    equality_constant,
    range_bounds,
    sp_equality_query,
    two_predicate_query,
)

ROUNDS = 3


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.benchmark(group="batch-exec")
@pytest.mark.parametrize("figure", ["fig10", "fig11"])
def test_vectorized_not_slower_noindex(
    benchmark, figure, preset, figure_writer
):
    db = cached_database(
        num_birds=preset.num_birds,
        annotations_per_tuple=preset.spot_density,
        indexes="both", cell_fraction=0.0,
    )
    if figure == "fig10":
        constant = equality_constant(db, "Disease", 0.01)
        query = sp_equality_query("Disease", constant)
        title = "Fig-10 SP query (Disease = c)"
    else:
        lo, hi = range_bounds(db, "Anatomy", 0.05)
        query = two_predicate_query(lo, hi, "experiment", "wikipedia")
        title = "Fig-11 two-predicate query"

    db.options.index_scheme = "none"
    db.options.force_access = None
    try:
        db.batch_exec = False
        tuple_rows = len(db.sql(query))  # also warms the pool identically
        tuple_s = _best_of(lambda: db.sql(query))
        db.batch_exec = True
        batch_rows = len(db.sql(query))
        benchmark.pedantic(
            lambda: db.sql(query), rounds=ROUNDS, iterations=1
        )
        batch_s = benchmark.stats.stats.min
    finally:
        db.batch_exec = False
        db.options.index_scheme = "summary_btree"

    assert batch_rows == tuple_rows

    table = figure_writer.setdefault(
        "batch_exec_speedup",
        FigureTable(
            "Batch execution — NoIndex scan-heavy queries, both executors",
            unit="ms (best of 3)",
        ),
    )
    table.add("Tuple-at-a-time", title, tuple_s * 1000.0)
    table.add("Vectorized", title, batch_s * 1000.0)
    speedup = tuple_s / max(batch_s, 1e-9)
    table.note(f"{title}: vectorized is {speedup:.1f}x faster")
    # The CI smoke gate: batch mode must never lose to tuple mode on the
    # scan-heavy shapes it was built for (small slack for timer noise).
    assert batch_s <= tuple_s * 1.10
