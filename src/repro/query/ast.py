"""Abstract syntax tree for the SQL subset.

Expressions cover standard comparisons/boolean logic plus *summary
expressions* — chained calls rooted at an alias's ``$`` variable, e.g.::

    r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 5
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Expr:
    """Base class of all expressions."""

    def walk(self):
        """Yield self and every sub-expression (pre-order)."""
        yield self


@dataclass(frozen=True)
class Literal(Expr):
    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    """``alias.column`` or bare ``column``."""

    alias: str | None
    column: str

    def __str__(self) -> str:
        return f"{self.alias}.{self.column}" if self.alias else self.column


@dataclass(frozen=True)
class FuncCall:
    """One link of a summary-expression chain."""

    name: str
    args: tuple[object, ...] = ()

    def __str__(self) -> str:
        rendered = ", ".join(
            f"'{a}'" if isinstance(a, str) else str(a) for a in self.args
        )
        return f"{self.name}({rendered})"


@dataclass(frozen=True)
class SummaryExpr(Expr):
    """A chain of calls on ``alias.$`` (the tuple's summary set)."""

    alias: str | None
    chain: tuple[FuncCall, ...]

    def __str__(self) -> str:
        root = f"{self.alias}.$" if self.alias else "$"
        return ".".join([root] + [str(c) for c in self.chain])

    @property
    def instance_name(self) -> str | None:
        """The summary instance this chain addresses, when statically known
        (a leading getSummaryObject('name') call)."""
        if self.chain and self.chain[0].name == "getSummaryObject":
            args = self.chain[0].args
            if args and isinstance(args[0], str):
                return args[0]
        return None

    @property
    def label(self) -> str | None:
        """The classifier label addressed, for getLabelValue('L') chains."""
        for call in self.chain:
            if call.name == "getLabelValue" and call.args \
                    and isinstance(call.args[0], str):
                return call.args[0]
        return None


@dataclass(frozen=True)
class Comparison(Expr):
    """``left <op> right`` with op in {=, <>, <, <=, >, >=, LIKE}."""

    op: str
    left: Expr
    right: Expr

    def walk(self):
        yield self
        yield from self.left.walk()
        yield from self.right.walk()

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Expr):
    items: tuple[Expr, ...]

    def walk(self):
        yield self
        for item in self.items:
            yield from item.walk()

    def __str__(self) -> str:
        return " AND ".join(f"({i})" for i in self.items)


@dataclass(frozen=True)
class Or(Expr):
    items: tuple[Expr, ...]

    def walk(self):
        yield self
        for item in self.items:
            yield from item.walk()

    def __str__(self) -> str:
        return " OR ".join(f"({i})" for i in self.items)


@dataclass(frozen=True)
class Not(Expr):
    item: Expr

    def walk(self):
        yield self
        yield from self.item.walk()

    def __str__(self) -> str:
        return f"NOT ({self.item})"


@dataclass(frozen=True)
class UdfCall(Expr):
    """A registered user-defined function over summary sets (§3.2):
    ``diseaseHeavy(r.$)``.  Arguments are expressions; a bare ``alias.$``
    parses as a :class:`SummaryExpr` with an empty chain and evaluates to
    the tuple's :class:`SummarySet` itself."""

    name: str
    args: tuple[Expr, ...] = ()

    def walk(self):
        yield self
        for arg in self.args:
            yield from arg.walk()

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class ObjectFunc(Expr):
    """A bare summary-object function call, e.g. ``getSummaryType()``.

    Only valid inside a ``FILTER SUMMARIES`` predicate, where it is
    evaluated once per summary object of each tuple (the F operator's
    per-object semantics, §3.2).
    """

    name: str
    args: tuple[object, ...] = ()

    def __str__(self) -> str:
        rendered = ", ".join(
            f"'{a}'" if isinstance(a, str) else str(a) for a in self.args
        )
        return f"{self.name}({rendered})"


@dataclass(frozen=True)
class AggCall(Expr):
    """Aggregate in a SELECT list: COUNT/SUM/AVG/MIN/MAX."""

    func: str
    arg: Expr | None  # None for COUNT(*)

    def walk(self):
        yield self
        if self.arg is not None:
            yield from self.arg.walk()

    def __str__(self) -> str:
        return f"{self.func}({self.arg if self.arg is not None else '*'})"


# -- statements ---------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class Star:
    """``*`` or ``alias.*`` in a projection list."""

    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str


@dataclass
class SelectStmt:
    items: list  # SelectItem | Star
    tables: list[TableRef]
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    #: HAVING predicate over the group output (aggregates allowed).
    having: Expr | None = None
    order_by: list[tuple[Expr, str]] = field(default_factory=list)  # (expr, ASC|DESC)
    limit: int | None = None
    #: FILTER SUMMARIES predicate (per summary object) — the F operator.
    summary_filter: Expr | None = None
    distinct: bool = False


@dataclass(frozen=True)
class ExplainStmt:
    """``EXPLAIN [ANALYZE] <select>``.

    Plain EXPLAIN plans without executing; ANALYZE additionally runs the
    query under a :class:`~repro.obs.profile.PlanProfiler` and reports the
    per-operator counters (rows, next() calls, wall time, page accesses,
    disk I/O) alongside the estimated plan.
    """

    query: SelectStmt
    analyze: bool = False


@dataclass(frozen=True)
class AlterTableSummary:
    """``ALTER TABLE t ADD [INDEXABLE] inst`` / ``ALTER TABLE t DROP inst``
    — the extended DDL of §4."""

    table: str
    action: str  # "add" | "drop"
    instance: str
    indexable: bool = False


@dataclass(frozen=True)
class ZoomIn:
    """``ZOOM IN <table> <oid> <instance> [<label> | <position>]`` (§2)."""

    table: str
    oid: int
    instance: str
    selector: str | int | None = None


@dataclass(frozen=True)
class CreateTableStmt:
    name: str
    columns: list[tuple[str, str]]  # (name, type keyword)


@dataclass(frozen=True)
class DeleteStmt:
    """``DELETE FROM t [alias] [WHERE pred]`` — predicates may be data- or
    summary-based (first-class summaries extend to DML)."""

    table: str
    alias: str | None = None
    where: object | None = None


@dataclass(frozen=True)
class UpdateStmt:
    """``UPDATE t [alias] SET col = expr, ... [WHERE pred]``."""

    table: str
    assignments: tuple[tuple[str, object], ...] = ()
    alias: str | None = None
    where: object | None = None


@dataclass(frozen=True)
class InsertStmt:
    table: str
    columns: list[str] | None
    rows: list[list[object]]


@dataclass(frozen=True)
class AnnotateStmt:
    """``ANNOTATE <table> <oid> [(col, ...)] '<text>'`` — attach a raw
    annotation through SQL, so server clients (and transactions) can
    annotate without the programmatic :meth:`Database.add_annotation`."""

    table: str
    oid: int
    text: str
    columns: tuple[str, ...] = ()


@dataclass(frozen=True)
class BeginStmt:
    """``BEGIN [TRANSACTION]`` — open an explicit transaction on the
    session (see ``repro.txn``)."""


@dataclass(frozen=True)
class CommitStmt:
    """``COMMIT`` — apply + durably log the session's open transaction."""


@dataclass(frozen=True)
class AbortStmt:
    """``ABORT`` / ``ROLLBACK`` — discard the open transaction."""
