"""Simulated disk manager.

The disk is a flat array of fixed-size pages held in memory. Every read and
write that crosses the disk boundary is counted in :class:`IOStats`; the
buffer pool sits above this layer, so counted I/Os correspond to buffer-pool
misses and write-backs — the same quantity a real DBMS charges in its cost
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.storage.page import PAGE_SIZE


@dataclass
class IOStats:
    """Counters for page-level disk traffic."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0

    def snapshot(self) -> "IOStats":
        """Return a copy of the current counters."""
        return IOStats(self.reads, self.writes, self.allocations)

    def delta(self, before: "IOStats") -> "IOStats":
        """Return the counter difference since ``before``."""
        return IOStats(
            self.reads - before.reads,
            self.writes - before.writes,
            self.allocations - before.allocations,
        )

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.allocations = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"IOStats(reads={self.reads}, writes={self.writes})"


@dataclass
class DiskManager:
    """A simulated disk: an append-only array of :data:`PAGE_SIZE` pages.

    Pages are addressed by integer page id. Deallocated pages are kept on a
    free list and recycled by :meth:`allocate_page`.
    """

    page_size: int = PAGE_SIZE
    stats: IOStats = field(default_factory=IOStats)
    _pages: list[bytearray | None] = field(default_factory=list)
    _free: list[int] = field(default_factory=list)

    @property
    def num_pages(self) -> int:
        """Number of currently allocated (live) pages."""
        return len(self._pages) - len(self._free)

    @property
    def bytes_used(self) -> int:
        """Total live storage in bytes."""
        return self.num_pages * self.page_size

    def allocate_page(self) -> int:
        """Allocate a zeroed page and return its page id."""
        self.stats.allocations += 1
        if self._free:
            page_id = self._free.pop()
            self._pages[page_id] = bytearray(self.page_size)
            return page_id
        self._pages.append(bytearray(self.page_size))
        return len(self._pages) - 1

    def deallocate_page(self, page_id: int) -> None:
        """Return ``page_id`` to the free list."""
        self._check(page_id)
        self._pages[page_id] = None
        self._free.append(page_id)

    def read_page(self, page_id: int) -> bytearray:
        """Read a page from disk (counted)."""
        self._check(page_id)
        self.stats.reads += 1
        page = self._pages[page_id]
        assert page is not None
        return bytearray(page)

    def write_page(self, page_id: int, data: bytes | bytearray) -> None:
        """Write a page to disk (counted)."""
        self._check(page_id)
        if len(data) != self.page_size:
            raise StorageError(
                f"page write of {len(data)} bytes; expected {self.page_size}"
            )
        self.stats.writes += 1
        self._pages[page_id] = bytearray(data)

    def _check(self, page_id: int) -> None:
        if not 0 <= page_id < len(self._pages) or self._pages[page_id] is None:
            raise StorageError(f"page {page_id} is not allocated")
