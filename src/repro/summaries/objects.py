"""Summary objects — the paper's 5-ary vector
``{ObjID, InstanceID, TupleID, Rep[], Elements[][]}`` (§2.1).

Three concrete types mirror the three summarization families:

* :class:`ClassifierObject` — ``Rep[] = [(classLabel, annotationCnt)]``
* :class:`SnippetObject`   — ``Rep[] = [(snippetValue)]``
* :class:`ClusterObject`   — ``Rep[] = [(text, groupSize)]``

Every object also records, per contributing raw annotation, which columns of
its tuple the annotation covers (``ann_targets``). That is the information
the projection operator needs to *eliminate the effect* of annotations whose
columns are projected out (§2.2, Example 1), and what the join merge needs to
avoid double counting annotations shared between the joined tuples.

Counts are always derived from the Elements sets, so dedup under merge is
automatic: merging two classifier objects with 5 common Comment annotations
yields ``|A ∪ B|``, not ``|A| + |B|`` — exactly the 22-not-27 example of
Figure 3.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import SummaryError

_obj_id_counter = itertools.count(1)


def _next_obj_id() -> int:
    return next(_obj_id_counter)


class SummaryType(Enum):
    """The three summary-type families supported by InsightNotes."""

    CLASSIFIER = "Classifier"
    SNIPPET = "Snippet"
    CLUSTER = "Cluster"


#: Column-coverage of one annotation on its tuple; () means row-level.
AnnTargets = dict[int, tuple[str, ...]]


@dataclass
class SummaryObject:
    """Base class for the three concrete summary-object types."""

    instance_name: str
    tuple_id: int
    obj_id: int = field(default_factory=_next_obj_id)
    #: ann_id -> columns covered on this tuple (empty tuple = row-level)
    ann_targets: AnnTargets = field(default_factory=dict)

    # -- interface common to all types (paper §3.1) -----------------------------

    @property
    def summary_type(self) -> SummaryType:
        raise NotImplementedError

    def get_summary_type(self) -> str:
        """O.getSummaryType() — "Classifier", "Snippet", or "Cluster"."""
        return self.summary_type.value

    def get_summary_name(self) -> str:
        """O.getSummaryName() — the summary instance name."""
        return self.instance_name

    def get_size(self) -> int:
        """O.getSize() — number of representatives in Rep[]."""
        return len(self.rep())

    def rep(self) -> list:
        """The Rep[] array (type-specific shape)."""
        raise NotImplementedError

    def elements(self) -> list[list[int]]:
        """Elements[][]: contributing annotation ids per representative."""
        raise NotImplementedError

    def all_annotation_ids(self) -> set[int]:
        """Every raw annotation contributing to this object."""
        return set(self.ann_targets)

    # -- algebra hooks -----------------------------------------------------------

    def copy(self) -> "SummaryObject":
        """Deep copy; operators mutate propagated objects, never the stored
        originals."""
        raise NotImplementedError

    def remove_annotations(self, ann_ids: set[int]) -> None:
        """Eliminate the effect of ``ann_ids`` (projection semantics)."""
        raise NotImplementedError

    def merge(self, other: "SummaryObject") -> None:
        """Fold ``other`` (same instance, different tuple) into this object,
        deduplicating annotations present on both sides."""
        raise NotImplementedError

    def project_to_columns(self, retained: set[str]) -> None:
        """Apply projection: drop the effect of annotations attached only to
        columns outside ``retained``."""
        doomed = {
            ann_id
            for ann_id, columns in self.ann_targets.items()
            if columns and not any(c in retained for c in columns)
        }
        if doomed:
            self.remove_annotations(doomed)

    def _merge_targets(self, other: "SummaryObject") -> None:
        for ann_id, columns in other.ann_targets.items():
            if ann_id in self.ann_targets:
                mine = self.ann_targets[ann_id]
                if not mine or not columns:
                    self.ann_targets[ann_id] = ()
                else:
                    self.ann_targets[ann_id] = tuple(
                        sorted(set(mine) | set(columns))
                    )
            else:
                self.ann_targets[ann_id] = columns

    # -- serialization -------------------------------------------------------------

    def to_dict(self) -> dict:
        raise NotImplementedError

    @staticmethod
    def from_dict(data: dict) -> "SummaryObject":
        stype = SummaryType(data["type"])
        cls = {
            SummaryType.CLASSIFIER: ClassifierObject,
            SummaryType.SNIPPET: SnippetObject,
            SummaryType.CLUSTER: ClusterObject,
        }[stype]
        return cls._from_dict(data)

    def to_bytes(self) -> bytes:
        return json.dumps(self.to_dict(), separators=(",", ":")).encode("utf-8")

    @staticmethod
    def from_bytes(data: bytes) -> "SummaryObject":
        return SummaryObject.from_dict(json.loads(data.decode("utf-8")))

    def _base_dict(self) -> dict:
        return {
            "type": self.summary_type.value,
            "instance": self.instance_name,
            "tuple_id": self.tuple_id,
            "obj_id": self.obj_id,
            "ann_targets": {str(k): list(v) for k, v in self.ann_targets.items()},
        }

    @staticmethod
    def _decode_targets(data: dict) -> AnnTargets:
        return {int(k): tuple(v) for k, v in data["ann_targets"].items()}


# ---------------------------------------------------------------------------
# Classifier
# ---------------------------------------------------------------------------


@dataclass
class ClassifierObject(SummaryObject):
    """Counts of annotations per user-defined class label.

    ``label_elements`` maps each label (in the order declared at instance
    creation) to the set of annotation ids classified under it; the Rep[]
    counts are the sizes of those sets.
    """

    labels: list[str] = field(default_factory=list)
    label_elements: dict[str, set[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for label in self.labels:
            self.label_elements.setdefault(label, set())

    @property
    def summary_type(self) -> SummaryType:
        return SummaryType.CLASSIFIER

    def rep(self) -> list[tuple[str, int]]:
        """[(classLabel, annotationCnt)] in declared label order."""
        return [(label, len(self.label_elements[label])) for label in self.labels]

    def elements(self) -> list[list[int]]:
        return [sorted(self.label_elements[label]) for label in self.labels]

    # -- §3.1 Classifier functions --------------------------------------------

    def get_label_name(self, i: int) -> str:
        """O.getLabelName(i) — class label at position ``i``."""
        if not 0 <= i < len(self.labels):
            raise SummaryError(f"label position {i} out of range")
        return self.labels[i]

    def get_label_value(self, key: int | str) -> int:
        """O.getLabelValue(i | label) — the annotationCnt for that label."""
        if isinstance(key, int):
            return len(self.label_elements[self.get_label_name(key)])
        if key not in self.label_elements:
            raise SummaryError(
                f"classifier {self.instance_name!r} has no label {key!r}"
            )
        return len(self.label_elements[key])

    def label_of(self, ann_id: int) -> str | None:
        for label, members in self.label_elements.items():
            if ann_id in members:
                return label
        return None

    # -- maintenance -------------------------------------------------------------

    def add_annotation(self, ann_id: int, label: str,
                       columns: tuple[str, ...]) -> None:
        if label not in self.label_elements:
            raise SummaryError(f"unknown label {label!r}")
        self.label_elements[label].add(ann_id)
        self.ann_targets[ann_id] = columns

    # -- algebra -------------------------------------------------------------------

    def copy(self) -> "ClassifierObject":
        return ClassifierObject(
            instance_name=self.instance_name,
            tuple_id=self.tuple_id,
            ann_targets=dict(self.ann_targets),
            labels=list(self.labels),
            label_elements={l: set(s) for l, s in self.label_elements.items()},
        )

    def remove_annotations(self, ann_ids: set[int]) -> None:
        for members in self.label_elements.values():
            members -= ann_ids
        for ann_id in ann_ids:
            self.ann_targets.pop(ann_id, None)

    def merge(self, other: "SummaryObject") -> None:
        if not isinstance(other, ClassifierObject):
            raise SummaryError("cannot merge classifier with non-classifier")
        for label, members in other.label_elements.items():
            self.label_elements.setdefault(label, set()).update(members)
            if label not in self.labels:
                self.labels.append(label)
        self._merge_targets(other)

    def to_dict(self) -> dict:
        data = self._base_dict()
        data["labels"] = self.labels
        data["label_elements"] = {
            l: sorted(s) for l, s in self.label_elements.items()
        }
        return data

    @classmethod
    def _from_dict(cls, data: dict) -> "ClassifierObject":
        return cls(
            instance_name=data["instance"],
            tuple_id=data["tuple_id"],
            obj_id=data["obj_id"],
            ann_targets=cls._decode_targets(data),
            labels=list(data["labels"]),
            label_elements={l: set(v) for l, v in data["label_elements"].items()},
        )


# ---------------------------------------------------------------------------
# Snippet
# ---------------------------------------------------------------------------


@dataclass
class SnippetObject(SummaryObject):
    """Short snippets standing in for large annotations.

    ``snippets`` maps annotation id -> extracted snippet text (only
    annotations longer than the instance threshold get one); ``ann_targets``
    tracks *every* annotation of the tuple so keyword search over "the raw
    annotations" (§3.1 containsSingle/containsUnion) knows the full universe.
    """

    snippets: dict[int, str] = field(default_factory=dict)

    @property
    def summary_type(self) -> SummaryType:
        return SummaryType.SNIPPET

    def rep(self) -> list[str]:
        """[(snippetValue)] — snippet texts ordered by annotation id."""
        return [self.snippets[a] for a in sorted(self.snippets)]

    def elements(self) -> list[list[int]]:
        return [[a] for a in sorted(self.snippets)]

    # -- §3.1 Snippet functions ------------------------------------------------

    def get_snippet(self, i: int) -> str:
        """O.getSnippet(i) — snippet value at position ``i``."""
        reps = self.rep()
        if not 0 <= i < len(reps):
            raise SummaryError(f"snippet position {i} out of range")
        return reps[i]

    def contains_single(self, keywords: list[str],
                        raw_texts: list[str] | None = None) -> bool:
        """True when ALL keywords occur within any ONE snippet (or one raw
        annotation, when ``raw_texts`` are supplied by the executor)."""
        lowered = [kw.lower() for kw in keywords]
        universe = list(self.snippets.values()) + list(raw_texts or [])
        return any(
            all(kw in text.lower() for kw in lowered) for text in universe
        )

    def contains_union(self, keywords: list[str],
                       raw_texts: list[str] | None = None) -> bool:
        """True when all keywords occur within the UNION of snippets/raws —
        keywords may span multiple annotations of the same tuple."""
        universe = " \n ".join(
            list(self.snippets.values()) + list(raw_texts or [])
        ).lower()
        return all(kw.lower() in universe for kw in keywords)

    # -- maintenance --------------------------------------------------------------

    def add_annotation(self, ann_id: int, columns: tuple[str, ...],
                       snippet: str | None) -> None:
        self.ann_targets[ann_id] = columns
        if snippet is not None:
            self.snippets[ann_id] = snippet

    # -- algebra -------------------------------------------------------------------

    def copy(self) -> "SnippetObject":
        return SnippetObject(
            instance_name=self.instance_name,
            tuple_id=self.tuple_id,
            ann_targets=dict(self.ann_targets),
            snippets=dict(self.snippets),
        )

    def remove_annotations(self, ann_ids: set[int]) -> None:
        for ann_id in ann_ids:
            self.snippets.pop(ann_id, None)
            self.ann_targets.pop(ann_id, None)

    def merge(self, other: "SummaryObject") -> None:
        if not isinstance(other, SnippetObject):
            raise SummaryError("cannot merge snippet with non-snippet")
        self.snippets.update(other.snippets)
        self._merge_targets(other)

    def to_dict(self) -> dict:
        data = self._base_dict()
        data["snippets"] = {str(k): v for k, v in self.snippets.items()}
        return data

    @classmethod
    def _from_dict(cls, data: dict) -> "SnippetObject":
        return cls(
            instance_name=data["instance"],
            tuple_id=data["tuple_id"],
            obj_id=data["obj_id"],
            ann_targets=cls._decode_targets(data),
            snippets={int(k): v for k, v in data["snippets"].items()},
        )


# ---------------------------------------------------------------------------
# Cluster
# ---------------------------------------------------------------------------


@dataclass
class ClusterGroup:
    """One group of similar annotations inside a Cluster summary object."""

    rep_ann_id: int
    members: set[int]
    #: member id -> short excerpt, kept so a replacement representative can
    #: be elected at query time when the current one is projected away
    #: (Figure 3: A5 replaces the dropped A2).
    excerpts: dict[int, str]

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def rep_text(self) -> str:
        return self.excerpts.get(self.rep_ann_id, "")

    def reelect(self) -> None:
        """Pick a deterministic replacement representative."""
        if self.rep_ann_id not in self.members and self.members:
            self.rep_ann_id = min(self.members)

    def copy(self) -> "ClusterGroup":
        return ClusterGroup(self.rep_ann_id, set(self.members), dict(self.excerpts))


@dataclass
class ClusterObject(SummaryObject):
    """Groups of similar annotations, one representative per group."""

    groups: list[ClusterGroup] = field(default_factory=list)

    @property
    def summary_type(self) -> SummaryType:
        return SummaryType.CLUSTER

    def rep(self) -> list[tuple[str, int]]:
        """[(representative text, groupSize)] — largest groups first."""
        ordered = sorted(self.groups, key=lambda g: (-g.size, g.rep_ann_id))
        return [(g.rep_text, g.size) for g in ordered]

    def elements(self) -> list[list[int]]:
        ordered = sorted(self.groups, key=lambda g: (-g.size, g.rep_ann_id))
        return [sorted(g.members) for g in ordered]

    def get_group_size(self, i: int) -> int:
        """Size of the group at Rep[] position ``i``."""
        reps = self.rep()
        if not 0 <= i < len(reps):
            raise SummaryError(f"group position {i} out of range")
        return reps[i][1]

    def get_representative(self, i: int) -> str:
        """Representative text of the group at Rep[] position ``i``."""
        reps = self.rep()
        if not 0 <= i < len(reps):
            raise SummaryError(f"group position {i} out of range")
        return reps[i][0]

    def largest_group_size(self) -> int:
        return max((g.size for g in self.groups), default=0)

    # -- algebra ---------------------------------------------------------------------

    def copy(self) -> "ClusterObject":
        return ClusterObject(
            instance_name=self.instance_name,
            tuple_id=self.tuple_id,
            ann_targets=dict(self.ann_targets),
            groups=[g.copy() for g in self.groups],
        )

    def remove_annotations(self, ann_ids: set[int]) -> None:
        survivors = []
        for group in self.groups:
            group.members -= ann_ids
            for ann_id in ann_ids:
                group.excerpts.pop(ann_id, None)
            if group.members:
                group.reelect()
                survivors.append(group)
        self.groups = survivors
        for ann_id in ann_ids:
            self.ann_targets.pop(ann_id, None)

    def merge(self, other: "SummaryObject") -> None:
        """Combine overlapping groups; non-overlapping groups propagate
        separately (§2.2 Example 1)."""
        if not isinstance(other, ClusterObject):
            raise SummaryError("cannot merge cluster with non-cluster")
        merged: list[ClusterGroup] = [g.copy() for g in self.groups]
        for incoming in other.groups:
            incoming = incoming.copy()
            # Keep folding until the incoming group overlaps nothing.
            while True:
                overlap = next(
                    (g for g in merged if g.members & incoming.members), None
                )
                if overlap is None:
                    break
                merged.remove(overlap)
                # Larger side keeps its representative (deterministic).
                if (overlap.size, -overlap.rep_ann_id) >= (
                    incoming.size,
                    -incoming.rep_ann_id,
                ):
                    keeper_rep = overlap.rep_ann_id
                else:
                    keeper_rep = incoming.rep_ann_id
                incoming = ClusterGroup(
                    keeper_rep,
                    overlap.members | incoming.members,
                    {**overlap.excerpts, **incoming.excerpts},
                )
            merged.append(incoming)
        self.groups = merged
        self._merge_targets(other)

    def to_dict(self) -> dict:
        data = self._base_dict()
        data["groups"] = [
            {
                "rep": g.rep_ann_id,
                "members": sorted(g.members),
                "excerpts": {str(k): v for k, v in g.excerpts.items()},
            }
            for g in self.groups
        ]
        return data

    @classmethod
    def _from_dict(cls, data: dict) -> "ClusterObject":
        return cls(
            instance_name=data["instance"],
            tuple_id=data["tuple_id"],
            obj_id=data["obj_id"],
            ann_targets=cls._decode_targets(data),
            groups=[
                ClusterGroup(
                    g["rep"],
                    set(g["members"]),
                    {int(k): v for k, v in g["excerpts"].items()},
                )
                for g in data["groups"]
            ],
        )
