"""Interactive SQL shell: ``python -m repro``.

A small REPL over one in-process :class:`~repro.core.database.Database`,
aimed at exploring the engine:

* plain SQL statements run and print result tables,
* ``EXPLAIN [ANALYZE] <select>`` shows the logical + physical plans
  (ANALYZE also runs the query and annotates per-operator counters),
* ``\\demo`` loads the seeded Birds workload (handy first command),
* ``\\stats <table>``, ``\\instances``, ``\\tables`` inspect the catalog,
* ``\\set <option> <value>`` flips any :class:`PlannerOptions` knob
  (e.g. ``\\set enable_rules false``), and
* ``\\quit`` exits.
"""

from __future__ import annotations

import os
import sys

from repro.core.database import Database, QueryReport
from repro.errors import QueryCancelledError, QueryTimeoutError, ReproError
from repro.query.result import ResultSet

PROMPT = "insightnotes> "

_HELP = """\
Commands:
  <SQL statement>          run it (SELECT / INSERT / UPDATE / DELETE /
                           CREATE TABLE / ALTER TABLE ... / ZOOM IN ... /
                           ANNOTATE <table> <oid> 'text')
  BEGIN / COMMIT / ABORT   explicit transactions: DML between BEGIN and
                           COMMIT is buffered and atomically durable;
                           ABORT (or ROLLBACK) discards it
  EXPLAIN <select>         show the chosen logical and physical plans
  EXPLAIN ANALYZE <select> run it too; annotate actual rows/time/pages
  \\demo [birds] [apt]      load the seeded Birds workload
                           (default 50 tuples x 20 annotations)
  \\tables                  list user tables
  \\instances               list summary instances and their links
  \\stats <table>           show optimizer statistics for a table
  \\set <option> <value>    set a PlannerOptions field
  \\cache                   summary-cache statistics (hits, misses, bytes)
  \\cache clear             drop every cached summary set
  \\cache resize <bytes>    set the cache capacity (0 disables it)
  \\maint                   background-maintenance state (mode, backlog, lag)
  \\maint drain             regenerate every stale summary now
  \\check                   run the full integrity audit (checksums, heap
                           accounting, B-Tree invariants, cross-structure)
  \\repair                  self-heal: quarantine corrupt pages, rebuild
                           derived structures, re-audit for convergence
  \\timeout [secs|off]      show or set the statement deadline (Ctrl-C
                           during a statement cancels it, not the shell)
  \\help                    this text
  \\quit                    exit\
"""


def _parse_option_value(raw: str) -> object:
    lowered = raw.lower()
    if lowered in ("true", "on"):
        return True
    if lowered in ("false", "off"):
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(raw)
    except ValueError:
        return raw


def execute_line(db: Database, line: str, interruptible: bool = False) -> str:
    """One REPL interaction; returns the text to print (exposed separately
    from the input loop so it is unit-testable).

    ``interruptible`` routes the statement through :meth:`Database.execute`
    with SIGINT handling, so Ctrl-C cancels the running statement instead
    of killing the shell (only useful from the interactive main loop)."""
    line = line.strip()
    if not line:
        return ""
    if line.startswith("\\"):
        return _execute_command(db, line[1:])
    result = db.execute(line, interruptible=interruptible)
    if isinstance(result, QueryReport):
        return str(result)
    if isinstance(result, ResultSet):
        stats = result.stats
        timing = (
            f"\n({len(result)} rows, {stats['elapsed_s'] * 1e3:.1f} ms, "
            f"{stats['io_reads']} reads)"
            if stats else f"\n({len(result)} rows)"
        )
        return result.to_table() + timing
    if isinstance(result, list):  # ZOOM IN output
        return "\n".join(f"- {text}" for text in result) or "(no annotations)"
    if isinstance(result, int):  # DELETE / UPDATE row counts
        return f"{result} rows affected"
    return "ok"


def _execute_command(db: Database, command: str) -> str:
    parts = command.split()
    name, args = parts[0].lower(), parts[1:]
    if name in ("q", "quit", "exit"):
        raise EOFError
    if name == "help":
        return _HELP
    if name == "demo":
        from repro.workload.generator import WorkloadConfig, build_database

        num_birds = int(args[0]) if args else 50
        apt = int(args[1]) if len(args) > 1 else 20
        demo = build_database(WorkloadConfig(
            num_birds=num_birds, annotations_per_tuple=apt,
            cell_fraction=0.0,
        ))
        # Adopt the demo database's state wholesale.
        db.__dict__.update(demo.__dict__)
        return (
            f"loaded Birds workload: {num_birds} birds x {apt} annotations, "
            "instances ClassBird1 (indexed) + TextSummary1"
        )
    if name == "tables":
        names = db.catalog.table_names()
        return "\n".join(names) or "(no tables)"
    if name == "instances":
        lines = []
        for inst_name, instance in sorted(db.manager._instances.items()):
            tables = db.manager.tables_with_instance(inst_name)
            kind = type(instance).__name__.replace("Instance", "")
            linked = ", ".join(tables) or "unlinked"
            lines.append(f"{inst_name} ({kind}) -> {linked}")
        return "\n".join(lines) or "(no instances)"
    if name == "stats":
        if not args:
            return "usage: \\stats <table>"
        stats = db.statistics.table_stats(args[0])
        lines = [
            f"rows={stats.row_count} heap_pages={stats.heap_pages} "
            f"summary_pages={stats.summary_pages}"
        ]
        for inst_name, inst in sorted(stats.instances.items()):
            lines.append(
                f"  {inst_name}: avg_object_size={inst.avg_object_size:.0f}"
            )
            for label, ls in sorted(inst.labels.items()):
                lines.append(
                    f"    {label}: min={ls.min} max={ls.max} "
                    f"ndistinct={ls.ndistinct}"
                )
        return "\n".join(lines)
    if name == "cache":
        cache = getattr(db.manager, "cache", None)
        if cache is None:
            return "no summary cache on this database"
        if args and args[0] == "clear":
            cache.clear()
            return "cache cleared"
        if args and args[0] == "resize":
            try:
                capacity = int(args[1])
            except (IndexError, ValueError):
                return "usage: \\cache resize <bytes>"
            cache.resize(capacity)
            state = "enabled" if cache.enabled else "disabled"
            return f"cache capacity = {cache.capacity_bytes} bytes ({state})"
        if args:
            return "usage: \\cache [clear | resize <bytes>]"
        s = cache.stats()
        state = "enabled" if cache.enabled else "disabled"
        return (
            f"summary cache: {state}, "
            f"{s['used_bytes']}/{s['capacity_bytes']} bytes, "
            f"{s['entries']} entries\n"
            f"  hits={s['hits']} misses={s['misses']} "
            f"hit_rate={s['hit_rate']:.1%}\n"
            f"  stores={s['stores']} evictions={s['evictions']} "
            f"invalidations={s['invalidations']} "
            f"rejections={s['rejections']} epoch_bumps={s['epoch_bumps']}"
        )
    if name == "maint":
        if args and args[0] == "drain":
            drained = db.drain_summaries()
            return f"drained {drained} stale summaries"
        if args:
            return "usage: \\maint [drain]"
        mode = getattr(db, "summary_async", "off")
        worker = getattr(db, "_maint_worker", None)
        running = worker is not None and worker.running
        return (
            f"summary maintenance: mode={mode}, "
            f"backlog={db.manager.pending_count()}, "
            f"lag={db.manager.pending_lag_seconds():.3f}s, "
            f"worker={'running' if running else 'stopped'}"
        )
    if name == "check":
        return str(db.check_integrity())
    if name == "repair":
        return str(db.repair())
    if name == "timeout":
        if not args:
            current = db.statement_timeout
            return (
                f"statement timeout = {current}s" if current is not None
                else "statement timeout = off"
            )
        if args[0].lower() in ("off", "none", "0"):
            db.statement_timeout = None
            return "statement timeout = off"
        try:
            seconds = float(args[0])
            if seconds <= 0:
                raise ValueError
        except ValueError:
            return "usage: \\timeout [<seconds> | off]"
        db.statement_timeout = seconds
        return f"statement timeout = {seconds}s"
    if name == "set":
        if len(args) != 2:
            return "usage: \\set <option> <value>"
        option, raw = args
        if not hasattr(db.options, option):
            valid = ", ".join(sorted(vars(db.options)))
            return f"unknown option {option!r}; one of: {valid}"
        setattr(db.options, option, _parse_option_value(raw))
        return f"{option} = {getattr(db.options, option)!r}"
    return f"unknown command \\{parts[0]} (try \\help)"


def repl_step(db: Database, line: str, interruptible: bool = False) -> str:
    """One fault-isolated REPL step: whatever one statement does — parse
    error, engine error, timeout, cancellation, even an unexpected crash
    or a stray KeyboardInterrupt — is rendered as output text; only the
    explicit quit path (EOFError) escapes. The session always survives
    the statement."""
    try:
        return execute_line(db, line, interruptible=interruptible)
    except EOFError:
        raise
    except QueryTimeoutError as exc:
        partial = exc.partial
        return (
            f"timeout: {exc} "
            f"({partial.get('rows', 0)} rows produced before the deadline)"
        )
    except QueryCancelledError as exc:
        partial = exc.partial
        return f"cancelled ({partial.get('rows', 0)} rows produced)"
    except KeyboardInterrupt:
        # A Ctrl-C that raced past the statement's SIGINT handler (e.g.
        # between cancel-flag checks): treat it as a cancelled statement,
        # never as a dead shell.
        return "cancelled"
    except ReproError as exc:
        return f"error: {exc}"
    except Exception as exc:  # surface, keep the session alive
        return f"unexpected {type(exc).__name__}: {exc}"


def check_image(path: str) -> int:
    """``python -m repro check <image>``: load an image and audit it.

    Exit status: 0 when the audit is clean, 1 on integrity violations,
    2 when the image itself cannot be loaded (truncated, corrupted,
    wrong version).
    """
    from repro.errors import CorruptImageError

    try:
        db = Database.load(path)
    except (CorruptImageError, OSError) as exc:
        print(f"error: {exc}")
        return 2
    report = db.check_integrity()
    try:
        print(report)
    except BrokenPipeError:
        # Downstream pager/head closed early; swallow the flush-at-exit
        # error too. The exit status still stands.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0 if report.ok else 1


def recover_image(image: str, wal_path: str, out: str | None = None) -> int:
    """``python -m repro recover <image> <wal> [out]``: crash recovery.

    Loads the checkpoint image (pass ``-`` for a database that never
    checkpointed), replays the WAL file's durable tail onto it (torn
    tails are truncated, never replayed), audits the result, and — when a
    target path exists — checkpoints the recovered database back out
    (``out`` defaults to the image path).

    Exit status: 0 on a clean recovery, 1 when the post-replay audit
    still reports violations (``repair`` is the next step), 2 when the
    image or WAL file cannot be read at all.
    """
    from repro.errors import CorruptImageError, WALError
    from repro.wal.device import FileWALDevice

    try:
        device = FileWALDevice(wal_path)
    except (WALError, OSError) as exc:
        print(f"error: {exc}")
        return 2
    try:
        db, report = Database.recover(
            None if image == "-" else image, device
        )
    except (CorruptImageError, WALError, OSError) as exc:
        print(f"error: {exc}")
        return 2
    print(report)
    audit = db.check_integrity()
    print(audit)
    target = out if out is not None else (None if image == "-" else image)
    if target is not None:
        db.save(target)
    return 0 if audit.ok else 1


def repair_image(image: str, out: str | None = None) -> int:
    """``python -m repro repair <image> [out]``: self-healing repair.

    Loads the image, runs :meth:`Database.repair` (salvage corrupt pages,
    rebuild every derived structure from the heaps, re-audit), prints the
    repair report, and saves the repaired database (``out`` defaults to
    the image path).

    Exit status: 0 when repair converged (or the database was already
    clean), 1 when violations remain after repair, 2 when the image
    cannot be loaded.
    """
    from repro.errors import CorruptImageError

    try:
        db = Database.load(image)
    except (CorruptImageError, OSError) as exc:
        print(f"error: {exc}")
        return 2
    report = db.repair()
    print(report)
    db.save(out if out is not None else image)
    return 0 if report.converged else 1


def serve_command(args: list[str]) -> int:
    """``python -m repro serve [image] [--host H] [--port P] [--workers N]
    [--max-connections N] [--drain-timeout S] [--idle-timeout S]
    [--replicate] [--replica-of HOST:PORT] [--replica-id ID]``: run the
    asyncio query server over a fresh database or a loaded image.

    ``--replicate`` attaches a WAL (if the database has none) and serves
    the primary-side replication ops so replicas can attach.
    ``--replica-of HOST:PORT`` instead runs a read-only hot standby of
    that primary: it bootstraps from a snapshot, continuously applies
    the primary's WAL stream, and serves read-only queries; promote it
    with ``python -m repro promote HOST:PORT``.

    SIGTERM and SIGINT (Ctrl-C) trigger a graceful drain: the server
    stops accepting, in-flight statements get the drain deadline to
    finish, stragglers are cooperatively cancelled, and every session
    closes before exit — no lock or transaction survives shutdown.

    Exit status: 0 on a clean (drained) shutdown, 2 on bad arguments or
    an unloadable image.
    """
    import asyncio

    from repro.errors import CorruptImageError
    from repro.server import DEFAULT_PORT
    from repro.server.server import DEFAULT_WORKERS, serve

    usage = ("usage: python -m repro serve [image] [--host H] [--port P] "
             "[--workers N] [--max-connections N] [--drain-timeout S] "
             "[--idle-timeout S] [--replicate] "
             "[--replica-of HOST:PORT] [--replica-id ID]")
    host, port, image = "127.0.0.1", DEFAULT_PORT, None
    workers = DEFAULT_WORKERS
    server_kwargs: dict = {}
    replicate = False
    replica_of: str | None = None
    replica_id: str | None = None

    def _number(raw, cast):
        try:
            return cast(raw)
        except (TypeError, ValueError):
            return None

    it = iter(args)
    for arg in it:
        if arg == "--host":
            host = next(it, None)
        elif arg == "--replicate":
            replicate = True
        elif arg == "--replica-of":
            replica_of = next(it, None)
            if replica_of is None or ":" not in replica_of:
                print(usage)
                return 2
        elif arg == "--replica-id":
            replica_id = next(it, None)
            if not replica_id:
                print(usage)
                return 2
        elif arg == "--port":
            port = _number(next(it, None), int)
            if port is None:
                print(usage)
                return 2
        elif arg == "--workers":
            workers = _number(next(it, None), int)
            if workers is None or workers < 1:
                print(usage)
                return 2
        elif arg == "--max-connections":
            cap = _number(next(it, None), int)
            if cap is None:
                print(usage)
                return 2
            server_kwargs["max_connections"] = cap if cap > 0 else None
        elif arg == "--drain-timeout":
            value = _number(next(it, None), float)
            if value is None or value < 0:
                print(usage)
                return 2
            server_kwargs["drain_timeout"] = value
        elif arg == "--idle-timeout":
            value = _number(next(it, None), float)
            if value is None or value < 0:
                print(usage)
                return 2
            if value > 0:
                server_kwargs["idle_timeout"] = value
        elif image is None and not arg.startswith("-"):
            image = arg
        else:
            print(usage)
            return 2
    if host is None:
        print(usage)
        return 2
    if replica_of is not None:
        if image is not None or replicate:
            print(usage)
            return 2
        from repro.replication.replica import serve_replica

        primary_host, _, raw_port = replica_of.rpartition(":")
        primary_port = _number(raw_port, int)
        if not primary_host or primary_port is None:
            print(usage)
            return 2
        try:
            asyncio.run(serve_replica(
                primary_host, primary_port, host=host, port=port,
                workers=workers, replica_id=replica_id, **server_kwargs,
            ))
        except KeyboardInterrupt:
            print("\nshutting down")
        return 0
    if image is not None:
        try:
            db = Database.load(image)
        except (CorruptImageError, OSError) as exc:
            print(f"error: {exc}")
            return 2
    else:
        db = Database()
    if replicate and db.wal is None:
        # serve() installs the replication endpoint whenever a WAL is
        # attached; all --replicate must do is make sure one is.
        db.attach_wal()
    try:
        asyncio.run(serve(db, host=host, port=port, workers=workers,
                          **server_kwargs))
    except KeyboardInterrupt:
        # Signal handlers normally drain before this is reachable; a
        # second Ctrl-C mid-drain lands here.
        print("\nshutting down")
    return 0


def promote_command(args: list[str]) -> int:
    """``python -m repro promote HOST:PORT``: promote a replica to a
    writable primary (the replica stops its replication link, attaches a
    fresh WAL at its applied watermark, and starts accepting writes).

    Exit status: 0 on success, 1 when the server refused (not a replica,
    or not bootstrapped yet), 2 on bad arguments or connection failure.
    """
    from repro.errors import ServerError
    from repro.server.client import QueryClient

    usage = "usage: python -m repro promote HOST:PORT"
    if len(args) != 1 or ":" not in args[0]:
        print(usage)
        return 2
    host, _, raw_port = args[0].rpartition(":")
    try:
        port = int(raw_port)
    except ValueError:
        print(usage)
        return 2
    try:
        with QueryClient(host, port, connect_timeout=5.0,
                         response_timeout=30.0) as client:
            result = client.request({"op": "promote"})
    except OSError as exc:
        print(f"error: cannot reach {host}:{port}: {exc}")
        return 2
    except ServerError as exc:
        print(f"error: {exc}")
        return 1
    if result.get("promoted"):
        print(f"promoted: now a writable primary at LSN {result.get('lsn')}")
    else:
        print(f"already a primary (LSN {result.get('lsn')})")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point: ``repro check|recover|repair|serve …`` or the REPL."""
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "check":
        if len(argv) != 2:
            print("usage: python -m repro check <image>")
            return 2
        return check_image(argv[1])
    if argv and argv[0] == "recover":
        if len(argv) not in (3, 4):
            print("usage: python -m repro recover <image|-> <wal> [out]")
            return 2
        return recover_image(argv[1], argv[2], argv[3] if len(argv) == 4 else None)
    if argv and argv[0] == "repair":
        if len(argv) not in (2, 3):
            print("usage: python -m repro repair <image> [out]")
            return 2
        return repair_image(argv[1], argv[2] if len(argv) == 3 else None)
    if argv and argv[0] == "serve":
        return serve_command(argv[1:])
    if argv and argv[0] == "promote":
        return promote_command(argv[1:])
    print("InsightNotes+ shell — \\help for commands, \\demo to load data")
    db = Database()
    while True:
        try:
            line = input(PROMPT)
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        try:
            output = repl_step(db, line, interruptible=True)
        except EOFError:
            return 0
        if output:
            print(output)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
