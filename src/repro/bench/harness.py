"""Shared benchmark plumbing: measurement, database caching, and the
figure-style result tables every bench prints.

Each bench file regenerates one table/figure of the paper.  The harness
keeps that uniform:

* :func:`measure` runs a callable and captures wall time **and** the page
  I/O delta — counted I/Os make the paper's relative factors robust to
  interpreter noise (see DESIGN.md §5),
* :func:`cached_database` memoizes fully built workload databases per
  configuration so a sweep shared by several benches builds once, and
* :class:`FigureTable` accumulates (series, x-label, measurement) cells
  and renders the same rows/series the paper reports, including the
  ratio lines ("Summary-BTree is N× faster …") the figures call out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.database import Database
from repro.storage.disk import IOStats
from repro.workload.generator import WorkloadConfig, build_database

_DB_CACHE: dict[tuple, Database] = {}
#: config key -> the content fingerprint taken right after the build.
_DB_FINGERPRINTS: dict[tuple, tuple] = {}


class CachedDatabaseMutated(RuntimeError):
    """A bench mutated a database leased from :func:`cached_database`.

    Cached databases are shared across benches in a session; a mutation
    silently poisons every later measurement, so the lease check fails
    loudly instead.  Mutating benches must use :func:`fresh_database`.
    """


def _fingerprint(db: Database) -> tuple:
    """A cheap content token: total disk pages plus per-table row counts.

    ``disk.num_pages`` (not the allocations counter) because read-only
    queries may allocate and free temp pages (external sort); the net page
    count returns to baseline while the allocation counter does not.
    """
    return (
        db.disk.num_pages,
        tuple(
            (name, db.catalog.table(name).row_count)
            for name in sorted(db.catalog.table_names())
        ),
    )


def cached_database(**config_kwargs) -> Database:
    """A fully built workload database, memoized on the config values.

    Benches share sweeps (same densities, same index schemes); building a
    dense database costs tens of seconds, so one build serves all benches
    in a session.  Callers must not mutate cached databases — benches that
    insert/delete build private copies via :func:`fresh_database`.  Every
    lease re-checks a content fingerprint taken at build time and raises
    :class:`CachedDatabaseMutated` if a previous caller broke that rule.
    """
    key = tuple(sorted(config_kwargs.items()))
    if key not in _DB_CACHE:
        db = build_database(WorkloadConfig(**config_kwargs))
        _DB_CACHE[key] = db
        _DB_FINGERPRINTS[key] = _fingerprint(db)
        return db
    db = _DB_CACHE[key]
    expected = _DB_FINGERPRINTS[key]
    actual = _fingerprint(db)
    if actual != expected:
        raise CachedDatabaseMutated(
            f"cached database for {dict(config_kwargs)!r} was mutated "
            f"(fingerprint {actual} != built {expected}); mutating benches "
            "must use fresh_database()"
        )
    return db


def fresh_database(**config_kwargs) -> Database:
    """An uncached build for benches that mutate the database."""
    return build_database(WorkloadConfig(**config_kwargs))


def clear_cache() -> None:
    _DB_CACHE.clear()
    _DB_FINGERPRINTS.clear()


@dataclass
class Measurement:
    """One measured cell: wall seconds, disk I/O counts, and logical page
    accesses (buffer-pool requests — the interpreter-noise-free metric the
    relative factors are judged on, see DESIGN.md §5)."""

    seconds: float
    io: IOStats
    rows: int = 0
    pages: int = 0
    #: EXPLAIN ANALYZE per-operator breakdown (from :func:`measure_sql`):
    #: one dict per operator with label/rows/next_calls/self_time_s/
    #: self_pages/self_reads/self_writes, pre-order.  Empty for plain
    #: :func:`measure` runs.
    operators: list[dict] = field(default_factory=list)
    #: engine counter delta over the run (``maint.*``, ``index.*.probes``).
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def millis(self) -> float:
        return self.seconds * 1e3

    def __str__(self) -> str:
        return (
            f"{self.millis:9.2f} ms  "
            f"(pages={self.pages}, reads={self.io.reads}, "
            f"writes={self.io.writes})"
        )


def measure(db: Database, fn, repeat: int = 1) -> Measurement:
    """Run ``fn`` ``repeat`` times; report the best wall time and the I/O
    of one run (I/O is deterministic, time is noisy — best-of-N)."""
    best = float("inf")
    io = None
    rows = 0
    pages = 0
    for _ in range(repeat):
        before = db.disk.stats.snapshot()
        pages_before = db.pool.hits + db.pool.misses
        started = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
            io = db.disk.stats.delta(before)
            pages = db.pool.hits + db.pool.misses - pages_before
            try:
                rows = len(out)
            except TypeError:
                rows = 0
    return Measurement(best, io, rows, pages)


def measure_sql(db: Database, query: str, repeat: int = 1) -> Measurement:
    """Measure a SELECT via ``EXPLAIN ANALYZE``: like :func:`measure`, but
    the returned :class:`Measurement` also carries the profiler's
    per-operator breakdown and the engine counter delta (index probes,
    maintenance events) of the best run."""
    best: Measurement | None = None
    for _ in range(repeat):
        report = db.explain(query, analyze=True)
        stats = report.execution
        io = IOStats(reads=stats["io_reads"], writes=stats["io_writes"])
        m = Measurement(
            stats["elapsed_s"], io, stats["rows"], stats["pages"],
            operators=stats["operators"], metrics=stats["metrics"],
        )
        if best is None or m.seconds < best.seconds:
            best = m
    assert best is not None
    return best


@dataclass
class FigureTable:
    """The printed reproduction of one paper figure.

    Cells are keyed (series name, x label); :meth:`render` prints an
    x-by-series table plus any ratio annotations registered with
    :meth:`note_ratio`.
    """

    title: str
    unit: str = "ms"
    cells: dict[tuple[str, str], float] = field(default_factory=dict)
    x_order: list[str] = field(default_factory=list)
    series_order: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, series: str, x: str, value: float) -> None:
        if x not in self.x_order:
            self.x_order.append(x)
        if series not in self.series_order:
            self.series_order.append(series)
        self.cells[(series, x)] = value

    def add_measurement(self, series: str, x: str, m: Measurement,
                        metric: str = "millis") -> None:
        self.add(series, x, getattr(m, metric))

    def value(self, series: str, x: str) -> float:
        return self.cells[(series, x)]

    def series(self, name: str) -> list[float]:
        return [self.cells[(name, x)] for x in self.x_order
                if (name, x) in self.cells]

    def ratio(self, numerator: str, denominator: str, x: str) -> float:
        """cells[numerator, x] / cells[denominator, x]."""
        denom = self.cells[(denominator, x)]
        return self.cells[(numerator, x)] / max(denom, 1e-12)

    def mean_ratio(self, numerator: str, denominator: str) -> float:
        ratios = [
            self.ratio(numerator, denominator, x)
            for x in self.x_order
            if (numerator, x) in self.cells and (denominator, x) in self.cells
        ]
        return sum(ratios) / len(ratios)

    def note_ratio(self, slower: str, faster: str, claim: str = "") -> float:
        """Record (and return) the mean slower/faster ratio as a note —
        the "N× speedup" annotations the paper's figures call out."""
        factor = self.mean_ratio(slower, faster)
        suffix = f"  [paper: {claim}]" if claim else ""
        self.notes.append(
            f"{faster} is {factor:.1f}x faster than {slower}{suffix}"
        )
        return factor

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        width = max(
            [len(s) for s in self.series_order] + [12]
        )
        col = max([len(x) for x in self.x_order] + [10]) + 2
        lines = [f"== {self.title} ({self.unit}) =="]
        header = " " * width + "".join(f"{x:>{col}}" for x in self.x_order)
        lines.append(header)
        for s in self.series_order:
            row = f"{s:<{width}}"
            for x in self.x_order:
                v = self.cells.get((s, x))
                row += f"{'-':>{col}}" if v is None else f"{v:>{col}.2f}"
            lines.append(row)
        lines += [f"  * {n}" for n in self.notes]
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render())
