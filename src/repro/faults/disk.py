"""A DiskManager that injects scheduled faults.

:class:`FaultyDiskManager` subclasses the simulated
:class:`~repro.storage.disk.DiskManager`, consulting a
:class:`~repro.faults.plan.FaultPlan` on every page read and write:

* **fail-stop** — the operation raises
  :class:`~repro.errors.InjectedFaultError` and the disk is dead; every
  later operation raises too (a crashed device does not come back).
* **transient** — the operation raises
  :class:`~repro.errors.TransientIOError` once; retries may succeed.
* **torn write** — a seeded prefix of the new page lands on disk, the
  remainder keeps its old bytes; with ``crash=True`` (default) the disk
  then fail-stops, modelling power loss mid-write.
* **bit flip** — on writes, seeded bits of the stored page are silently
  inverted (persistent rot); on reads, the returned copy is corrupted
  while the stored bytes stay intact (transient rot).

Every injected fault is counted in the engine's
:class:`~repro.obs.metrics.MetricsRegistry` under ``faults.injected`` and
``faults.injected.<kind>``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import InjectedFaultError, TransientIOError
from repro.faults.plan import Fault, FaultKind, FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.storage.disk import DiskManager


@dataclass
class FaultyDiskManager(DiskManager):
    """A :class:`DiskManager` that injects faults from a :class:`FaultPlan`."""

    plan: FaultPlan = field(default_factory=FaultPlan)
    metrics: MetricsRegistry | None = None
    #: Operation counters the schedule indexes against (0-based).
    read_ops: int = 0
    write_ops: int = 0
    #: True once a fail-stop fault fired; the disk never recovers.
    dead: bool = False
    #: Every fault fired, as ``(kind, op, op_index, page_id)``.
    injected: list[tuple[str, str, int, int]] = field(default_factory=list)

    # -- bookkeeping --------------------------------------------------------

    def _record(self, fault: Fault, op: str, index: int, page_id: int) -> None:
        self.injected.append((fault.kind, op, index, page_id))
        if self.metrics is not None:
            self.metrics.inc("faults.injected")
            self.metrics.inc(f"faults.injected.{fault.kind}")

    def _require_alive(self) -> None:
        if self.dead:
            raise InjectedFaultError("disk has fail-stopped")

    def _flip_bits(self, data: bytearray, bits: int) -> None:
        for _ in range(max(1, bits)):
            position = self.plan.rng.randrange(len(data) * 8)
            data[position // 8] ^= 1 << (position % 8)

    # -- faulted operations -------------------------------------------------

    def read_page(self, page_id: int) -> bytearray:
        self._require_alive()
        self._check(page_id)
        index = self.read_ops
        self.read_ops += 1
        fault = self.plan.consume("read", index)
        if fault is None:
            return super().read_page(page_id)
        self._record(fault, "read", index, page_id)
        if fault.kind == FaultKind.FAIL_STOP:
            self.dead = True
            raise InjectedFaultError(
                f"injected fail-stop on read #{index} (page {page_id})"
            )
        if fault.kind == FaultKind.TRANSIENT:
            raise TransientIOError(
                f"injected transient error on read #{index} (page {page_id})"
            )
        # BIT_FLIP on a read corrupts only the returned copy.
        data = super().read_page(page_id)
        self._flip_bits(data, fault.bits)
        return data

    def write_page(self, page_id: int, data: bytes | bytearray) -> None:
        self._require_alive()
        self._check(page_id)
        index = self.write_ops
        self.write_ops += 1
        fault = self.plan.consume("write", index)
        if fault is None:
            super().write_page(page_id, data)
            return
        self._record(fault, "write", index, page_id)
        if fault.kind == FaultKind.FAIL_STOP:
            self.dead = True
            raise InjectedFaultError(
                f"injected fail-stop on write #{index} (page {page_id})"
            )
        if fault.kind == FaultKind.TRANSIENT:
            raise TransientIOError(
                f"injected transient error on write #{index} (page {page_id})"
            )
        if fault.kind == FaultKind.TORN_WRITE:
            old = self._pages[page_id]
            assert old is not None
            torn_at = fault.torn_bytes
            if torn_at is None:
                torn_at = self.plan.rng.randrange(1, self.page_size)
            torn = bytearray(data[:torn_at]) + old[torn_at:]
            super().write_page(page_id, torn)
            if fault.crash:
                self.dead = True
                raise InjectedFaultError(
                    f"injected torn write (crash after {torn_at} bytes) on "
                    f"write #{index} (page {page_id})"
                )
            return
        # BIT_FLIP on a write stores a corrupted image: persistent rot.
        corrupted = bytearray(data)
        self._flip_bits(corrupted, fault.bits)
        super().write_page(page_id, corrupted)


def _reset_breaker(db) -> None:
    """Close the resilience circuit breaker across a device swap.

    Installing or removing a faulty manager replaces the *device*; failure
    counts accumulated against the previous device must not leak onto the
    new one (an open breaker would fast-fail a perfectly healthy disk).
    """
    guard = getattr(getattr(db, "pool", None), "guard", None)
    if guard is not None and guard.breaker is not None:
        guard.breaker.reset()


def install_faults(db, plan: FaultPlan) -> FaultyDiskManager:
    """Swap a :class:`FaultyDiskManager` in underneath a live database.

    The faulty manager adopts the existing disk's pages, free list, and
    I/O counters, so installed faults change *behaviour* only — never
    state. Injected faults are counted through ``db.metrics``.

    The swap is exception-safe: the faulty manager is fully constructed
    and state-adopted *before* either reference is redirected, and the two
    references (``db.disk`` and ``db.pool.disk``) are assigned together,
    so no failure can leave the database half-swapped.
    """
    faulty = FaultyDiskManager(
        page_size=db.disk.page_size, plan=plan, metrics=db.metrics
    )
    faulty.stats = db.disk.stats
    faulty._pages = db.disk._pages
    faulty._free = db.disk._free
    # Point of no return: plain attribute assignments, which cannot raise.
    db.disk = faulty
    db.pool.disk = faulty
    _reset_breaker(db)
    return faulty


def remove_faults(db) -> None:
    """Restore a plain :class:`DiskManager` over the same on-disk state.

    Idempotent: removing when no faulty manager is installed re-aligns
    ``db.pool.disk`` with ``db.disk`` and returns — so cleanup paths may
    call it unconditionally.
    """
    if not isinstance(db.disk, FaultyDiskManager):
        db.pool.disk = db.disk
        return
    plain = DiskManager(page_size=db.disk.page_size)
    plain.stats = db.disk.stats
    plain._pages = db.disk._pages
    plain._free = db.disk._free
    db.disk = plain
    db.pool.disk = plain
    _reset_breaker(db)


@contextmanager
def installed_faults(db, plan: FaultPlan):
    """Scoped fault installation: the real disk manager is restored on the
    way out *no matter how the body exits* — a raised injected fault can
    never leave the database permanently detached from a working disk."""
    faulty = install_faults(db, plan)
    try:
        yield faulty
    finally:
        remove_faults(db)
