"""Engine correctness under buffer-pool pressure: a pool far smaller than
the working set forces evictions and re-reads mid-query; results must not
change, and I/O counters must show the thrashing."""

import pytest

from repro import Column, Database, ValueType
from repro.optimizer.planner import PlannerOptions

SEEDS = [
    ("flu virus infection outbreak", "Disease"),
    ("survey checklist volunteer", "Other"),
]
DISEASE = "$.getSummaryObject('C').getLabelValue('Disease')"


def build(buffer_pages: int) -> Database:
    db = Database(buffer_pages=buffer_pages)
    db.create_table("t", [
        Column("name", ValueType.TEXT), Column("blob", ValueType.TEXT),
    ])
    db.create_classifier_instance("C", ["Disease", "Other"], SEEDS)
    db.sql("Alter Table t Add Indexable C")
    for i in range(40):
        # pad rows so the working set spans many pages
        oid = db.insert("t", {"name": f"n{i:02d}", "blob": "x" * 500})
        for _ in range(i % 5):
            db.add_annotation(
                "flu virus infection outbreak " + "filler " * 30,
                table="t", oid=oid,
            )
    db.analyze("t")
    return db


class TestTinyPool:
    def test_results_identical_across_pool_sizes(self):
        roomy = build(buffer_pages=4096)
        tiny = build(buffer_pages=8)
        query = f"Select name From t r Where r.{DISEASE} >= 2 Order By name"
        assert roomy.sql(query).column("name") == tiny.sql(query).column(
            "name"
        )

    def test_tiny_pool_actually_evicts(self):
        tiny = build(buffer_pages=4)
        before = tiny.disk.stats.snapshot()
        tiny.sql("Select name From t")
        tiny.sql("Select name From t")  # second pass cannot be fully cached
        delta = tiny.disk.stats.delta(before)
        assert delta.reads > 0

    def test_roomy_pool_serves_repeats_from_cache(self):
        roomy = build(buffer_pages=4096)
        roomy.sql("Select name From t")  # warm
        before = roomy.disk.stats.snapshot()
        roomy.sql("Select name From t")
        assert roomy.disk.stats.delta(before).reads == 0

    def test_index_queries_survive_eviction(self):
        tiny = build(buffer_pages=8)
        query = f"Select name From t r Where r.{DISEASE} = 4"
        expected = tiny.sql(query).column("name")
        tiny.options.force_access = "index"
        try:
            via_index = tiny.sql(query).column("name")
        finally:
            tiny.options.force_access = None
        assert sorted(via_index) == sorted(expected)

    def test_external_sort_under_pressure(self):
        tiny = build(buffer_pages=8)
        tiny.options.force_sort = "disk"
        try:
            result = tiny.sql("Select name From t Order By name Desc")
        finally:
            tiny.options.force_sort = None
        names = result.column("name")
        assert names == sorted(names, reverse=True)

    def test_mutations_under_pressure(self):
        tiny = build(buffer_pages=8)
        oid = tiny.insert("t", {"name": "late", "blob": "y" * 500})
        tiny.add_annotation("flu virus infection outbreak late",
                            table="t", oid=oid)
        result = tiny.sql(
            f"Select name From t r Where name = 'late' And r.{DISEASE} = 1"
        )
        assert len(result) == 1
