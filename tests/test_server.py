"""Query-server tests: protocol framing, error handling, concurrency.

The server fixture binds an ephemeral port on a background event loop,
so suites run in parallel without port collisions.  Beyond the happy
path, the suite covers the protocol's documented failure contract —
malformed frames and oversized payloads answer an error frame and drop
the connection, statement errors keep it — and the disconnect guarantee:
a client that hangs up mid-statement gets its statement *cancelled*
through the cooperative path and its session closed, so no table lock
outlives the connection.
"""

from __future__ import annotations

import asyncio
import socket
import struct
import threading
import time

import pytest

from repro.catalog.schema import Column
from repro.core.database import Database, QueryReport
from repro.errors import ProtocolError, ServerError
from repro.query.parser import parse_sql
from repro.server import QueryClient, QueryServer
from repro.server.protocol import (
    LENGTH,
    decode_length,
    decode_payload,
    encode_frame,
    jsonable_result,
)
from repro.storage.record import ValueType


class ServerHarness:
    """One server on its own event-loop thread; exposes the bound port."""

    def __init__(self, db: Database, **kwargs):
        self.db = db
        self.server = QueryServer(db, **kwargs)
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        deadline = time.monotonic() + 10
        while self.server.port == 0:
            if time.monotonic() > deadline:  # pragma: no cover
                raise RuntimeError("server did not bind")
            time.sleep(0.005)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self.loop.run_forever()

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self):
        if getattr(self, "_stopped", False):
            return  # failover tests kill the primary before teardown
        self._stopped = True
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        ).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(10)
        self.loop.close()


@pytest.fixture()
def harness():
    db = Database(buffer_pages=32)
    db.create_table("t", [Column("name", ValueType.TEXT),
                          Column("v", ValueType.INT)])
    for i in range(10):
        db.insert("t", [f"r{i}", i])
    h = ServerHarness(db)
    try:
        yield h
    finally:
        h.stop()


def wait_for(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestProtocolUnits:
    def test_frame_roundtrip(self):
        frame = encode_frame({"sql": "SELECT 1"})
        length = decode_length(frame[:LENGTH.size])
        assert length == len(frame) - LENGTH.size
        assert decode_payload(frame[LENGTH.size:]) == {"sql": "SELECT 1"}

    def test_oversized_encode_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame({"sql": "x" * 100}, max_frame=50)

    def test_oversized_length_rejected(self):
        with pytest.raises(ProtocolError):
            decode_length(struct.pack(">I", 1 << 30), max_frame=1024)

    def test_truncated_header_rejected(self):
        with pytest.raises(ProtocolError):
            decode_length(b"\x00\x01")

    def test_bad_json_rejected(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"{not json")
        with pytest.raises(ProtocolError):
            decode_payload(b'"a bare string"')

    def test_jsonable_result_shapes(self):
        db = Database()
        db.create_table("t", [Column("name", ValueType.TEXT),
                              Column("v", ValueType.INT)])
        db.insert("t", ["a", 1])
        rs = jsonable_result(db.sql("Select name, v From t"))
        assert rs == {"columns": ["name", "v"],
                      "rows": [["a", 1]], "row_count": 1}
        assert jsonable_result(None) is None
        assert jsonable_result(7) == 7
        assert jsonable_result(["x", "y"]) == ["x", "y"]
        report = db.sql("Explain Select name From t")
        assert isinstance(report, QueryReport)
        assert isinstance(jsonable_result(report), str)


class TestServerBasics:
    def test_execute_and_result_shape(self, harness):
        with QueryClient(port=harness.port) as client:
            result = client.execute("Select name, v From t")
            assert result["row_count"] == 10
            assert ["r0", 0] in result["rows"]
            assert client.execute(
                "Insert Into t Values ('fresh', 99)") is None
            assert client.execute(
                "Delete From t r Where r.name = 'fresh'") == 1

    def test_statement_error_keeps_connection(self, harness):
        with QueryClient(port=harness.port) as client:
            with pytest.raises(ServerError) as exc_info:
                client.execute("SELEKT nope")
            assert exc_info.value.error_type == "ParseError"
            with pytest.raises(ServerError) as exc_info:
                client.execute("Select * From missing_table")
            assert exc_info.value.error_type == "BindError"
            # Same connection still serves statements.
            assert client.execute("Select * From t")["row_count"] == 10

    def test_transactions_over_the_wire(self, harness):
        with QueryClient(port=harness.port) as client:
            client.execute("BEGIN")
            client.execute("Insert Into t Values ('txn-row', 50)")
            assert client.execute("Select * From t")["row_count"] == 10
            client.execute("COMMIT")
            assert client.execute("Select * From t")["row_count"] == 11

    def test_disconnect_aborts_open_transaction(self, harness):
        client = QueryClient(port=harness.port)
        client.execute("BEGIN")
        client.execute("Insert Into t Values ('ghost', 1)")
        client.close()
        # The server-side session closes with the connection: the txn
        # aborts and its exclusive table lock is released.
        assert wait_for(lambda: len(harness.db.txn_manager.active) == 0)
        with QueryClient(port=harness.port) as other:
            assert other.execute("Select * From t")["row_count"] == 10
            other.execute("Insert Into t Values ('after', 2)")

    def test_request_shape_errors_keep_connection(self, harness):
        with QueryClient(port=harness.port) as client:
            client.send_raw(encode_frame({"nosql": True}))
            response = client.recv_response()
            assert response["ok"] is False
            assert response["error_type"] == "ProtocolError"
            client.send_raw(encode_frame({"sql": "SELECT 1",
                                          "timeout": "soon"}))
            assert client.recv_response()["ok"] is False
            assert client.execute("Select * From t")["row_count"] == 10

    def test_metrics(self, harness):
        with QueryClient(port=harness.port) as client:
            client.execute("Select * From t")
            with pytest.raises(ServerError):
                client.execute("SELEKT")
        snap = harness.db.metrics.snapshot()
        assert snap["server.connections"] == 1
        assert snap["server.requests"] == 2
        assert snap["server.errors"] == 1


class TestProtocolViolations:
    def test_malformed_json_frame_drops_connection(self, harness):
        client = QueryClient(port=harness.port)
        payload = b"{definitely not json"
        client.send_raw(LENGTH.pack(len(payload)) + payload)
        response = client.recv_response()
        assert response["ok"] is False
        assert response["error_type"] == "ProtocolError"
        # The server hung up after answering.
        with pytest.raises((ProtocolError, ConnectionError)):
            client.send_raw(encode_frame({"sql": "Select * From t"}))
            client.recv_response()
        client.close()

    def test_oversized_frame_drops_connection(self, harness):
        client = QueryClient(port=harness.port)
        client.send_raw(LENGTH.pack(64 * 1024 * 1024))  # > MAX_FRAME
        response = client.recv_response()
        assert response["ok"] is False
        assert response["error_type"] == "ProtocolError"
        client.close()

    def test_mid_header_disconnect_is_clean(self, harness):
        sock = socket.create_connection(("127.0.0.1", harness.port))
        sock.sendall(b"\x00\x00")  # half a header
        sock.close()
        # The server must survive; a fresh connection works.
        with QueryClient(port=harness.port) as client:
            assert client.execute("Select * From t")["row_count"] == 10

    def test_mid_frame_disconnect_is_clean(self, harness):
        sock = socket.create_connection(("127.0.0.1", harness.port))
        sock.sendall(LENGTH.pack(1000) + b"only a bit")
        sock.close()
        with QueryClient(port=harness.port) as client:
            assert client.execute("Select * From t")["row_count"] == 10

    def test_nonlocking_sql_still_parses(self, harness):
        # Sanity: the SQL sent over the wire is ordinary parser input.
        parse_sql("Select name, v From t")


class TestMidStatementDisconnect:
    def test_disconnect_cancels_and_releases_locks(self, harness):
        db = harness.db
        # An external holder pins t exclusively, so the client's INSERT
        # parks in a lock wait — a long-running statement we can hang up
        # on deterministically.
        db.lock_manager.acquire_exclusive("holder", "t")
        client = QueryClient(port=harness.port)
        client.send_raw(encode_frame(
            {"sql": "Insert Into t Values ('never', 1)", "timeout": 60}
        ))
        # Wait until the statement is genuinely inside the lock wait.
        assert wait_for(lambda: db.metrics.get("lock.timeouts") == 0
                        and db.metrics.get("server.requests") >= 1)
        time.sleep(0.15)
        client.close()  # hang up mid-statement
        assert wait_for(
            lambda: db.metrics.get("server.cancelled_disconnects") == 1
        ), "disconnect was not noticed while the statement ran"
        # The cancelled statement's cooperative path fired: resilience
        # counts a cancellation, not a lock timeout.
        assert wait_for(lambda: db.metrics.get("resilience.cancelled") == 1)
        db.lock_manager.release_all("holder")
        # No leaked locks: a new client writes immediately.
        with QueryClient(port=harness.port) as other:
            other.execute("Insert Into t Values ('works', 5)", timeout=5)
            assert other.execute(
                "Select * From t r Where r.name = 'never'"
            )["row_count"] == 0


class TestConcurrentClients:
    def test_parallel_readers(self, harness):
        errors: list[str] = []

        def reader():
            try:
                with QueryClient(port=harness.port) as client:
                    for _ in range(10):
                        result = client.execute("Select name, v From t")
                        if result["row_count"] != 10:
                            errors.append(f"saw {result['row_count']}")
            except Exception as exc:  # pragma: no cover
                errors.append(repr(exc))

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert errors == []
        assert harness.db.metrics.get("server.connections") == 4

    def test_parallel_writers_serialize_cleanly(self, harness):
        errors: list[str] = []

        def writer(wid: int):
            try:
                with QueryClient(port=harness.port) as client:
                    for i in range(5):
                        client.execute("BEGIN")
                        client.execute(
                            f"Insert Into t Values ('w{wid}-{i}', {i})"
                        )
                        client.execute("COMMIT")
            except Exception as exc:  # pragma: no cover
                errors.append(repr(exc))

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
        assert errors == []
        with QueryClient(port=harness.port) as client:
            assert client.execute("Select * From t")["row_count"] == 25
        assert harness.db.metrics.get("txn.commits") == 15
