"""Physical operators (Volcano iterator model).

Scans (sequential, data-index, Summary-BTree, baseline-index), joins
(nested-loop and index nested-loop, both summary-aware), and the
tuple-at-a-time transforms (σ, S, F, π, sort/O, group, distinct, limit).
"""

from repro.query.physical.base import ExecContext, PhysicalOperator
from repro.query.physical.scans import (
    BaselineIndexScan,
    IndexScan,
    KeywordIndexScan,
    SeqScan,
    SummaryIndexScan,
)
from repro.query.physical.joins import (
    IndexNestedLoopJoin,
    NestedLoopJoin,
    SummaryIndexNestedLoopJoin,
)
from repro.query.physical.transforms import (
    DistinctOp,
    FilterOp,
    GroupOp,
    LimitOp,
    ProjectOp,
    SortOp,
    SummaryFilterOp,
    SummarySelectOp,
)

__all__ = [
    "ExecContext",
    "PhysicalOperator",
    "SeqScan",
    "IndexScan",
    "SummaryIndexScan",
    "BaselineIndexScan",
    "KeywordIndexScan",
    "NestedLoopJoin",
    "IndexNestedLoopJoin",
    "SummaryIndexNestedLoopJoin",
    "FilterOp",
    "SummarySelectOp",
    "SummaryFilterOp",
    "ProjectOp",
    "SortOp",
    "GroupOp",
    "DistinctOp",
    "LimitOp",
]
