"""The asyncio query server: N concurrent clients over one engine.

One :class:`QueryServer` wraps a :class:`~repro.core.database.Database`
and serves the length-prefixed JSON protocol (``repro.server.protocol``)
on a TCP socket.  Each connection gets its own locking
:class:`~repro.txn.session.Session` — its transactions and table locks
live exactly as long as the connection — and statements execute on a
worker thread pool, so readers under shared locks genuinely overlap
while the asyncio loop stays free to accept traffic.

Disconnect handling is the part worth reading twice: while a statement
runs on a worker thread, the loop concurrently watches the socket.  A
client that hangs up mid-statement triggers
:meth:`~repro.txn.session.Session.cancel` — the PR-5 cooperative
cancellation path — so the statement dies at its next batch boundary or
lock-wait slice and the session's locks are released with the
connection, never leaked.  Bytes that arrive instead (a pipelining
client) are kept as the prefix of the next frame.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

from repro.errors import ProtocolError, ReproError
from repro.server.protocol import (
    LENGTH,
    MAX_FRAME,
    decode_length,
    decode_payload,
    encode_frame,
    jsonable_result,
)

#: Default statement worker threads per server.
DEFAULT_WORKERS = 8


class QueryServer:
    """Serve one database to concurrent clients over TCP."""

    def __init__(self, db, host: str = "127.0.0.1", port: int = 0,
                 max_frame: int = MAX_FRAME, workers: int = DEFAULT_WORKERS):
        self.db = db
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self.workers = workers
        self._server: asyncio.AbstractServer | None = None
        self._executor: ThreadPoolExecutor | None = None

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` is the bound port
        (resolves an ephemeral 0)."""
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-stmt"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        session = self.db.session(locking=True)
        self.db.metrics.inc("server.connections")
        buffer = b""
        try:
            while True:
                try:
                    request, buffer = await self._read_frame(reader, buffer)
                except ProtocolError as exc:
                    # A peer that cannot frame is out of sync with the
                    # stream: answer once, then hang up.
                    await self._send(writer, {
                        "ok": False, "error": str(exc),
                        "error_type": "ProtocolError",
                    })
                    self.db.metrics.inc("server.errors")
                    return
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # clean or mid-frame EOF between statements
                if request is None:
                    return  # EOF at a frame boundary: clean disconnect
                response, buffer, alive = await self._run_request(
                    session, reader, request, buffer
                )
                if response is not None:
                    try:
                        await self._send(writer, response)
                    except ConnectionError:
                        return
                if not alive:
                    return
        finally:
            # Aborts any open transaction and releases every lock: a
            # dropped connection can never strand a table lock.
            session.close()
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _run_request(self, session, reader, request: dict,
                           buffer: bytes):
        """Execute one request on the worker pool while watching the
        socket; returns ``(response, buffer, connection_alive)``."""
        sql = request.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            self.db.metrics.inc("server.errors")
            return (
                {"ok": False, "error": "request needs a non-empty 'sql'",
                 "error_type": "ProtocolError"},
                buffer, True,
            )
        timeout = request.get("timeout")
        if timeout is not None and not isinstance(timeout, (int, float)):
            self.db.metrics.inc("server.errors")
            return (
                {"ok": False, "error": "'timeout' must be a number",
                 "error_type": "ProtocolError"},
                buffer, True,
            )
        self.db.metrics.inc("server.requests")
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        stmt_future = loop.run_in_executor(
            self._executor, session.execute, sql, timeout
        )
        peek = asyncio.ensure_future(reader.read(1))
        disconnected = False
        try:
            while not stmt_future.done():
                done, _pending = await asyncio.wait(
                    {stmt_future, peek}, return_when=asyncio.FIRST_COMPLETED
                )
                if peek in done and not stmt_future.done():
                    data = peek.result()
                    if data:
                        # The client pipelined its next frame; keep the
                        # byte and go back to waiting on the statement.
                        buffer += data
                        peek = asyncio.ensure_future(reader.read(1))
                        continue
                    # EOF mid-statement: cancel through the cooperative
                    # path and wait for the worker to unwind (it must
                    # finish before the session's locks are released).
                    disconnected = True
                    session.cancel()
                    self.db.metrics.inc("server.cancelled_disconnects")
                    try:
                        await stmt_future
                    except Exception:
                        pass
                    return None, buffer, False
        finally:
            # The peek must be fully retired before anything else reads
            # the stream: a cancelled asyncio read stays registered as
            # the reader's waiter until the cancellation is *awaited*.
            if not peek.done():
                peek.cancel()
            try:
                data = await peek
                # A byte that raced the statement's completion belongs
                # to the next frame; b"" (EOF) resurfaces on next read.
                if not disconnected and data:
                    buffer += data
            except (asyncio.CancelledError, ConnectionError):
                pass
        try:
            result = stmt_future.result()
        except ReproError as exc:
            self.db.metrics.inc("server.errors")
            return (
                {"ok": False, "error": str(exc),
                 "error_type": type(exc).__name__},
                buffer, True,
            )
        elapsed_ms = (time.perf_counter() - started) * 1e3
        try:
            payload = jsonable_result(result)
        except Exception as exc:  # never let rendering kill the server
            self.db.metrics.inc("server.errors")
            return (
                {"ok": False, "error": f"unserializable result: {exc}",
                 "error_type": "ServerError"},
                buffer, True,
            )
        return (
            {"ok": True, "result": payload,
             "elapsed_ms": round(elapsed_ms, 3)},
            buffer, True,
        )

    # -- framing over asyncio streams ----------------------------------------

    async def _read_frame(self, reader: asyncio.StreamReader,
                          buffer: bytes):
        """Read one frame, honouring bytes already peeked into ``buffer``.
        Returns ``(request, remaining_buffer)``; request is None on a
        clean EOF at a frame boundary."""
        header, buffer, eof = await self._read_exactly(
            reader, LENGTH.size, buffer
        )
        if header is None:
            if eof and buffer:
                raise ProtocolError(
                    f"connection closed mid-header ({len(buffer)} of "
                    f"{LENGTH.size} bytes)"
                )
            return None, b""
        length = decode_length(header, self.max_frame)
        payload, buffer, _eof = await self._read_exactly(
            reader, length, buffer
        )
        if payload is None:
            raise ProtocolError(
                f"connection closed mid-frame ({len(buffer)} of "
                f"{length} payload bytes)"
            )
        return decode_payload(payload), buffer

    @staticmethod
    async def _read_exactly(reader: asyncio.StreamReader, n: int,
                            buffer: bytes):
        """``(chunk, rest, eof)``: ``chunk`` is ``n`` bytes or None when
        the stream ended first (``rest`` then holds the partial tail)."""
        while len(buffer) < n:
            data = await reader.read(65536)
            if not data:
                return None, buffer, True
            buffer += data
        return buffer[:n], buffer[n:], False

    async def _send(self, writer: asyncio.StreamWriter, obj: dict) -> None:
        writer.write(encode_frame(obj, self.max_frame))
        await writer.drain()


async def serve(db, host: str = "127.0.0.1", port: int = 0,
                workers: int = DEFAULT_WORKERS) -> None:
    """Convenience runner: start a server and serve until cancelled."""
    server = QueryServer(db, host=host, port=port, workers=workers)
    await server.start()
    print(f"repro server listening on {server.host}:{server.port}")
    try:
        await server.serve_forever()
    finally:
        await server.stop()
