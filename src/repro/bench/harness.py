"""Shared benchmark plumbing: measurement, database caching, and the
figure-style result tables every bench prints.

Each bench file regenerates one table/figure of the paper.  The harness
keeps that uniform:

* :func:`measure` runs a callable and captures wall time **and** the page
  I/O delta — counted I/Os make the paper's relative factors robust to
  interpreter noise (see DESIGN.md §5),
* :func:`cached_database` memoizes fully built workload databases per
  configuration so a sweep shared by several benches builds once, and
* :class:`FigureTable` accumulates (series, x-label, measurement) cells
  and renders the same rows/series the paper reports, including the
  ratio lines ("Summary-BTree is N× faster …") the figures call out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.database import Database
from repro.storage.disk import IOStats
from repro.workload.generator import WorkloadConfig, build_database

_DB_CACHE: dict[tuple, Database] = {}


def cached_database(**config_kwargs) -> Database:
    """A fully built workload database, memoized on the config values.

    Benches share sweeps (same densities, same index schemes); building a
    dense database costs tens of seconds, so one build serves all benches
    in a session.  Callers must not mutate cached databases — benches that
    insert/delete build private copies via :func:`fresh_database`.
    """
    key = tuple(sorted(config_kwargs.items()))
    if key not in _DB_CACHE:
        _DB_CACHE[key] = build_database(WorkloadConfig(**config_kwargs))
    return _DB_CACHE[key]


def fresh_database(**config_kwargs) -> Database:
    """An uncached build for benches that mutate the database."""
    return build_database(WorkloadConfig(**config_kwargs))


def clear_cache() -> None:
    _DB_CACHE.clear()


@dataclass
class Measurement:
    """One measured cell: wall seconds, disk I/O counts, and logical page
    accesses (buffer-pool requests — the interpreter-noise-free metric the
    relative factors are judged on, see DESIGN.md §5)."""

    seconds: float
    io: IOStats
    rows: int = 0
    pages: int = 0

    @property
    def millis(self) -> float:
        return self.seconds * 1e3

    def __str__(self) -> str:
        return (
            f"{self.millis:9.2f} ms  "
            f"(pages={self.pages}, reads={self.io.reads}, "
            f"writes={self.io.writes})"
        )


def measure(db: Database, fn, repeat: int = 1) -> Measurement:
    """Run ``fn`` ``repeat`` times; report the best wall time and the I/O
    of one run (I/O is deterministic, time is noisy — best-of-N)."""
    best = float("inf")
    io = None
    rows = 0
    pages = 0
    for _ in range(repeat):
        before = db.disk.stats.snapshot()
        pages_before = db.pool.hits + db.pool.misses
        started = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
            io = db.disk.stats.delta(before)
            pages = db.pool.hits + db.pool.misses - pages_before
            try:
                rows = len(out)
            except TypeError:
                rows = 0
    return Measurement(best, io, rows, pages)


@dataclass
class FigureTable:
    """The printed reproduction of one paper figure.

    Cells are keyed (series name, x label); :meth:`render` prints an
    x-by-series table plus any ratio annotations registered with
    :meth:`note_ratio`.
    """

    title: str
    unit: str = "ms"
    cells: dict[tuple[str, str], float] = field(default_factory=dict)
    x_order: list[str] = field(default_factory=list)
    series_order: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, series: str, x: str, value: float) -> None:
        if x not in self.x_order:
            self.x_order.append(x)
        if series not in self.series_order:
            self.series_order.append(series)
        self.cells[(series, x)] = value

    def add_measurement(self, series: str, x: str, m: Measurement,
                        metric: str = "millis") -> None:
        self.add(series, x, getattr(m, metric))

    def value(self, series: str, x: str) -> float:
        return self.cells[(series, x)]

    def series(self, name: str) -> list[float]:
        return [self.cells[(name, x)] for x in self.x_order
                if (name, x) in self.cells]

    def ratio(self, numerator: str, denominator: str, x: str) -> float:
        """cells[numerator, x] / cells[denominator, x]."""
        denom = self.cells[(denominator, x)]
        return self.cells[(numerator, x)] / max(denom, 1e-12)

    def mean_ratio(self, numerator: str, denominator: str) -> float:
        ratios = [
            self.ratio(numerator, denominator, x)
            for x in self.x_order
            if (numerator, x) in self.cells and (denominator, x) in self.cells
        ]
        return sum(ratios) / len(ratios)

    def note_ratio(self, slower: str, faster: str, claim: str = "") -> float:
        """Record (and return) the mean slower/faster ratio as a note —
        the "N× speedup" annotations the paper's figures call out."""
        factor = self.mean_ratio(slower, faster)
        suffix = f"  [paper: {claim}]" if claim else ""
        self.notes.append(
            f"{faster} is {factor:.1f}x faster than {slower}{suffix}"
        )
        return factor

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        width = max(
            [len(s) for s in self.series_order] + [12]
        )
        col = max([len(x) for x in self.x_order] + [10]) + 2
        lines = [f"== {self.title} ({self.unit}) =="]
        header = " " * width + "".join(f"{x:>{col}}" for x in self.x_order)
        lines.append(header)
        for s in self.series_order:
            row = f"{s:<{width}}"
            for x in self.x_order:
                v = self.cells.get((s, x))
                row += f"{'-':>{col}}" if v is None else f"{v:>{col}.2f}"
            lines.append(row)
        lines += [f"  * {n}" for n in self.notes]
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render())
