"""Unit tests for the record codec and heap files."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageFullError, SchemaError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.heapfile import HeapFile, RID
from repro.storage.record import RecordCodec, ValueType


def make_heap(capacity=64):
    return HeapFile(BufferPool(DiskManager(), capacity=capacity))


class TestRecordCodec:
    def test_roundtrip_all_types(self):
        codec = RecordCodec(
            [ValueType.INT, ValueType.FLOAT, ValueType.TEXT,
             ValueType.BOOL, ValueType.BLOB]
        )
        row = [42, 3.25, "swan goose", True, b"\x00\xff"]
        assert codec.decode(codec.encode(row)) == row

    def test_nulls_roundtrip(self):
        codec = RecordCodec([ValueType.INT, ValueType.TEXT, ValueType.FLOAT])
        row = [None, None, None]
        assert codec.decode(codec.encode(row)) == row

    def test_mixed_nulls(self):
        codec = RecordCodec([ValueType.INT, ValueType.TEXT])
        assert codec.decode(codec.encode([7, None])) == [7, None]
        assert codec.decode(codec.encode([None, "x"])) == [None, "x"]

    def test_unicode_text(self):
        codec = RecordCodec([ValueType.TEXT])
        row = ["Anser cygnoïdes — 鴻雁"]
        assert codec.decode(codec.encode(row)) == row

    def test_wrong_arity_raises(self):
        codec = RecordCodec([ValueType.INT])
        with pytest.raises(SchemaError):
            codec.encode([1, 2])

    def test_type_mismatch_raises(self):
        codec = RecordCodec([ValueType.INT])
        with pytest.raises(SchemaError):
            codec.encode(["not an int"])

    def test_bool_is_not_int(self):
        codec = RecordCodec([ValueType.INT])
        with pytest.raises(SchemaError):
            codec.encode([True])

    @given(
        st.lists(
            st.one_of(
                st.none(),
                st.integers(min_value=-(2**62), max_value=2**62),
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=50)
    def test_property_int_rows_roundtrip(self, row):
        codec = RecordCodec([ValueType.INT] * len(row))
        assert codec.decode(codec.encode(row)) == row

    @given(st.lists(st.text(max_size=60), min_size=1, max_size=5))
    @settings(max_examples=50)
    def test_property_text_rows_roundtrip(self, row):
        codec = RecordCodec([ValueType.TEXT] * len(row))
        assert codec.decode(codec.encode(row)) == row


class TestHeapFile:
    def test_insert_read_roundtrip(self):
        heap = make_heap()
        rid = heap.insert(b"record-1")
        assert heap.read(rid) == b"record-1"

    def test_len_tracks_inserts_and_deletes(self):
        heap = make_heap()
        rids = [heap.insert(f"r{i}".encode()) for i in range(20)]
        assert len(heap) == 20
        heap.delete(rids[0])
        assert len(heap) == 19

    def test_spills_to_multiple_pages(self):
        heap = make_heap()
        payload = b"x" * 1000
        rids = [heap.insert(payload) for _ in range(30)]
        assert heap.num_pages > 1
        for rid in rids:
            assert heap.read(rid) == payload

    def test_scan_yields_all_live_records(self):
        heap = make_heap()
        rids = [heap.insert(f"rec-{i:03d}".encode()) for i in range(100)]
        heap.delete(rids[10])
        heap.delete(rids[50])
        seen = {record for _, record in heap.scan()}
        assert len(seen) == 98
        assert b"rec-010" not in seen

    def test_update_in_place_keeps_rid(self):
        heap = make_heap()
        rid = heap.insert(b"short")
        new_rid = heap.update(rid, b"shrt2")
        assert new_rid == rid
        assert heap.read(rid) == b"shrt2"

    def test_update_that_moves_returns_new_rid(self):
        heap = make_heap()
        # Fill a page almost completely so a grown record must relocate.
        filler = b"f" * 2500
        rids = [heap.insert(filler) for _ in range(3)]
        target = rids[1]
        new_rid = heap.update(target, b"g" * 4000)
        assert heap.read(new_rid) == b"g" * 4000
        assert len(heap) == 3

    def test_oversize_record_spills_to_overflow_chain(self):
        heap = make_heap()
        payload = bytes(range(256)) * 80  # ~20 KB, spans multiple pages
        rid = heap.insert(payload)
        assert heap.read(rid) == payload
        assert heap._overflow_pages >= 3

    def test_overflow_pages_freed_on_delete(self):
        heap = make_heap()
        rid = heap.insert(b"z" * 30000)
        pages_with = heap.num_pages
        heap.delete(rid)
        assert heap._overflow_pages == 0
        assert heap.num_pages < pages_with

    def test_overflow_update_shrinks_back_inline(self):
        heap = make_heap()
        rid = heap.insert(b"w" * 20000)
        new_rid = heap.update(rid, b"small")
        assert heap.read(new_rid) == b"small"
        assert heap._overflow_pages == 0

    def test_inline_update_grows_to_overflow(self):
        heap = make_heap()
        rid = heap.insert(b"tiny")
        big = b"y" * 25000
        new_rid = heap.update(rid, big)
        assert heap.read(new_rid) == big

    def test_overflow_survives_cold_cache(self):
        heap = make_heap(capacity=2)
        payload = b"c" * 40000
        rid = heap.insert(payload)
        heap.pool.clear()
        assert heap.read(rid) == payload

    def test_mixed_inline_and_overflow_scan(self):
        heap = make_heap()
        heap.insert(b"short-1")
        heap.insert(b"L" * 15000)
        heap.insert(b"short-2")
        lengths = sorted(len(r) for _, r in heap.scan())
        assert lengths == [7, 7, 15000]

    def test_rids_stable_across_deletes(self):
        heap = make_heap()
        rids = [heap.insert(f"v{i}".encode()) for i in range(10)]
        heap.delete(rids[3])
        for i in (0, 1, 2, 4, 5, 6, 7, 8, 9):
            assert heap.read(rids[i]) == f"v{i}".encode()

    def test_drop_frees_pages(self):
        heap = make_heap()
        for _ in range(50):
            heap.insert(b"y" * 500)
        disk = heap.pool.disk
        assert disk.num_pages > 0
        heap.drop()
        # Only pages owned by other structures remain (none here).
        assert heap.num_pages == 0
        assert len(heap) == 0

    def test_survives_cold_cache(self):
        heap = make_heap(capacity=2)
        rids = [heap.insert(f"cold-{i}".encode() * 10) for i in range(40)]
        heap.pool.clear()
        for i, rid in enumerate(rids):
            assert heap.read(rid) == f"cold-{i}".encode() * 10

    @given(st.lists(st.binary(min_size=1, max_size=200), min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_property_insert_then_scan_returns_everything(self, records):
        heap = make_heap()
        for record in records:
            heap.insert(record)
        scanned = sorted(record for _, record in heap.scan())
        assert scanned == sorted(records)

    def test_rid_namedtuple(self):
        rid = RID(3, 7)
        assert rid.page_no == 3
        assert rid.slot == 7
