"""Parser/lexer edge cases beyond test_parser.py's happy paths: the new
clauses (HAVING, UDF calls), error positions, string literals, and
statement-level validation."""

import pytest

from repro.errors import ParseError
from repro.query.ast import Comparison, SummaryExpr, UdfCall
from repro.query.lexer import tokenize as tokenize_sql
from repro.query.parser import parse_sql


class TestLexer:
    def test_string_with_spaces(self):
        tokens = tokenize_sql("Select 'hello world'")
        strings = [t for t in tokens if t.kind == "string"]
        assert strings[0].value == "hello world"

    def test_keywords_case_insensitive(self):
        kinds = {t.value for t in tokenize_sql("SELECT select SeLeCt")
                 if t.kind == "keyword"}
        assert kinds == {"select"}

    def test_numbers_int_and_float(self):
        tokens = [t for t in tokenize_sql("1 2.5") if t.kind == "number"]
        assert tokens[0].value == 1
        assert tokens[1].value == 2.5

    def test_dollar_token(self):
        assert any(t.kind == "dollar" for t in tokenize_sql("r.$"))

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            tokenize_sql("Select 'oops")


class TestHavingParse:
    def test_having_after_group_by(self):
        stmt = parse_sql(
            "Select g, count(*) From t Group By g Having count(*) > 1"
        )
        assert stmt.having is not None

    def test_having_without_group_by(self):
        stmt = parse_sql("Select count(*) From t Having count(*) > 1")
        assert stmt.having is not None
        assert stmt.group_by == []

    def test_having_with_boolean_logic(self):
        stmt = parse_sql(
            "Select g From t Group By g "
            "Having count(*) > 1 And sum(v) < 10"
        )
        from repro.query.ast import And

        assert isinstance(stmt.having, And)

    def test_no_having_is_none(self):
        assert parse_sql("Select g From t Group By g").having is None


class TestUdfParse:
    def test_udf_with_dollar_arg(self):
        stmt = parse_sql("Select a From t r Where heavy(r.$)")
        assert isinstance(stmt.where, UdfCall)
        assert stmt.where.name == "heavy"
        [arg] = stmt.where.args
        assert isinstance(arg, SummaryExpr)
        assert arg.chain == ()

    def test_udf_with_mixed_args(self):
        stmt = parse_sql("Select a From t r Where atLeast(r.$, 3)")
        assert len(stmt.where.args) == 2

    def test_literal_only_call_is_object_func(self):
        from repro.query.ast import ObjectFunc

        stmt = parse_sql(
            "Select a From t FILTER SUMMARIES getSize() = 2"
        )
        assert isinstance(stmt.summary_filter, Comparison)
        assert isinstance(stmt.summary_filter.left, ObjectFunc)


class TestErrorMessages:
    @pytest.mark.parametrize("bad", [
        "Select",                       # missing select list
        "Select * From",                # missing table
        "Select * From t Where",        # missing predicate
        "Select * From t Order",        # missing BY
        "Select * From t Group",        # missing BY
        "Select * From t Limit x",      # non-numeric limit
        "Zoom In",                      # incomplete zoom
        "Alter Table t",                # missing action
        "Insert Into t",                # missing VALUES
        "Select * From t Where a In [1", # unterminated range
    ])
    def test_malformed_statements_raise(self, bad):
        with pytest.raises(ParseError):
            parse_sql(bad)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("Select a From t extra tokens here")

    def test_empty_statement_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("")


class TestMiscShapes:
    def test_join_on_syntax(self):
        stmt = parse_sql(
            "Select * From a x Join b y On x.k = y.k Where x.v > 1"
        )
        assert len(stmt.tables) == 2
        assert stmt.where is not None  # ON merged into WHERE conjuncts

    def test_multi_order_keys(self):
        stmt = parse_sql("Select * From t Order By a Desc, b Asc, c")
        directions = [d for _e, d in stmt.order_by]
        assert directions == ["DESC", "ASC", "ASC"]

    def test_in_range_sugar(self):
        stmt = parse_sql("Select * From t Where v In [2, 7]")
        from repro.query.ast import And

        assert isinstance(stmt.where, And)
        ops = sorted(c.op for c in stmt.where.items)
        assert ops == ["<=", ">="]

    def test_zoom_with_label_selector(self):
        stmt = parse_sql("Zoom In birds 4 ClassBird1 'Disease'")
        assert stmt.selector == "Disease"

    def test_zoom_with_position_selector(self):
        stmt = parse_sql("Zoom In birds 4 SimCluster 1")
        assert stmt.selector == 1

    def test_alter_indexable_flag(self):
        stmt = parse_sql("Alter Table t Add Indexable X")
        assert stmt.indexable is True
        stmt2 = parse_sql("Alter Table t Add X")
        assert stmt2.indexable is False
