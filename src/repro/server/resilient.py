"""Self-healing client: reconnect-with-backoff + retry-safety rules.

:class:`ResilientQueryClient` wraps :class:`~repro.server.client
.QueryClient` with the PR-5 seeded :class:`~repro.resilience.RetryPolicy`
and transparently survives the transport failures the chaos battery
injects — connection resets, stalled responses, garbled frames, a
server draining for restart — **without ever risking a double
execution**.  The retry-safety rules:

* **Connect failures** always retry (nothing was sent).
* **Overload sheds** (``ServerOverloadedError`` /
  ``ServerShuttingDownError`` error frames) always retry: the server
  guarantees a shed statement never started executing, so re-offering
  it — after backoff, when a worker may be free — is safe even for
  writes.  A ``ProtocolError`` answer (the request frame failed its
  checksum after in-flight corruption) carries the same guarantee and
  retries the same way, after reconnecting.
* **Transport failures with a request in flight** (reset, response
  timeout, garbled or half-delivered response) retry only when the
  statement is *read-only* (SELECT / EXPLAIN / ZOOM / transaction-less
  SHOW-style statements): re-reading is idempotent.  For anything that
  writes, the statement may or may not have executed server-side, so
  the client surfaces a typed
  :class:`~repro.errors.AmbiguousStatementError` carrying the
  underlying cause — the caller must reconcile before retrying.
* **Statement errors** (parse errors, lock timeouts, deadlines, …)
  never retry; they are answers, not failures.

Transactions are deliberately not retried across reconnects: a
reconnect lands on a fresh server session, so an open ``BEGIN`` died
with the old connection (the server aborts it).  Statements issued
inside an explicit transaction are treated as non-idempotent.
"""

from __future__ import annotations

import time

from repro.errors import (
    AmbiguousStatementError,
    ClientTimeoutError,
    ProtocolError,
    ServerError,
)
from repro.resilience import RetryPolicy
from repro.server.client import QueryClient
from repro.server.protocol import MAX_FRAME

#: Statement prefixes that are safe to re-send after an ambiguous
#: transport failure (re-reading committed state is idempotent).
READ_ONLY_PREFIXES = ("select", "explain", "zoom")

#: Error types the server guarantees were shed *before* execution —
#: always retryable, reads and writes alike.
SHED_ERROR_TYPES = ("ServerOverloadedError", "ServerShuttingDownError")

#: A ``ProtocolError`` answer means the request frame never decoded
#: server-side (e.g. its checksum failed after in-flight corruption):
#: the statement never executed, so it is as retryable as a shed — the
#: server hangs up after answering, so the retry reconnects first.
NEVER_EXECUTED_ERROR_TYPES = SHED_ERROR_TYPES + ("ProtocolError",)

#: Transport-level failures that leave an in-flight statement's
#: outcome unknown.
_TRANSPORT_ERRORS = (ConnectionError, ClientTimeoutError, ProtocolError,
                     OSError)


def is_read_only(sql: str) -> bool:
    """True when re-executing ``sql`` cannot change database state."""
    return sql.strip().lower().startswith(READ_ONLY_PREFIXES)


class ResilientQueryClient:
    """A :class:`QueryClient` that heals itself across reconnects.

    ``retry`` is a seeded :class:`RetryPolicy`: ``max_attempts`` bounds
    total attempts per statement (connect failures included) and its
    backoff schedule spaces reconnects.  ``in_txn`` tracking disables
    transparent retry inside explicit transactions.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 retry: RetryPolicy | None = None,
                 connect_timeout: float = 5.0,
                 response_timeout: float | None = None,
                 max_frame: int = MAX_FRAME,
                 sleep=time.sleep):
        self.host = host
        self.port = port
        self.retry = retry if retry is not None else RetryPolicy()
        self.connect_timeout = connect_timeout
        self.response_timeout = response_timeout
        self.max_frame = max_frame
        self._sleep = sleep
        self._client: QueryClient | None = None
        #: statements retried transparently (observability for tests).
        self.retries = 0
        #: reconnects performed (initial connect not counted).
        self.reconnects = 0
        self._in_txn = False

    def __enter__(self) -> "ResilientQueryClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    # -- connection management -----------------------------------------------

    def _connect(self) -> QueryClient:
        if self._client is None:
            self._client = QueryClient(
                self.host, self.port,
                connect_timeout=self.connect_timeout,
                response_timeout=self.response_timeout,
                max_frame=self.max_frame,
            )
        return self._client

    def _drop_connection(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None
            self.reconnects += 1
        # A dead connection killed any server-side transaction with it.
        self._in_txn = False

    # -- execution ------------------------------------------------------------

    def execute(self, sql: str, timeout: float | None = None):
        """Run one statement with transparent, outcome-safe retries."""
        return self._request_with_retry(
            sql, lambda client: client.execute(sql, timeout=timeout)
        )

    def health(self) -> dict:
        """Fetch the server's health snapshot (always safe to retry)."""
        return self._request_with_retry(
            "select", lambda client: client.health()
        )

    def _request_with_retry(self, sql: str, send):
        stripped = sql.strip().lower()
        attempt = 0
        last_error: BaseException | None = None
        while attempt < self.retry.max_attempts:
            attempt += 1
            try:
                client = self._connect()
            except OSError as exc:
                # Nothing was ever sent: connect failures always retry.
                last_error = exc
                self._backoff(attempt)
                continue
            try:
                result = send(client)
            except ServerError as exc:
                if (exc.error_type in NEVER_EXECUTED_ERROR_TYPES
                        and not self._in_txn):
                    # Shed (or never even decoded) before execution:
                    # safe to re-offer, even a write — but not inside
                    # an explicit transaction (the reconnect would land
                    # on a fresh session), so only autocommit
                    # statements ride through.
                    last_error = exc
                    self.retries += 1
                    if exc.error_type != "ServerOverloadedError":
                        # Draining servers and framing breaches drop
                        # the connection with the answer; reconnect
                        # before retrying.
                        self._drop_connection()
                    self._backoff(attempt)
                    continue
                if exc.error_type in ("LockTimeoutError",
                                      "TransactionAbortedError"):
                    # The server force-aborted the open transaction.
                    self._in_txn = False
                raise
            except _TRANSPORT_ERRORS as exc:
                in_flight = client.request_in_flight
                was_in_txn = self._in_txn
                self._drop_connection()
                last_error = exc
                if in_flight and (was_in_txn or not is_read_only(sql)):
                    raise AmbiguousStatementError(
                        "connection lost with the statement in flight: "
                        "it may or may not have executed server-side "
                        f"({type(exc).__name__}: {exc}); reconcile "
                        "before retrying",
                        cause=exc,
                    ) from exc
                self.retries += 1
                self._backoff(attempt)
                continue
            self._track_txn(stripped)
            return result
        raise last_error if last_error is not None else RuntimeError(
            "retry budget exhausted with no recorded error"
        )  # pragma: no cover - last_error is always set on exhaustion

    def _track_txn(self, stripped_sql: str) -> None:
        """Mirror the server-side transaction state so retry-safety can
        refuse transparent retries inside an explicit transaction."""
        if stripped_sql.startswith("begin"):
            self._in_txn = True
        elif stripped_sql.startswith(("commit", "abort", "rollback")):
            self._in_txn = False

    def _backoff(self, attempt: int) -> None:
        if attempt < self.retry.max_attempts:
            delay = self.retry.delay(attempt)
            if delay > 0:
                self._sleep(delay)
