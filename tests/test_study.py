"""Tests for the simulated usability studies (Figures 2 and 16)."""

import pytest

from repro.study import (
    GroupResult,
    HumanModel,
    simulate_motivating_study,
    simulate_usability_study,
)
from repro.study.dataset import (
    REVISED_COUNT,
    SWAN_COUNT,
    StudyConfig,
    build_study_database,
)

CONFIG = StudyConfig(num_birds=24, scale=0.04, seed=11)


@pytest.fixture(scope="module")
def db():
    return build_study_database(CONFIG)


class TestStudyDataset:
    def test_swan_count(self, db):
        swans = db.sql("Select name From birds Where name Like 'Swan%'")
        assert len(swans) == SWAN_COUNT

    def test_two_identical_size_revisions(self, db):
        v1 = db.sql("Select name From birds")
        v2 = db.sql("Select name From birds_v2")
        assert len(v1) == len(v2) == CONFIG.num_birds

    def test_revision_differences_are_findable(self, db):
        expr = "$.getSummaryObject('ClassBird1').getLabelValue('Disease')"
        diffs = db.sql(
            "Select v1.name From birds v1, birds_v2 v2 "
            f"Where v1.bird_id = v2.bird_id And v1.{expr} <> v2.{expr}"
        )
        assert len(diffs) == REVISED_COUNT

    def test_density_respects_scale(self):
        import random

        config = StudyConfig(scale=0.1)
        rng = random.Random(0)
        densities = [config.density(rng) for _ in range(50)]
        assert all(3 <= d <= 38 for d in densities)

    def test_density_floor(self):
        import random

        config = StudyConfig(scale=0.001)
        assert config.density(random.Random(0)) == 3

    def test_summary_index_built(self, db):
        assert ("birds", "ClassBird1") in db.summary_indexes


class TestHumanModel:
    def test_zero_items_zero_error(self):
        assert HumanModel().error_rates(0) == (0.0, 0.0)

    def test_error_rates_grow_with_fatigue(self):
        model = HumanModel()
        fp_small, fn_small = model.error_rates(model.reference_items)
        fp_big, fn_big = model.error_rates(model.reference_items * 8)
        assert fp_big > fp_small
        assert fn_big > fn_small

    def test_error_rates_at_reference_match_base(self):
        model = HumanModel()
        fp, fn = model.error_rates(model.reference_items)
        assert fp == pytest.approx(model.base_fp)
        assert fn == pytest.approx(model.base_fn)

    def test_error_rates_capped(self):
        model = HumanModel()
        fp, fn = model.error_rates(10**9)
        assert fp <= 0.5
        assert fn <= 0.6


class TestGroupResult:
    def test_accuracy_perfect(self):
        r = GroupResult("g", "Q", 1, 1.0, 0.1, 0.0, 0.0)
        assert r.accuracy == 1.0

    def test_accuracy_symmetric(self):
        r = GroupResult("g", "Q", 1, 1.0, 0.1, 0.2, 0.4)
        assert r.accuracy == pytest.approx(0.7)

    def test_total_time(self):
        r = GroupResult("g", "Q", 1, 10.0, 2.5, 0.0, 0.0)
        assert r.total_s == pytest.approx(12.5)

    def test_describe_feasible_and_not(self):
        ok = GroupResult("g", "Q1", 1, 1.0, 0.0, 0.0, 0.0)
        bad = GroupResult("g", "Q2", 1, 1.0, 0.0, 0.0, 0.0,
                          feasible=False, notes="too many")
        assert "acc" in ok.describe()
        assert "infeasible" in bad.describe()


class TestMotivatingStudy:
    @pytest.fixture(scope="class")
    def report(self, db):
        return simulate_motivating_study(db, config=CONFIG)

    def test_six_cells(self, report):
        assert len(report.results) == 6

    def test_insightnotes_always_perfect(self, report):
        for q in ("Q1", "Q2", "Q3"):
            r = report.result("InsightNotes", q)
            assert r.accuracy == 1.0
            assert r.feasible

    def test_q1_qualifying_tuples(self, report):
        assert report.result("InsightNotes", "Q1").qualifying == SWAN_COUNT

    def test_q2_three_groups(self, report):
        assert report.result("InsightNotes", "Q2").qualifying == 3

    def test_raw_group_slower_on_q1_q2(self, report):
        for q in ("Q1", "Q2"):
            fast = report.result("InsightNotes", q)
            slow = report.result("Raw-Annotations", q)
            assert slow.total_s > fast.total_s

    def test_raw_group_accumulates_errors(self, report):
        r = report.result("Raw-Annotations", "Q1")
        assert r.false_negatives > 0
        assert r.accuracy < 1.0

    def test_q3_raw_group_infeasible_at_paper_scale(self, report):
        assert not report.result("Raw-Annotations", "Q3").feasible

    def test_q3_insightnotes_needs_manual_sort(self, report):
        r = report.result("InsightNotes", "Q3")
        assert r.human_s > HumanModel().write_query_s  # sort cost charged

    def test_report_str_mentions_all_queries(self, report):
        text = str(report)
        for q in ("Q1", "Q2", "Q3"):
            assert q in text

    def test_deterministic(self, db):
        a = simulate_motivating_study(db, config=CONFIG, seed=3)
        b = simulate_motivating_study(db, config=CONFIG, seed=3)
        for x, y in zip(a.results, b.results):
            assert x.false_positives == y.false_positives
            assert x.false_negatives == y.false_negatives


class TestUsabilityStudy:
    @pytest.fixture(scope="class")
    def report(self, db):
        return simulate_usability_study(db, config=CONFIG)

    def test_six_cells(self, report):
        assert len(report.results) == 6

    def test_plus_group_all_automated(self, report):
        for q in ("Q1", "Q2", "Q3"):
            r = report.result("InsightNotes+", q)
            assert r.accuracy == 1.0
            assert r.human_s == HumanModel().write_query_s

    def test_plus_group_faster_everywhere(self, report):
        for q in ("Q1", "Q2"):
            plus = report.result("InsightNotes+", q)
            basic = report.result("InsightNotes", q)
            assert plus.total_s < basic.total_s

    def test_q2_finds_revised_tuples(self, report):
        assert report.result("InsightNotes+", "Q2").qualifying == REVISED_COUNT

    def test_q3_basic_infeasible(self, report):
        assert not report.result("InsightNotes", "Q3").feasible

    def test_q3_plus_selects_diseased(self, db, report):
        expr = "$.getSummaryObject('ClassBird1').getLabelValue('Disease')"
        expected = db.sql(f"Select name From birds r Where r.{expr} > 3")
        assert report.result("InsightNotes+", "Q3").qualifying == len(expected)

    def test_rows_for_filters_by_query(self, report):
        rows = report.rows_for("Q1")
        assert len(rows) == 2
        assert {r.group for r in rows} == {"InsightNotes", "InsightNotes+"}

    def test_result_lookup_missing_raises(self, report):
        with pytest.raises(KeyError):
            report.result("NoSuchGroup", "Q1")
