"""Exception hierarchy for the repro engine.

Every error raised by the engine derives from :class:`ReproError`, so
applications can catch a single base class. Sub-classes mirror the major
subsystems (storage, catalog, query, index, summaries).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro engine."""


class StorageError(ReproError):
    """Raised for page/heap/buffer-pool level failures."""


class PageFullError(StorageError):
    """Raised when a record does not fit into the target page."""


class RecordNotFoundError(StorageError):
    """Raised when a RID or OID does not resolve to a live record."""


class BufferPoolError(StorageError):
    """Raised when the buffer pool cannot satisfy a pin request."""


class CorruptPageError(StorageError):
    """Raised when a page read back from disk fails its checksum or cannot
    be parsed into a structurally valid page (torn write, bit rot)."""


class InjectedFaultError(StorageError):
    """Raised by the fault-injection layer for a scheduled fail-stop fault.

    After a fail-stop fires the faulty disk is *dead*: every subsequent
    operation raises this error too, modelling a crashed device.
    """


class TransientIOError(InjectedFaultError):
    """Raised for a scheduled transient I/O fault: the operation failed but
    the disk remains usable — a retry may succeed."""


class CircuitOpenError(StorageError):
    """Raised by the resilience layer's circuit breaker when a device has
    failed repeatedly and calls are being rejected fast instead of
    hammering the dying device. The breaker re-admits a trial call after
    its cooldown (half-open state)."""


class IntegrityError(ReproError):
    """Raised by ``Database.check_integrity(raise_on_error=True)`` when any
    structural or cross-structure invariant is violated."""


class WALError(StorageError):
    """Raised for write-ahead-log failures: bad record types, appends to a
    truncated region, or a writer driven against a dead log device."""


class IndexError_(ReproError):
    """Raised for B-Tree / Summary-BTree failures.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class DuplicateKeyError(IndexError_):
    """Raised when inserting an entry that already exists in a unique index."""


class CatalogError(ReproError):
    """Raised for schema / catalog inconsistencies."""


class SchemaError(CatalogError):
    """Raised when a row does not match its table schema."""


class SummaryError(ReproError):
    """Raised for summary-object / summary-instance failures."""


class UnknownInstanceError(SummaryError):
    """Raised when a summary instance name does not resolve."""


class QueryError(ReproError):
    """Raised for SQL parse / bind / execution failures."""


class ParseError(QueryError):
    """Raised by the lexer/parser on malformed SQL."""


class BindError(QueryError):
    """Raised when names in a query do not resolve against the catalog."""


class PlanError(QueryError):
    """Raised when the optimizer cannot produce a physical plan."""


class QueryTimeoutError(QueryError):
    """Raised when a statement exceeds its deadline.

    Carries the partial progress made before the deadline fired in
    ``partial`` (rows produced so far, elapsed seconds, checkpoint count).
    """

    def __init__(self, message: str, partial: dict | None = None):
        super().__init__(message)
        self.partial = partial or {}


class QueryCancelledError(QueryError):
    """Raised when a statement is cooperatively cancelled (REPL Ctrl-C,
    :meth:`ExecutionContext.cancel`). Carries partial progress like
    :class:`QueryTimeoutError`."""

    def __init__(self, message: str, partial: dict | None = None):
        super().__init__(message)
        self.partial = partial or {}


class CorruptImageError(StorageError, QueryError):
    """Raised when a database image file is truncated, bit-flipped, or
    otherwise not a loadable image.

    Inherits both :class:`StorageError` (it is a storage-level corruption)
    and :class:`QueryError` (images are loaded through the query-facing
    ``Database.load`` API, whose callers historically caught QueryError).
    """


class TransactionError(QueryError):
    """Raised for transaction-control misuse (BEGIN inside an open
    transaction, COMMIT/ABORT with none open, DDL inside a transaction)
    and for commit-path failures."""


class TransactionAbortedError(TransactionError):
    """Raised when a transaction was force-aborted by the engine (e.g. as
    a deadlock victim after a lock-wait timeout): every buffered change
    was discarded and the session is back in autocommit mode."""


class LockTimeoutError(TransactionError):
    """Raised when a table lock could not be acquired before the
    deadline — the engine's timeout-based deadlock detection. The waiting
    transaction is chosen as the victim and auto-aborted."""


class ProtocolError(ReproError):
    """Raised on a malformed wire frame (bad length prefix, oversized
    payload, checksum mismatch, undecodable JSON, wrong request shape)."""


class ServerError(ReproError):
    """Client-side mirror of an error response from the server: carries
    the original error type name in ``error_type``."""

    def __init__(self, message: str, error_type: str = "ServerError"):
        super().__init__(message)
        self.error_type = error_type


class ServerOverloadedError(ReproError):
    """Raised (and sent as a typed error frame) when the server sheds a
    connection or statement under admission control: the connection cap
    was reached, the statement queue was full, or the queue deadline
    passed before a worker picked the statement up.

    The shed request was **never executed** — retrying it is always
    safe, which is what lets :class:`~repro.server.resilient.
    ResilientQueryClient` transparently retry even writes on overload.
    """


class ServerShuttingDownError(ServerOverloadedError):
    """Raised for statements rejected because the server is draining:
    it has stopped accepting work and is finishing (or cancelling)
    what's in flight. Like its parent, the statement was never
    executed and a retry — against this server after restart, or
    another replica — is safe."""


class ClientTimeoutError(ReproError):
    """Raised by :class:`~repro.server.client.QueryClient` when the
    server does not produce a complete response within the client's
    ``response_timeout``. The socket is closed (a half-read frame can
    never be resynchronized), so the connection is gone; whether the
    statement executed server-side is unknown."""


class ReplicationError(ReproError):
    """Base class for replication-link failures: stream protocol
    violations, bootstrap failures, a primary that no longer retains the
    requested log range."""


class ReplicationDivergenceError(ReplicationError):
    """Raised when the replica detects that its applied log prefix no
    longer matches the primary's stream — an LSN/positional mismatch or a
    CRC failure at an offset the replica believed durable. The replica's
    state cannot be trusted past its last verified prefix; the standard
    response is an automatic re-bootstrap from a fresh primary snapshot."""


class ReadOnlyReplicaError(QueryError):
    """Raised (and sent as a typed error frame) when a mutating
    statement — DDL, DML, annotation ops, or BEGIN — is submitted to a
    replica. Replicas apply the primary's WAL stream only; route writes
    to the primary (or ``promote`` the replica first)."""


class ReplicaLaggingError(ReproError):
    """Raised when a bounded-staleness read asked the replica to be
    caught up through ``min_lsn`` but the replica had not applied that
    far within the wait deadline. Carries the replica's applied LSN so
    the client can decide to wait longer, retry elsewhere, or accept
    staler data.

    The statement was **never executed** — retrying it (here or on
    another endpoint) is always safe."""

    def __init__(self, message: str, applied_lsn: int = 0,
                 min_lsn: int = 0):
        super().__init__(message)
        self.applied_lsn = applied_lsn
        self.min_lsn = min_lsn


class AmbiguousStatementError(ReproError):
    """Raised by :class:`~repro.server.resilient.ResilientQueryClient`
    when a connection died after a non-read-only statement was sent but
    before its response arrived: the statement may or may not have
    executed, so a transparent retry could apply it twice. The caller
    must reconcile (re-read state) before retrying.

    ``cause`` carries the underlying transport error."""

    def __init__(self, message: str, cause: BaseException | None = None):
        super().__init__(message)
        self.cause = cause
