"""Replication benchmarks — lag under ingest, and read scale-out.

Two macro benches over the PR-10 replication stack:

* **Lag curve** — a primary ingests a sustained insert + annotation
  workload while one replica streams.  We sample the link's byte lag
  across the ingest and then time the drain back to zero once the
  ingest stops.  The shape to look for: lag stays bounded (the applier
  keeps pace with the poll cadence rather than growing without bound),
  and the drain completes in a handful of poll intervals.
* **Read scale-out** — the closed-loop client model of
  ``bench_concurrency.py``: each reader fires a SELECT mix, consumes
  every row, then thinks for a fixed interval before the next request.
  Phase one runs the per-node client complement against the primary
  alone; phase two runs the same per-node complement against the
  primary **plus two streaming replicas** (verified caught up, serving
  identical rows).  Aggregate statements/sec across the three nodes
  must reach the gate over the single node.

Acceptance gate: 1 primary + 2 replicas ≥ 1.8x single-node read
throughput (asserted at every scale; the CI smoke runs quick).
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.bench import FigureTable
from repro.catalog.schema import Column
from repro.core.database import Database
from repro.replication import ReplicaServer, ReplicationEndpoint
from repro.server import QueryClient, QueryServer
from repro.storage.record import ValueType
from repro.wal.device import MemoryWALDevice

#: closed-loop requests per reader, by scale preset.
REQUESTS = {"quick": 80, "default": 200, "full": 400}

#: ingest operations for the lag curve, by scale preset.
INGEST_OPS = {"quick": 150, "default": 400, "full": 800}

#: per-statement think interval (closed-loop application model).
THINK_SECONDS = 0.01

#: readers pinned to each served node.
READERS_PER_NODE = 2

SCALE_OUT_GATE = 1.8


class _Node:
    """A server (primary or replica) on its own event-loop thread."""

    def __init__(self):
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )
        self._thread.start()

    def _start(self, coro):
        asyncio.run_coroutine_threadsafe(coro, self.loop).result(10)

    def _shutdown(self, coro):
        asyncio.run_coroutine_threadsafe(coro, self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(10)
        self.loop.close()


class _Primary(_Node):
    def __init__(self, rows: int):
        super().__init__()
        self.db = Database(buffer_pages=256)
        self.db.attach_wal(MemoryWALDevice())
        self.db.create_table(
            "t", [Column("name", ValueType.TEXT), Column("v", ValueType.INT)]
        )
        for i in range(rows):
            self.db.insert("t", [f"r{i}", i % 50])
        self.server = QueryServer(self.db, port=0, workers=2)
        ReplicationEndpoint(self.server).install()
        self._start(self.server.start())

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self):
        self._shutdown(self.server.stop())


class _Replica(_Node):
    def __init__(self, primary_port: int):
        super().__init__()
        self.replica = ReplicaServer(
            "127.0.0.1", primary_port, port=0, poll_interval=0.005,
            workers=2,
        )
        self._start(self.replica.start())
        assert self.replica.wait_ready(10), "replica bootstrap timed out"

    @property
    def port(self) -> int:
        return self.replica.port

    def stop(self):
        self._shutdown(self.replica.stop())


def _reader(port: int, requests: int, out: list, idx: int):
    client = QueryClient("127.0.0.1", port)
    sink = 0
    started = time.perf_counter()
    try:
        for i in range(requests):
            if i % 2 == 0:
                result = client.execute("Select name, v From t")
            else:
                result = client.execute(
                    "Select name, v From t r Where r.v < 25"
                )
            sink += result["row_count"]
            time.sleep(THINK_SECONDS)
        out[idx] = requests / (time.perf_counter() - started)
    finally:
        client.close()


def _read_phase(ports: list[int], requests: int) -> float:
    """READERS_PER_NODE closed-loop readers pinned to every port;
    returns aggregate statements/sec."""
    slots = len(ports) * READERS_PER_NODE
    results = [0.0] * slots
    threads = [
        threading.Thread(
            target=_reader,
            args=(ports[i % len(ports)], requests, results, i),
            daemon=True,
        )
        for i in range(slots)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(300)
    assert all(r > 0 for r in results), "a reader died or hung"
    return sum(results)


@pytest.mark.benchmark(group="replication")
def test_replication_lag_curve(benchmark, preset, figure_writer):
    ops = INGEST_OPS.get(preset.name, 200)
    primary = _Primary(rows=100)
    replica = _Replica(primary.port)
    link = replica.replica.link
    try:
        assert link.wait_caught_up(10)
        samples: list[int] = []

        def ingest():
            db = primary.db
            for i in range(ops):
                oid = db.insert("t", [f"ingest{i}", i % 50])
                if i % 4 == 0:
                    db.add_annotation(
                        f"note {i} on tuple", table="t", oid=oid
                    )
                if i % 10 == 0:
                    samples.append(link.lag_bytes())

        started = time.perf_counter()
        benchmark.pedantic(ingest, rounds=1, iterations=1)
        ingest_s = time.perf_counter() - started
        drain_started = time.perf_counter()
        assert link.wait_caught_up(30), "replica never drained the lag"
        drain_ms = (time.perf_counter() - drain_started) * 1000
        assert link.lag_bytes() == 0

        table = figure_writer.setdefault(
            "replication_lag",
            FigureTable(
                "Replication lag under sustained ingest", unit="bytes"
            ),
        )
        table.add("peak lag", preset.name, max(samples))
        table.add("mean lag", preset.name,
                  sum(samples) / max(1, len(samples)))
        table.add("drain ms", preset.name, drain_ms)
        table.add("ingest ops/s", preset.name, ops / ingest_s)
    finally:
        replica.stop()
        primary.stop()


@pytest.mark.benchmark(group="replication")
def test_read_scale_out_gate(benchmark, preset, figure_writer):
    requests = REQUESTS.get(preset.name, 100)
    rows = max(60, preset.num_birds)
    primary = _Primary(rows=rows)
    replicas = [_Replica(primary.port) for _ in range(2)]
    try:
        for r in replicas:
            assert r.replica.link.wait_caught_up(10)
            # A replica must serve the same rows it will be read for.
            with QueryClient("127.0.0.1", r.port) as c:
                assert c.execute("Select * From t")["row_count"] == rows

        def run_phases():
            single = _read_phase([primary.port], requests)
            scaled = _read_phase(
                [primary.port] + [r.port for r in replicas], requests
            )
            return single, scaled

        single, scaled = benchmark.pedantic(
            run_phases, rounds=1, iterations=1
        )
    finally:
        for r in replicas:
            r.stop()
        primary.stop()

    speedup = scaled / single
    table = figure_writer.setdefault(
        "replication_scale_out",
        FigureTable(
            "Read scale-out — closed-loop readers, aggregate stmts/sec",
            unit="stmt/s",
        ),
    )
    table.add("1 node", preset.name, single)
    table.add("1 primary + 2 replicas", preset.name, scaled)

    assert speedup >= SCALE_OUT_GATE, (
        f"three nodes reached only {speedup:.2f}x the single-node read "
        f"throughput ({scaled:.0f} vs {single:.0f} stmt/s); the gate "
        f"is {SCALE_OUT_GATE}x"
    )
