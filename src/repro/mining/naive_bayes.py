"""Multinomial Naive Bayes text classifier (paper reference [10]).

The classifier is trained on seed examples per class label and then applied
to every incoming annotation by the Classifier summary-instance maintenance
path. Laplace (add-one) smoothing keeps unseen tokens from zeroing a class.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict

from repro.errors import SummaryError
from repro.mining.text import tokenize


class NaiveBayesClassifier:
    """Multinomial NB over word tokens with Laplace smoothing.

    Parameters
    ----------
    labels:
        The closed set of class labels, in the order they were declared when
        the summary instance was created (the paper keys ``getLabelName(i)``
        off this order).
    fallback_label:
        Label assigned when a document has no known tokens; defaults to the
        last label (conventionally "Other").
    """

    def __init__(self, labels: list[str], fallback_label: str | None = None):
        if not labels:
            raise SummaryError("classifier needs at least one label")
        self.labels = list(labels)
        self.fallback_label = fallback_label or self.labels[-1]
        if self.fallback_label not in self.labels:
            raise SummaryError(
                f"fallback label {self.fallback_label!r} not in labels"
            )
        self._token_counts: dict[str, Counter] = {l: Counter() for l in labels}
        self._total_tokens: dict[str, int] = defaultdict(int)
        self._doc_counts: dict[str, int] = defaultdict(int)
        self._vocabulary: set[str] = set()

    @property
    def is_trained(self) -> bool:
        return sum(self._doc_counts.values()) > 0

    def train(self, examples: list[tuple[str, str]]) -> None:
        """Add ``(text, label)`` training examples (incremental)."""
        for text, label in examples:
            if label not in self._token_counts:
                raise SummaryError(f"unknown label {label!r}")
            tokens = tokenize(text)
            self._token_counts[label].update(tokens)
            self._total_tokens[label] += len(tokens)
            self._doc_counts[label] += 1
            self._vocabulary.update(tokens)

    def log_scores(self, text: str) -> dict[str, float]:
        """Per-label log posterior (unnormalized) for ``text``."""
        if not self.is_trained:
            raise SummaryError("classifier has not been trained")
        tokens = [t for t in tokenize(text) if t in self._vocabulary]
        total_docs = sum(self._doc_counts.values())
        vocab_size = len(self._vocabulary)
        scores: dict[str, float] = {}
        for label in self.labels:
            # Smoothed prior keeps labels with no seed docs representable.
            prior = (self._doc_counts[label] + 1) / (total_docs + len(self.labels))
            score = math.log(prior)
            denom = self._total_tokens[label] + vocab_size
            counts = self._token_counts[label]
            for token in tokens:
                score += math.log((counts[token] + 1) / denom)
            scores[label] = score
        return scores

    def classify(self, text: str) -> str:
        """Most likely label for ``text``."""
        tokens = [t for t in tokenize(text) if t in self._vocabulary]
        if not tokens:
            return self.fallback_label
        scores = self.log_scores(text)
        return max(self.labels, key=lambda l: scores[l])
