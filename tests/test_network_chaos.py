"""Network chaos battery: the server under injected transport failure.

A seeded :class:`~repro.faults.network.NetworkFaultPlan` subjects the
full client/server stack to connection resets, read/write stalls,
partial response frames, and garbled bytes while a multi-threaded
workload of reads, autocommit writes, and explicit transactions runs
over it.  The invariants, per ISSUE acceptance criteria:

* every statement outcome is a *typed* error or a *correct* result —
  never a garbled success (the frame checksums make this structural);
* no transaction is stranded and no table lock is leaked once the
  storm passes;
* every write the client saw acknowledged is durably present;
* the engine's integrity check still passes.

The battery runs across a fixed seed matrix (plus ``REPRO_FAULT_SEED``
from the scheduled CI sweep), so a failure is reproducible from its
seed alone.
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

from repro.catalog.schema import Column
from repro.core.database import Database
from repro.errors import (
    AmbiguousStatementError,
    ClientTimeoutError,
    ProtocolError,
    ServerError,
)
from repro.faults import NetworkFaultPlan
from repro.resilience import RetryPolicy
from repro.server import QueryClient, ResilientQueryClient
from repro.storage.record import ValueType
from tests.test_server import ServerHarness, wait_for
from tests.test_server_overload import held_locks

#: Fixed battery seeds; the scheduled CI sweep adds REPRO_FAULT_SEED.
SEEDS = [0, 1, 2, 3, 4]
_env_seed = os.environ.get("REPRO_FAULT_SEED")
if _env_seed is not None and int(_env_seed) not in SEEDS:
    SEEDS.append(int(_env_seed))

#: The only acceptable statement outcomes besides a correct result.
TYPED_FAILURES = (ServerError, ProtocolError, ClientTimeoutError,
                  AmbiguousStatementError, ConnectionError, OSError)


def chaos_plan(seed: int) -> NetworkFaultPlan:
    """A periodic storm touching every fault kind at every I/O point,
    with seed-varied phases and periods."""
    rng = random.Random(seed)
    plan = NetworkFaultPlan(seed)
    plan.garble_write(at=rng.randrange(1, 5), period=rng.randrange(5, 9))
    plan.reset_write(at=rng.randrange(2, 6), period=rng.randrange(7, 11))
    plan.partial_write(at=rng.randrange(3, 7), period=rng.randrange(8, 12))
    plan.garble_read(at=rng.randrange(2, 6), period=rng.randrange(6, 10))
    plan.reset_read(at=rng.randrange(4, 8), period=rng.randrange(9, 13))
    plan.stall_read(at=rng.randrange(3, 7), seconds=0.05,
                    period=rng.randrange(8, 12))
    plan.reset_accept(at=rng.randrange(3, 6), period=rng.randrange(6, 9))
    return plan


def make_db() -> Database:
    db = Database(buffer_pages=32)
    db.create_table("t", [Column("name", ValueType.TEXT),
                          Column("v", ValueType.INT)])
    for i in range(10):
        db.insert("t", [f"seed{i}", i])
    return db


def result_is_wellformed(result: dict) -> bool:
    """A SELECT result that decoded must also be *right-shaped*: the
    checksum should make a wrong-but-parseable result impossible."""
    if result.get("columns") != ["name", "v"]:
        return False
    rows = result.get("rows")
    if not isinstance(rows, list) or result.get("row_count") != len(rows):
        return False
    return all(
        isinstance(row, list) and len(row) == 2
        and isinstance(row[0], str) and isinstance(row[1], int)
        for row in rows
    )


@pytest.mark.parametrize("seed", SEEDS)
class TestChaosBattery:
    def test_storm_yields_typed_errors_or_correct_results(self, seed):
        db = make_db()
        h = ServerHarness(db, workers=4, max_connections=32,
                          queue_timeout=1.0,
                          network_faults=chaos_plan(seed))
        bad: list[str] = []           # invariant violations
        acked: list[str] = []         # writes the client saw succeed
        acked_lock = threading.Lock()

        def worker(wid: int):
            client: QueryClient | None = None
            for i in range(20):
                name = f"w{wid}-{i}"
                try:
                    if client is None:
                        client = QueryClient(port=h.port,
                                             response_timeout=3.0)
                    if i % 3 == 0:
                        result = client.execute("Select name, v From t",
                                                timeout=10)
                        if not result_is_wellformed(result):
                            bad.append(f"garbled success: {result!r}")
                    elif i % 3 == 1:
                        client.execute(
                            f"Insert Into t Values ('{name}', {i})",
                            timeout=10)
                        with acked_lock:
                            acked.append(name)
                    else:
                        client.execute("BEGIN", timeout=10)
                        client.execute(
                            f"Insert Into t Values ('{name}', {i})",
                            timeout=10)
                        client.execute("COMMIT", timeout=10)
                        with acked_lock:
                            acked.append(name)
                except TYPED_FAILURES:
                    # A typed failure is an acceptable outcome; the
                    # connection is suspect — reconnect.
                    if client is not None:
                        client.close()
                        client = None
                except Exception as exc:  # pragma: no cover
                    bad.append(f"untyped failure: {exc!r}")
                    if client is not None:
                        client.close()
                        client = None
            if client is not None:
                client.close()

        threads = [threading.Thread(target=worker, args=(w,), daemon=True)
                   for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
        assert not any(t.is_alive() for t in threads), "worker hung"
        assert bad == [], bad
        # Faults genuinely fired — the battery exercised something.
        assert db.metrics.get("server.faults.injected") > 0

        # Storm over, clients gone: nothing may be stranded.
        assert wait_for(lambda: len(db.txn_manager.active) == 0), \
            f"stranded transactions: {db.txn_manager.active}"
        assert wait_for(lambda: not held_locks(db)), \
            f"leaked locks: {held_locks(db)}"

        # Every acknowledged write is durably visible (reads bypass the
        # faulty network on purpose: the invariant is about the engine).
        names = set(db.sql("Select name, v From t").column("name"))
        missing = [name for name in acked if name not in names]
        assert missing == [], f"acked writes lost: {missing}"
        report = db.check_integrity()
        assert report.ok, report
        h.stop()

    def test_resilient_client_heals_read_workload(self, seed):
        """Reads are always retry-safe: with a retry budget, a
        ResilientQueryClient must push a read-only workload through the
        same storm with zero caller-visible failures."""
        db = make_db()
        h = ServerHarness(db, workers=4, max_connections=32,
                          queue_timeout=1.0,
                          network_faults=chaos_plan(seed))
        client = ResilientQueryClient(
            port=h.port, response_timeout=3.0,
            retry=RetryPolicy(max_attempts=10, base_delay=0.01,
                              max_delay=0.05, seed=seed),
        )
        try:
            for _ in range(30):
                result = client.execute("Select name, v From t",
                                        timeout=10)
                assert result_is_wellformed(result)
            health = client.health()
            assert health["status"] == "ok"
        finally:
            client.close()
        # The storm actually made the client work for it.
        assert db.metrics.get("server.faults.injected") > 0
        assert wait_for(lambda: len(db.txn_manager.active) == 0)
        assert wait_for(lambda: not held_locks(db))
        h.stop()


class TestTargetedFaults:
    def test_stalled_response_trips_client_timeout(self):
        db = make_db()
        plan = NetworkFaultPlan(7).stall_write(at=0, seconds=2.0, times=1)
        h = ServerHarness(db, workers=2, max_connections=8,
                          network_faults=plan)
        client = QueryClient(port=h.port, response_timeout=0.3)
        started = time.monotonic()
        with pytest.raises(ClientTimeoutError):
            client.execute("Select * From t")
        assert time.monotonic() - started < 1.5
        # The timed-out socket was closed: the server notices the
        # hangup and the session unwinds without leaking anything.
        assert wait_for(lambda: len(db.txn_manager.active) == 0)
        assert wait_for(lambda: not held_locks(db))
        assert db.metrics.get("server.faults.injected.stall") == 1
        with QueryClient(port=h.port) as fresh:
            assert fresh.execute("Select * From t")["row_count"] == 10
        h.stop()

    def test_garbled_response_is_typed_never_wrong(self):
        """Every response write garbled: no statement may ever look
        like a success with wrong bytes — the checksum (or the length
        check) must turn each one into a typed ProtocolError."""
        db = make_db()
        plan = NetworkFaultPlan(11).garble_write(at=0, period=1)
        h = ServerHarness(db, workers=2, max_connections=8,
                          network_faults=plan)
        outcomes: list[str] = []
        for _ in range(10):
            with QueryClient(port=h.port, response_timeout=2.0) as client:
                try:
                    result = client.execute("Select name, v From t")
                except (ProtocolError, ClientTimeoutError,
                        ConnectionError):
                    outcomes.append("typed")
                else:  # pragma: no cover - would be the invariant breach
                    outcomes.append("success")
                    assert result["row_count"] == 10
        assert outcomes.count("typed") == 10
        assert wait_for(lambda: not held_locks(db))
        h.stop()

    def test_garbled_request_is_never_executed(self):
        """Bytes corrupted on the way *in* must never execute: the
        request checksum rejects the frame before the parser sees it."""
        db = make_db()
        plan = NetworkFaultPlan(13).garble_read(at=0, times=1)
        h = ServerHarness(db, workers=2, max_connections=8,
                          network_faults=plan)
        with QueryClient(port=h.port, response_timeout=2.0) as client:
            with pytest.raises((ServerError, ProtocolError,
                                ConnectionError)):
                client.execute("Insert Into t Values ('garbled', 1)")
        assert len(db.sql(
            "Select * From t r Where r.name = 'garbled'")) == 0
        assert db.metrics.get("server.faults.injected.garble") == 1
        h.stop()

    def test_partial_response_frame_is_never_a_short_success(self):
        db = make_db()
        plan = NetworkFaultPlan(17).partial_write(at=0, times=1)
        h = ServerHarness(db, workers=2, max_connections=8,
                          network_faults=plan)
        with QueryClient(port=h.port, response_timeout=2.0) as client:
            with pytest.raises((ProtocolError, ClientTimeoutError,
                                ConnectionError)):
                client.execute("Select * From t")
        with QueryClient(port=h.port) as fresh:
            assert fresh.execute("Select * From t")["row_count"] == 10
        assert db.metrics.get(
            "server.faults.injected.partial_frame") == 1
        h.stop()

    def test_ambiguous_write_surfaces_and_is_reconcilable(self):
        """A reset while a write's response is in flight: the write
        *did* execute server-side, so the resilient client must refuse
        to silently retry it and raise AmbiguousStatementError — the
        caller reconciles (the row is there exactly once)."""
        db = make_db()
        plan = NetworkFaultPlan(19).reset_write(at=0, times=1)
        h = ServerHarness(db, workers=2, max_connections=8,
                          network_faults=plan)
        client = ResilientQueryClient(
            port=h.port, response_timeout=3.0,
            retry=RetryPolicy(max_attempts=5, base_delay=0.01, seed=19),
        )
        with pytest.raises(AmbiguousStatementError):
            client.execute("Insert Into t Values ('ambiguous', 1)")
        # Reconcile: the write landed exactly once, no duplicate retry.
        assert len(db.sql(
            "Select * From t r Where r.name = 'ambiguous'")) == 1
        # The same client heals for the next (read) statement.
        assert client.execute("Select * From t")["row_count"] == 11
        assert client.reconnects >= 1
        client.close()
        h.stop()
