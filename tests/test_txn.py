"""Transaction + lock-manager unit tests (DESIGN.md §5g).

Covers the single-threaded contract of the concurrency layer:

* BEGIN/COMMIT/ABORT semantics over sessions — buffered redo, no
  read-your-writes, abort discards, commit applies atomically;
* WAL framing of commit groups and committed-only recovery (an
  uncommitted transaction contributes *nothing* to the durable log);
* the striped lock manager — shared concurrency, exclusive mutual
  exclusion, S→X upgrade, timeout-as-deadlock-victim, release_all;
* session victim semantics: a lock timeout auto-aborts the open
  transaction and frees its locks.

The multi-threaded battery lives in ``test_concurrency_battery.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.catalog.schema import Column
from repro.core.database import Database
from repro.errors import (
    LockTimeoutError,
    RecordNotFoundError,
    TransactionError,
)
from repro.storage.record import ValueType
from repro.txn.locks import ANNOTATION_RESOURCE, StripedLockManager
from repro.wal.device import MemoryWALDevice
from repro.wal.record import WALRecordType, scan_records


@pytest.fixture(autouse=True)
def _pin_default_session_nonlocking(monkeypatch):
    """This suite drives locking through *explicit* sessions and peeks
    at committed state via ``db.sql`` as an oracle; a REPRO_LOCKS=1
    environment (the CI lock leg) would turn that oracle into a second
    locking session that rightly contends with the session under test.
    Pin it off — the env path itself is covered by an explicit setenv
    test below."""
    monkeypatch.delenv("REPRO_LOCKS", raising=False)


def make_db(wal: bool = False) -> Database:
    db = Database(buffer_pages=32)
    if wal:
        db.attach_wal()
    db.create_table("t", [Column("name", ValueType.TEXT),
                          Column("v", ValueType.INT)])
    for i in range(5):
        db.insert("t", [f"r{i}", i])
    return db


def names(db: Database) -> list[str]:
    return sorted(t.values[0] for t in db.sql("Select name From t"))


class TestTransactionSemantics:
    def test_commit_applies_buffered_dml(self):
        db = make_db()
        s = db.session()
        s.execute("BEGIN")
        s.execute("Insert Into t Values ('tx1', 100)")
        s.execute("Update t r Set v = 7 Where r.name = 'r0'")
        s.execute("Delete From t r Where r.name = 'r1'")
        # Nothing visible yet — not to this session, not to others.
        assert "tx1" not in names(db)
        assert "r1" in names(db)
        s.execute("COMMIT")
        assert "tx1" in names(db)
        assert "r1" not in names(db)
        row = db.sql("Select v From t r Where r.name = 'r0'")
        assert row.tuples[0].values[0] == 7
        s.close()

    def test_abort_discards_everything(self):
        db = make_db()
        s = db.session()
        before = names(db)
        s.execute("BEGIN")
        s.execute("Insert Into t Values ('ghost', 1)")
        s.execute("Delete From t r Where r.v < 3")
        s.execute("ABORT")
        assert names(db) == before
        s.close()

    def test_rollback_is_abort(self):
        db = make_db()
        s = db.session()
        s.execute("BEGIN")
        s.execute("Insert Into t Values ('ghost', 1)")
        s.execute("ROLLBACK")
        assert "ghost" not in names(db)
        s.close()

    def test_no_read_your_writes(self):
        db = make_db()
        s = db.session()
        s.execute("BEGIN")
        s.execute("Insert Into t Values ('pending', 9)")
        result = s.execute("Select name From t")
        assert "pending" not in {t.values[0] for t in result.tuples}
        s.execute("COMMIT")
        s.close()

    def test_update_after_buffered_delete_skips_the_row(self):
        db = make_db()
        s = db.session()
        s.execute("BEGIN")
        assert s.execute("Delete From t r Where r.name = 'r2'") == 1
        # The buffered delete hides r2 from later statements in the txn.
        assert s.execute("Update t r Set v = 50 Where r.name = 'r2'") == 0
        assert s.execute("Delete From t r Where r.name = 'r2'") == 0
        s.execute("COMMIT")
        assert "r2" not in names(db)
        s.close()

    def test_txn_annotate_is_buffered(self):
        db = make_db()
        db.create_classifier_instance(
            "C", ["pos", "neg"], [("good fine", "pos"), ("bad awful", "neg")]
        )
        db.link_summary_instance("t", "C", indexable=True)
        s = db.session()
        s.execute("BEGIN")
        ann_id = s.execute("Annotate t 1 'good fine stuff'")
        assert isinstance(ann_id, int)
        with pytest.raises(RecordNotFoundError):
            db.manager.annotations.get(ann_id)
        s.execute("COMMIT")
        assert db.manager.annotations.get(ann_id).text == "good fine stuff"
        s.close()

    def test_autocommit_annotate_statement(self):
        db = make_db()
        ann_id = db.sql("Annotate t 2 'plain note'")
        ann = db.manager.annotations.get(ann_id)
        assert ann is not None and ann.text == "plain note"

    def test_oid_preassignment_matches_commit(self):
        db = make_db()
        s = db.session()
        s.execute("BEGIN")
        s.execute("Insert Into t Values ('a', 1)")
        s.execute("Insert Into t Values ('b', 2)")
        s.execute("COMMIT")
        rows = db.sql("Select name, oid From t")
        by_name = {t.values[0]: t.values[1] for t in rows.tuples
                   if t.values[0] in ("a", "b")}
        assert by_name["b"] == by_name["a"] + 1
        s.close()

    def test_errors_outside_transaction(self):
        db = make_db()
        s = db.session()
        with pytest.raises(TransactionError):
            s.execute("COMMIT")
        with pytest.raises(TransactionError):
            s.execute("ABORT")
        s.execute("BEGIN")
        with pytest.raises(TransactionError):
            s.execute("BEGIN")
        s.execute("ABORT")
        s.close()

    def test_ddl_rejected_inside_transaction(self):
        db = make_db()
        s = db.session()
        s.execute("BEGIN")
        with pytest.raises(TransactionError):
            s.execute("Create Table u (x INT)")
        s.execute("ABORT")
        s.close()

    def test_empty_commit_is_a_noop(self):
        db = make_db()
        s = db.session()
        s.execute("BEGIN")
        s.execute("COMMIT")
        assert db.metrics.get("txn.empty_commits") == 1
        s.close()

    def test_failed_statement_keeps_transaction_open(self):
        db = make_db()
        s = db.session()
        s.execute("BEGIN")
        s.execute("Insert Into t Values ('keep', 1)")
        with pytest.raises(Exception):
            s.execute("Select * From nonexistent")
        s.execute("COMMIT")  # the buffered insert survives the bad SELECT
        assert "keep" in names(db)
        s.close()

    def test_close_aborts_open_transaction(self):
        db = make_db()
        s = db.session()
        s.execute("BEGIN")
        s.execute("Insert Into t Values ('ghost', 1)")
        s.close()
        assert "ghost" not in names(db)
        assert len(db.txn_manager.active) == 0
        with pytest.raises(TransactionError):
            s.execute("Select * From t")

    def test_txn_metrics(self):
        db = make_db()
        s = db.session()
        s.execute("BEGIN")
        s.execute("Insert Into t Values ('a', 1)")
        s.execute("COMMIT")
        s.execute("BEGIN")
        s.execute("ABORT")
        snap = db.metrics_snapshot()
        assert snap["txn.begins"] == 2
        assert snap["txn.commits"] == 1
        assert snap["txn.aborts"] == 1
        assert snap["txn.ops_committed"] == 1
        assert snap["txn.open"] == 0
        s.close()


class TestTransactionDurability:
    def test_commit_group_framing(self):
        db = make_db(wal=True)
        db.wal.flush()
        start = db.wal.flushed_lsn
        s = db.session()
        s.execute("BEGIN")
        s.execute("Insert Into t Values ('tx', 9)")
        s.execute("Delete From t r Where r.name = 'r0'")
        s.execute("COMMIT")
        s.close()
        tail = db.wal.device.durable()[start - db.wal.device.base_lsn:]
        records = scan_records(tail, base_lsn=start).records
        types = [r.type for r in records]
        assert types == [
            WALRecordType.TXN_BEGIN,
            WALRecordType.INSERT,
            WALRecordType.DELETE,
            WALRecordType.TXN_COMMIT,
        ]
        assert len({r.txn_id for r in records}) == 1
        assert records[0].txn_id > 0

    def test_recovery_replays_committed_transaction(self):
        db = make_db(wal=True)
        s = db.session()
        s.execute("BEGIN")
        s.execute("Insert Into t Values ('durable', 42)")
        s.execute("COMMIT")
        s.close()
        dev = MemoryWALDevice.from_durable(
            db.wal.device.durable(), db.wal.device.base_lsn
        )
        recovered, report = Database.recover(None, dev)
        assert "durable" in names(recovered)
        assert report.committed_txns == 1
        assert report.uncommitted_txns == []

    def test_uncommitted_transaction_never_reaches_the_log(self):
        db = make_db(wal=True)
        db.wal.flush()
        baseline = db.wal.device.durable_len
        s = db.session()
        s.execute("BEGIN")
        s.execute("Insert Into t Values ('ghost', 1)")
        s.execute("Insert Into t Values ('ghost2', 2)")
        # Buffered redo: the open transaction has appended nothing.
        db.wal.flush()
        assert db.wal.device.durable_len == baseline
        s.execute("ABORT")
        db.wal.flush()
        assert db.wal.device.durable_len == baseline
        s.close()

    def test_recovery_interleaves_autocommit_and_txn_writes(self):
        db = make_db(wal=True)
        s = db.session()
        db.sql("Insert Into t Values ('auto1', 1)")
        s.execute("BEGIN")
        s.execute("Insert Into t Values ('tx1', 2)")
        s.execute("COMMIT")
        db.sql("Insert Into t Values ('auto2', 3)")
        s.close()
        dev = MemoryWALDevice.from_durable(
            db.wal.device.durable(), db.wal.device.base_lsn
        )
        recovered, _ = Database.recover(None, dev)
        assert names(recovered) == names(db)


class TestLockManager:
    def test_concurrent_readers(self):
        lm = StripedLockManager()
        lm.acquire_shared("a", "t")
        lm.acquire_shared("b", "t")  # no wait
        assert lm.held_by("a") == {"t"}
        lm.release_all("a")
        lm.release_all("b")

    def test_writer_excludes_reader(self):
        lm = StripedLockManager()
        lm.acquire_exclusive("w", "t")
        with pytest.raises(LockTimeoutError):
            lm.acquire_shared("r", "t", timeout=0.1)
        lm.release_all("w")
        lm.acquire_shared("r", "t", timeout=0.1)
        lm.release_all("r")

    def test_reader_excludes_writer(self):
        lm = StripedLockManager()
        lm.acquire_shared("r", "t")
        with pytest.raises(LockTimeoutError):
            lm.acquire_exclusive("w", "t", timeout=0.1)
        lm.release_all("r")

    def test_reentrant_and_upgrade(self):
        lm = StripedLockManager()
        lm.acquire_shared("a", "t")
        lm.acquire_shared("a", "t")      # reentrant share
        lm.acquire_exclusive("a", "t")   # sole reader upgrades
        lm.acquire_exclusive("a", "t")   # reentrant exclusive
        assert lm.held_by("a") == {"t"}
        lm.release_all("a")
        # Fully released: another owner can take it exclusively.
        lm.acquire_exclusive("b", "t", timeout=0.1)
        lm.release_all("b")

    def test_upgrade_blocked_by_second_reader(self):
        lm = StripedLockManager()
        lm.acquire_shared("a", "t")
        lm.acquire_shared("b", "t")
        with pytest.raises(LockTimeoutError):
            lm.acquire_exclusive("a", "t", timeout=0.1)
        lm.release_all("a")
        lm.release_all("b")

    def test_blocked_writer_proceeds_after_release(self):
        lm = StripedLockManager()
        lm.acquire_exclusive("a", "t")
        acquired = threading.Event()

        def waiter():
            lm.acquire_exclusive("b", "t", timeout=5.0)
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        assert not acquired.wait(0.15)
        lm.release_all("a")
        assert acquired.wait(5.0)
        thread.join()
        lm.release_all("b")

    def test_metrics(self):
        db = Database()
        lm = StripedLockManager(metrics=db.metrics)
        lm.acquire_shared("a", "t")
        lm.acquire_exclusive("a", "t")
        lm.release_all("a")
        lm.acquire_shared("b", "u")
        with pytest.raises(LockTimeoutError):
            lm.acquire_exclusive("c", "u", timeout=0.1)
        snap = db.metrics.snapshot()
        assert snap["lock.acquisitions.shared"] == 2
        assert snap["lock.acquisitions.exclusive"] == 1
        assert snap["lock.upgrades"] == 1
        assert snap["lock.timeouts"] == 1
        assert snap["lock.releases"] == 1


class TestSessionLocking:
    def test_autocommit_releases_at_statement_end(self):
        db = make_db()
        s = db.session()
        s.execute("Select * From t")
        assert db.lock_manager.held_by(s) == set()
        s.execute("Insert Into t Values ('x', 1)")
        assert db.lock_manager.held_by(s) == set()
        s.close()

    def test_transaction_holds_locks_to_boundary(self):
        db = make_db()
        s = db.session()
        s.execute("BEGIN")
        s.execute("Insert Into t Values ('x', 1)")
        assert db.lock_manager.held_by(s) == {"t"}
        s.execute("Delete From t r Where r.name = 'x'")
        assert db.lock_manager.held_by(s) == {"t", ANNOTATION_RESOURCE}
        s.execute("COMMIT")
        assert db.lock_manager.held_by(s) == set()
        s.close()

    def test_lock_timeout_aborts_victim_transaction(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCK_TIMEOUT", "0.1")
        db = make_db()
        a, b = db.session(), db.session()
        a.execute("BEGIN")
        a.execute("Insert Into t Values ('held', 1)")
        b.execute("BEGIN")
        with pytest.raises(LockTimeoutError):
            b.execute("Insert Into t Values ('blocked', 2)")
        # b is the victim: its transaction is gone, its locks released.
        assert not b.in_txn
        assert db.lock_manager.held_by(b) == set()
        # a is untouched and can still commit.
        a.execute("COMMIT")
        assert "held" in names(db)
        assert "blocked" not in names(db)
        a.close()
        b.close()

    def test_non_locking_session_skips_the_lock_manager(self):
        db = make_db()
        s = db.session(locking=False)
        s.execute("BEGIN")
        s.execute("Insert Into t Values ('x', 1)")
        assert len(db.lock_manager) == 0 or db.lock_manager.held_by(s) == set()
        s.execute("COMMIT")
        assert "x" in names(db)
        s.close()

    def test_database_sql_works_with_env_locks(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCKS", "1")
        db = make_db()
        db.sql("Insert Into t Values ('locked-path', 1)")
        assert "locked-path" in names(db)

    def test_explicit_txn_via_db_sql(self):
        db = make_db()
        db.sql("BEGIN")
        db.sql("Insert Into t Values ('via-sql', 1)")
        assert "via-sql" not in names(db)  # same thread, same session
        db.sql("COMMIT")
        assert "via-sql" in names(db)


class TestPersistenceInterop:
    def test_save_load_roundtrip_keeps_concurrency_state_fresh(self, tmp_path):
        db = make_db()
        s = db.session()
        s.execute("BEGIN")
        s.execute("Insert Into t Values ('open', 1)")
        path = str(tmp_path / "img.bin")
        db.save(path)  # open (unapplied) txn state is process state
        loaded = Database.load(path)
        assert "open" not in names(loaded)
        assert len(loaded.txn_manager.active) == 0
        assert len(loaded.lock_manager) == 0
        loaded.sql("BEGIN")
        loaded.sql("Insert Into t Values ('fresh', 2)")
        loaded.sql("COMMIT")
        assert "fresh" in names(loaded)
        s.execute("ABORT")
        s.close()
