"""``python -m repro`` starts the interactive shell."""

import sys

from repro.cli import main

sys.exit(main())
