"""Join operators.

Both joins evaluate their conditions on a *pair view* — concatenated values
with each side's summary sets still separate — so summary-based join
predicates ``p(r.$, s.$)`` see the pre-merge sets (§3.2). Only after the
predicates pass does :meth:`QTuple.join` merge the summary objects with
annotation dedup (§2.2).

Per §5.2, the engine implements exactly two join algorithms for the J
operator: block nested-loop and index-based — the same two the physical
data join offers here.
"""

from __future__ import annotations

from typing import Iterator

from repro.query.ast import Expr
from repro.query.batch import Batch, batches_from_rows, rows_from_batches
from repro.query.eval import evaluate
from repro.query.physical.base import ExecContext, PhysicalOperator
from repro.query.tuples import QTuple


def _pair_view(left: QTuple, right: QTuple) -> QTuple:
    """A throwaway tuple for pre-merge condition evaluation."""
    return QTuple(
        left.columns + right.columns,
        left.values + right.values,
        {**left.summary_sets, **right.summary_sets},
        {**left.provenance, **right.provenance},
    )


class NestedLoopJoin(PhysicalOperator):
    """Block nested-loop join; the inner (right) input is materialized."""

    def __init__(
        self,
        ctx: ExecContext,
        left: PhysicalOperator,
        right: PhysicalOperator,
        condition: Expr | None = None,
        summary_predicate: Expr | None = None,
    ):
        self.ctx = ctx
        self.left = left
        self.right = right
        self.condition = condition
        self.summary_predicate = summary_predicate

    @property
    def children(self):
        return [self.left, self.right]

    def _produce(self) -> Iterator[QTuple]:
        return self._joined(self.left.rows(), list(self.right.rows()))

    def _produce_batches(self) -> Iterator[Batch]:
        # Pairwise condition evaluation is row-at-a-time; the batch win is
        # upstream (vectorized scans/filters feeding both sides).
        return batches_from_rows(self._joined(
            rows_from_batches(self.left.batches()),
            list(rows_from_batches(self.right.batches())),
        ))

    def _joined(
        self, left_rows: Iterator[QTuple], inner: list[QTuple]
    ) -> Iterator[QTuple]:
        for left_row in left_rows:
            for right_row in inner:
                pair = _pair_view(left_row, right_row)
                if self.condition is not None and not evaluate(
                    self.condition, pair, self.ctx.eval_ctx
                ):
                    continue
                if self.summary_predicate is not None and not evaluate(
                    self.summary_predicate, pair, self.ctx.eval_ctx
                ):
                    continue
                yield QTuple.join(left_row, right_row)

    def label(self) -> str:
        parts = [str(p) for p in (self.condition, self.summary_predicate) if p]
        kind = "J-NLoop" if self.summary_predicate is not None else "NLoop"
        return f"NestedLoopJoin[{kind}]({' & '.join(parts) or 'cross'})"


class IndexNestedLoopJoin(PhysicalOperator):
    """Index nested-loop join: probe the inner table's data index per outer
    row. Preserves the outer input's order — the property Rules 5/6 need."""

    def __init__(
        self,
        ctx: ExecContext,
        left: PhysicalOperator,
        right_table: str,
        right_alias: str,
        right_column: str,
        left_key: Expr,
        condition: Expr | None = None,
        summary_predicate: Expr | None = None,
        with_summaries: bool = True,
        retained: set[str] | None = None,
    ):
        self.ctx = ctx
        self.left = left
        self.right_table = right_table
        self.right_alias = right_alias
        self.right_column = right_column
        self.left_key = left_key
        self.condition = condition
        self.summary_predicate = summary_predicate
        self.with_summaries = with_summaries
        self.retained = retained

    @property
    def children(self):
        return [self.left]

    def _produce(self) -> Iterator[QTuple]:
        return self._joined(self.left.rows())

    def _produce_batches(self) -> Iterator[Batch]:
        return batches_from_rows(
            self._joined(rows_from_batches(self.left.batches()))
        )

    def _joined(self, left_rows: Iterator[QTuple]) -> Iterator[QTuple]:
        from repro.query.physical.scans import _make_tuple

        table = self.ctx.catalog.table(self.right_table)
        for left_row in left_rows:
            key = evaluate(self.left_key, left_row, self.ctx.eval_ctx)
            if key is None:
                continue
            for oid in table.index_lookup(self.right_column, key):
                right_row = _make_tuple(
                    self.ctx, self.right_table, self.right_alias, oid,
                    table.read(oid), self.with_summaries, self.retained,
                )
                pair = _pair_view(left_row, right_row)
                if self.condition is not None and not evaluate(
                    self.condition, pair, self.ctx.eval_ctx
                ):
                    continue
                if self.summary_predicate is not None and not evaluate(
                    self.summary_predicate, pair, self.ctx.eval_ctx
                ):
                    continue
                yield QTuple.join(left_row, right_row)

    def label(self) -> str:
        return (
            f"IndexNestedLoopJoin({self.left_key} = "
            f"{self.right_alias}.{self.right_column})"
        )


class SummaryIndexNestedLoopJoin(PhysicalOperator):
    """Index-based implementation of the summary join J (§5.2).

    For each outer row, the outer side of one summary-join conjunct
    (``outer_expr <op> inner.$.getSummaryObject(I).getLabelValue(L)``) is
    evaluated and the inner relation's Summary-BTree on instance ``I`` is
    probed for label ``L`` — an equality probe for ``=`` or a range probe
    for inequalities — instead of materializing the inner side and
    evaluating the predicate on every pair.  Residual data/summary
    predicates are checked on the pre-merge pair view, then the pair's
    summary objects merge exactly as in the block nested-loop J.
    """

    def __init__(
        self,
        ctx: ExecContext,
        left: PhysicalOperator,
        inner_table: str,
        inner_alias: str,
        instance: str,
        label: str,
        op: str,
        outer_expr: Expr,
        condition: Expr | None = None,
        summary_predicate: Expr | None = None,
        with_summaries: bool = True,
        retained: set[str] | None = None,
    ):
        self.ctx = ctx
        self.left = left
        self.inner_table = inner_table
        self.inner_alias = inner_alias
        self.instance = instance
        self.label_name = label
        self.op = op
        self.outer_expr = outer_expr
        self.condition = condition
        self.summary_predicate = summary_predicate
        self.with_summaries = with_summaries
        self.retained = retained

    @property
    def children(self):
        return [self.left]

    def _bounds(self, key: int) -> tuple:
        """(lo, hi, lo_inclusive, hi_inclusive) for ``key <op> inner``."""
        if self.op == "=":
            return key, key, True, True
        if self.op == "<":   # outer < inner  ->  inner > key
            return key, None, False, True
        if self.op == "<=":
            return key, None, True, True
        if self.op == ">":   # outer > inner  ->  inner < key
            return None, key, True, False
        return None, key, True, True  # ">="

    def _produce(self) -> Iterator[QTuple]:
        return self._joined(self.left.rows())

    def _produce_batches(self) -> Iterator[Batch]:
        return batches_from_rows(
            self._joined(rows_from_batches(self.left.batches()))
        )

    def _joined(self, left_rows: Iterator[QTuple]) -> Iterator[QTuple]:
        from repro.query.physical.scans import _make_tuple

        index = self.ctx.summary_index(self.inner_table, self.instance)
        if index is None:
            from repro.errors import PlanError

            raise PlanError(
                f"no Summary-BTree on {self.inner_table}/{self.instance}"
            )
        table = self.ctx.catalog.table(self.inner_table)
        for left_row in left_rows:
            key = evaluate(self.outer_expr, left_row, self.ctx.eval_ctx)
            if key is None or not isinstance(key, int):
                continue
            lo, hi, lo_inc, hi_inc = self._bounds(key)
            for _count, pointer in index.lookup_range(
                self.label_name, lo, hi, lo_inc, hi_inc
            ):
                values = table.read(pointer.oid)
                right_row = _make_tuple(
                    self.ctx, self.inner_table, self.inner_alias,
                    pointer.oid, values, self.with_summaries, self.retained,
                )
                pair = _pair_view(left_row, right_row)
                if self.condition is not None and not evaluate(
                    self.condition, pair, self.ctx.eval_ctx
                ):
                    continue
                if self.summary_predicate is not None and not evaluate(
                    self.summary_predicate, pair, self.ctx.eval_ctx
                ):
                    continue
                yield QTuple.join(left_row, right_row)

    def label(self) -> str:
        return (
            f"SummaryIndexNLJoin[J-Index]({self.outer_expr} {self.op} "
            f"{self.inner_alias}/{self.instance}.{self.label_name})"
        )
