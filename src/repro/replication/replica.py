"""The replica server: a hot standby serving read-only queries.

A :class:`ReplicaServer` owns three pieces: a local
:class:`~repro.core.database.Database` (bootstrapped from a primary
snapshot, ``read_only`` thereafter), a
:class:`~repro.server.server.QueryServer` serving it on the normal
protocol, and a :class:`~repro.replication.link.ReplicationLink` thread
continuously applying the primary's WAL stream.

* Read-only statements execute normally (including bounded-staleness
  ``min_lsn`` waits, answered through the link's applied watermark);
  mutating statements answer a typed
  :class:`~repro.errors.ReadOnlyReplicaError`.
* ``{"op": "promote"}`` (or :meth:`promote`) turns the replica into a
  writable primary: the link stops, any buffered uncommitted group is
  discarded, a fresh WAL is attached at the applied watermark — so the
  new primary's log continues the old primary's LSN space over exactly
  the acked-committed prefix — and the replication endpoint is installed
  so further replicas can chain off the promoted node.

Bootstrap and state replacement happen **in place**: the Database object
identity is stable (sessions, the server, the applier all hold references
to it), so installing a snapshot swaps ``db.__dict__`` under the commit
mutex — the same idiom the REPL uses to swap demo databases.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket

from repro.core.database import Database
from repro.errors import ReplicationError
from repro.replication.applier import WALApplier
from repro.replication.link import ReplicationLink
from repro.replication.primary import ReplicationEndpoint
from repro.resilience import RetryPolicy
from repro.server.server import DEFAULT_WORKERS, QueryServer
from repro.wal.device import MemoryWALDevice

_replica_seq = 0


def _default_replica_id() -> str:
    global _replica_seq
    _replica_seq += 1
    return f"replica-{socket.gethostname()}-{os.getpid()}-{_replica_seq}"


class ReplicaServer:
    """A read-only standby continuously applying a primary's WAL."""

    def __init__(self, primary_host: str, primary_port: int,
                 host: str = "127.0.0.1", port: int = 0,
                 replica_id: str | None = None,
                 retry: RetryPolicy | None = None,
                 poll_interval: float = 0.02,
                 workers: int = DEFAULT_WORKERS,
                 **server_kwargs):
        self.primary_host = primary_host
        self.primary_port = primary_port
        self.replica_id = replica_id or _default_replica_id()
        #: placeholder until the first snapshot installs; read-only from
        #: the start so nothing can write while we bootstrap.
        self.db = Database()
        self.db.read_only = True
        self.applier = WALApplier(self.db, 0)
        self.link = ReplicationLink(
            self.db, self.applier, primary_host, primary_port,
            self.replica_id, install_snapshot=self.install_snapshot,
            retry=retry, poll_interval=poll_interval,
        )
        self.server = QueryServer(
            self.db, host=host, port=port, workers=workers, **server_kwargs
        )
        self.server.repl_link = self.link
        self.server.register_op("promote", self._promote_op)
        self.promoted = False

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the query server and start the replication link. The
        link bootstraps asynchronously — health reports ``bootstrapped``
        and lag; :meth:`wait_ready` blocks for tests and the CLI."""
        await self.server.start()
        self.link.start()

    async def stop(self, drain_timeout: float | None = None) -> None:
        self.link.stop()
        if not self.promoted:
            # Release the retention pin on the primary (best-effort: a
            # dead primary just means nothing to release).
            await asyncio.get_running_loop().run_in_executor(
                None, self._detach_best_effort
            )
        await self.server.stop(drain_timeout)

    def wait_ready(self, timeout: float = 10.0) -> bool:
        """Block until the first bootstrap completed."""
        return self.link.bootstrapped.wait(timeout)

    def _detach_best_effort(self) -> None:
        from repro.server.client import QueryClient

        try:
            with QueryClient(self.primary_host, self.primary_port,
                             connect_timeout=0.5,
                             response_timeout=2.0) as client:
                client.request({"op": "replicate_detach",
                                "replica_id": self.replica_id})
        except Exception:
            pass

    # -- bootstrap -----------------------------------------------------------

    def install_snapshot(self, image: bytes) -> int:
        """Install a primary snapshot image in place; returns its LSN.

        The new state replaces ``db.__dict__`` under the old commit
        mutex, with ``read_only`` already set on the incoming state so
        there is no instant at which a write could slip in.
        """
        new_db = Database.load_bytes(
            image,
            source=f"{self.primary_host}:{self.primary_port} snapshot",
        )
        new_db.read_only = True
        lsn = max(new_db.checkpoint_lsn, new_db._applied_lsn)
        db = self.db
        with db._commit_mutex:
            db.stop_maintenance(drain=False)
            db.__dict__.clear()
            db.__dict__.update(new_db.__dict__)
        self.applier.reset(lsn)
        db.metrics.set_gauge("repl.applied_lsn", lsn)
        return lsn

    # -- promotion -----------------------------------------------------------

    def promote(self) -> dict:
        """Turn this replica into a writable primary.

        Stops the link (joining its thread), discards any buffered
        uncommitted commit group, clears ``read_only``, and attaches a
        fresh WAL based at the applied watermark — the new primary's log
        continues the old LSN space over exactly the acked-committed
        prefix. The replication endpoint is installed so new replicas
        can bootstrap off the promoted node.
        """
        if self.promoted:
            return {"promoted": False, "already_primary": True,
                    "lsn": self.applier.ack_lsn}
        if not self.link.bootstrapped.is_set():
            raise ReplicationError(
                "cannot promote before the first bootstrap completed"
            )
        self.link.stop(join=True)
        db = self.db
        with db._commit_mutex:
            self.applier.reset_to_ack()
            lsn = self.applier.ack_lsn
            db._applied_lsn = max(db._applied_lsn, lsn)
            db.checkpoint_lsn = max(db.checkpoint_lsn, lsn)
            device = MemoryWALDevice(base_lsn=lsn, metrics=db.metrics)
            db.attach_wal(device)
            db.read_only = False
        self.server.repl_link = None
        ReplicationEndpoint(self.server).install()
        self.promoted = True
        db.metrics.inc("repl.promotions")
        return {"promoted": True, "lsn": lsn}

    def _promote_op(self, request: dict, conn) -> dict:
        return self.promote()


async def serve_replica(primary_host: str, primary_port: int,
                        host: str = "127.0.0.1", port: int = 0,
                        workers: int = DEFAULT_WORKERS, **kwargs) -> None:
    """CLI runner: serve a replica until SIGTERM/SIGINT, then drain."""
    replica = ReplicaServer(primary_host, primary_port, host=host,
                            port=port, workers=workers, **kwargs)
    await replica.start()
    print(
        f"repro replica of {primary_host}:{primary_port} listening on "
        f"{replica.host}:{replica.port}", flush=True,
    )
    loop = asyncio.get_running_loop()
    stop_requested = asyncio.Event()
    installed: list = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop_requested.set)
            installed.append(sig)
        except (NotImplementedError, ValueError, RuntimeError):
            pass
    forever = asyncio.ensure_future(replica.server.serve_forever())
    stopper = asyncio.ensure_future(stop_requested.wait())
    try:
        await asyncio.wait({forever, stopper},
                           return_when=asyncio.FIRST_COMPLETED)
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
        stopper.cancel()
        await replica.stop()
        if not forever.done():
            forever.cancel()
        try:
            await forever
        except (asyncio.CancelledError, Exception):
            pass
        print("repro replica drained", flush=True)
