"""Replication tests: stream retention, the WAL applier, read-only
enforcement, and the full primary → replica → promote lifecycle.

The unit half exercises the building blocks directly: the primary-side
stream registry (acks pin WAL segments across ``truncate``, so a
checkpoint while a replica streams loses no records — the PR-10
regression), the applier's group semantics (only committed transaction
groups apply; interrupted groups are abandoned exactly like recovery
discards a crash-mid-commit), and the two-layer read-only guard.

The integration half runs a real primary server and a real
:class:`~repro.replication.replica.ReplicaServer` on background event
loops: snapshot bootstrap, continuous apply, bounded-staleness reads,
``repl.*`` health, promotion to a writable primary, and client-side
read failover.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.catalog.schema import Column
from repro.core.database import Database
from repro.errors import (
    ReadOnlyReplicaError,
    ReplicationError,
    ServerError,
)
from repro.replication import ReplicationEndpoint, ReplicaServer, WALApplier
from repro.resilience import RetryPolicy
from repro.server import QueryClient, QueryServer, ResilientQueryClient
from repro.storage.record import ValueType
from repro.wal.device import MemoryWALDevice
from repro.wal.record import WALRecordType, encode_record, scan_records
from repro.wal.writer import WALWriter
from tests.test_server import ServerHarness, wait_for


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def make_wal_db() -> Database:
    db = Database(buffer_pages=32)
    db.attach_wal(MemoryWALDevice())
    db.create_table("t", [Column("name", ValueType.TEXT),
                          Column("v", ValueType.INT)])
    return db


def table_rows(db: Database, table: str = "t"):
    if not db.catalog.has_table(table):
        return ()
    return tuple(sorted(
        (oid, tuple(values))
        for oid, values in db.catalog.table(table).scan()
    ))


class ReplicaHarness:
    """One :class:`ReplicaServer` on its own event-loop thread."""

    def __init__(self, primary_port: int, **kwargs):
        kwargs.setdefault("poll_interval", 0.01)
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )
        self._thread.start()
        self.replica = ReplicaServer(
            "127.0.0.1", primary_port, port=0, **kwargs
        )
        asyncio.run_coroutine_threadsafe(
            self.replica.start(), self.loop
        ).result(10)

    @property
    def port(self) -> int:
        return self.replica.port

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.replica.stop(), self.loop
        ).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(10)
        self.loop.close()


@pytest.fixture()
def primary():
    db = make_wal_db()
    for i in range(5):
        db.insert("t", [f"seed{i}", i])
    h = ServerHarness(db, workers=2)
    ReplicationEndpoint(h.server).install()
    try:
        yield h
    finally:
        h.stop()


@pytest.fixture()
def pair(primary):
    rh = ReplicaHarness(primary.port)
    assert rh.replica.wait_ready(10), "bootstrap timed out"
    assert rh.replica.link.wait_caught_up(10), "catch-up timed out"
    try:
        yield primary, rh
    finally:
        rh.stop()


# ---------------------------------------------------------------------------
# primary-side stream registry + retention
# ---------------------------------------------------------------------------

class TestStreamRetention:
    def test_truncate_while_streaming_loses_no_records(self):
        """THE regression: a checkpoint must not retire WAL bytes a
        registered replica has not acked."""
        db = make_wal_db()
        wal = db.wal
        wal.register_stream("r1", 0)
        for i in range(10):
            db.insert("t", [f"r{i}", i])
        tail = wal.flushed_lsn
        before, status = wal.read_stream(0, 1 << 30)
        assert status == "ok"

        # Checkpoint: device truncates, but the stream pins the bytes.
        wal.truncate(tail)
        assert wal.retained_base == 0
        after, status = wal.read_stream(0, 1 << 30)
        assert status == "ok"
        assert after == before, "checkpoint-while-streaming lost records"
        assert scan_records(after, 0).end_lsn == tail

        # Once the replica acks past the checkpoint, retention releases.
        wal.ack_stream("r1", tail)
        assert wal.retained_bytes == 0
        assert wal.retained_base == tail

    def test_reader_below_retained_base_answers_too_old(self):
        db = make_wal_db()
        wal = db.wal
        db.insert("t", ["a", 1])
        tail = wal.flushed_lsn
        wal.truncate(tail)  # no streams registered: nothing retained
        data, status = wal.read_stream(0, 1 << 20)
        assert status == "too_old" and data == b""
        # At/above the new base the stream answers normally again.
        db.insert("t", ["b", 2])
        data, status = wal.read_stream(tail, 1 << 20)
        assert status == "ok"
        assert scan_records(data, tail).records

    def test_acks_are_monotonic_and_sticky_across_disconnects(self):
        wal = WALWriter(MemoryWALDevice())
        wal.ack_stream("r1", 100)
        wal.ack_stream("r1", 40)  # stale ack never regresses the pin
        assert wal.stream_acks["r1"] == 100
        assert wal.min_stream_lsn() == 100
        wal.ack_stream("r2", 60)
        assert wal.min_stream_lsn() == 60
        wal.unregister_stream("r2")
        assert wal.min_stream_lsn() == 100
        wal.unregister_stream("r1")
        assert wal.min_stream_lsn() is None

    def test_multi_segment_read_spans_checkpoints(self):
        """Two checkpoints with a slow replica: read_stream must stitch
        retained segments + the live device into one contiguous run."""
        db = make_wal_db()
        wal = db.wal
        wal.register_stream("slow", 0)
        for round_no in range(3):
            for i in range(4):
                db.insert("t", [f"x{round_no}-{i}", i])
            if round_no < 2:
                wal.truncate(wal.flushed_lsn)
        whole, status = wal.read_stream(0, 1 << 30)
        assert status == "ok"
        scan = scan_records(bytes(whole), 0)
        assert scan.torn_bytes == 0
        assert len(scan.records) == 13  # CREATE TABLE DDL + 12 inserts
        # Windowed reads concatenate to the same stream.
        pos, rebuilt = 0, bytearray()
        while pos < wal.flushed_lsn:
            piece, status = wal.read_stream(pos, 100)
            assert status == "ok" and piece
            rebuilt.extend(piece)
            pos += len(piece)
        assert bytes(rebuilt) == whole


# ---------------------------------------------------------------------------
# the applier
# ---------------------------------------------------------------------------

class TestWALApplier:
    def _stream(self, statements) -> tuple[bytes, Database]:
        """Run statements on a WAL-backed db; return (durable bytes, db)."""
        db = make_wal_db()
        for stmt in statements:
            stmt(db)
        return db.wal.device.durable(), db

    def test_autocommit_records_apply_and_converge(self):
        data, origin = self._stream([
            lambda db: db.insert("t", ["a", 1]),
            lambda db: db.insert("t", ["b", 2]),
            lambda db: db.sql("UPDATE t SET v = 9 WHERE name = 'a'"),
        ])
        replica = Database(buffer_pages=32)
        applier = WALApplier(replica, 0)
        res = applier.feed(data)
        assert res.torn_bytes == 0
        assert applier.ack_lsn == len(data)
        assert table_rows(replica) == table_rows(origin)

    def test_refeed_is_idempotent(self):
        data, origin = self._stream(
            [lambda db, i=i: db.insert("t", [f"r{i}", i]) for i in range(5)]
        )
        replica = Database(buffer_pages=32)
        applier = WALApplier(replica, 0)
        applier.feed(data)
        applied = applier.records_applied
        # A reconnect refetches from the ack: the overlap re-delivers
        # bytes below the watermark, which must be skipped entirely.
        applier.reset_to_ack()
        applier.feed(data)
        assert applier.records_applied == applied, "resume double-applied"
        assert table_rows(replica) == table_rows(origin)

    def test_partial_feed_acks_only_frame_boundaries(self):
        data, origin = self._stream(
            [lambda db, i=i: db.insert("t", [f"r{i}", i]) for i in range(4)]
        )
        replica = Database(buffer_pages=32)
        applier = WALApplier(replica, 0)
        for cut in range(0, len(data), 97):  # arbitrary chunking
            applier.feed(data[applier.fetch_lsn:cut])
            assert applier.ack_lsn <= cut
        applier.feed(data[applier.fetch_lsn:])
        assert applier.ack_lsn == len(data)
        assert table_rows(replica) == table_rows(origin)

    def test_committed_txn_group_applies_atomically(self):
        data, origin = self._stream([
            lambda db: db.sql("BEGIN"),
            lambda db: db.sql("INSERT INTO t VALUES ('in-txn', 7)"),
            lambda db: db.sql("COMMIT"),
        ])
        replica = Database(buffer_pages=32)
        applier = WALApplier(replica, 0)
        # Feed the group minus its COMMIT frame: nothing may apply.
        scan = scan_records(data, 0)
        commit = next(r for r in scan.records
                      if r.type == WALRecordType.TXN_COMMIT)
        applier.feed(data[:commit.lsn])
        assert applier.ack_lsn <= scan.records[0].end_lsn
        assert table_rows(replica) != table_rows(origin)
        # The COMMIT closes the group; everything lands at once.
        applier.feed(data[applier.fetch_lsn:])
        assert applier.txns_applied == 1
        assert table_rows(replica) == table_rows(origin)

    def test_interrupted_group_is_abandoned_like_recovery(self):
        """A non-group record interrupting an open group means the group
        can never commit (commit groups are appended contiguously): the
        applier must discard it, mirroring recovery's crash-mid-commit
        discard — and must not stall the ack forever."""
        data, origin = self._stream([
            lambda db: db.sql("BEGIN"),
            lambda db: db.sql("INSERT INTO t VALUES ('doomed', 1)"),
            lambda db: db.sql("COMMIT"),
            lambda db: db.insert("t", ["survivor", 2]),
        ])
        scan = scan_records(data, 0)
        commit = next(r for r in scan.records
                      if r.type == WALRecordType.TXN_COMMIT)
        tail = next(r for r in scan.records
                    if r.type == WALRecordType.INSERT and r.txn_id == 0)
        # Splice the stream: group minus COMMIT, then the autocommit
        # insert re-framed at the commit's position — exactly what a
        # primary crash between group append and sync can leave behind.
        spliced = data[:commit.lsn] + encode_record(
            commit.lsn, tail.type, tail.stmt_id, tail.payload, 0
        )
        replica = Database(buffer_pages=32)
        applier = WALApplier(replica, 0)
        applier.feed(spliced)
        assert applier.groups_abandoned == 1
        assert applier.ack_lsn == len(spliced)
        names = {values[0] for _, values in table_rows(replica)}
        assert "survivor" in names and "doomed" not in names

    def test_stream_joined_mid_group_never_applies_orphans(self):
        data, _ = self._stream([
            lambda db: db.sql("BEGIN"),
            lambda db: db.sql("INSERT INTO t VALUES ('in-txn', 7)"),
            lambda db: db.sql("COMMIT"),
        ])
        scan = scan_records(data, 0)
        group = [r for r in scan.records if r.txn_id != 0]
        # Start the stream after TXN_BEGIN: the insert and commit are
        # orphans of a group whose head we never saw.
        start = group[1].lsn
        replica = Database(buffer_pages=32)
        applier = WALApplier(replica, start)
        applier.feed(data[start:])
        assert applier.orphan_records >= 1
        assert applier.txns_applied == 0
        assert table_rows(replica) == ()


# ---------------------------------------------------------------------------
# read-only enforcement + snapshot round-trip
# ---------------------------------------------------------------------------

class TestReadOnlyAndSnapshot:
    def test_read_only_database_rejects_writes_twice_over(self):
        db = make_wal_db()
        db.insert("t", ["a", 1])
        db.read_only = True
        with pytest.raises(ReadOnlyReplicaError):
            db.sql("INSERT INTO t VALUES ('nope', 1)")
        with pytest.raises(ReadOnlyReplicaError):
            db.sql("BEGIN")
        with pytest.raises(ReadOnlyReplicaError):
            # Bypassing the session layer still hits the WAL-layer guard.
            db.insert("t", ["nope", 2])
        assert len(db.sql("SELECT name FROM t")) == 1  # reads still fine

    def test_applier_writes_bypass_the_guard(self):
        data, origin = self._origin()
        replica = Database(buffer_pages=32)
        replica.read_only = True
        WALApplier(replica, 0).feed(data)
        assert table_rows(replica) == table_rows(origin)

    def _origin(self):
        db = make_wal_db()
        db.insert("t", ["a", 1])
        return db.wal.device.durable(), db

    def test_snapshot_bytes_round_trips_with_lsn(self):
        db = make_wal_db()
        for i in range(3):
            db.insert("t", [f"r{i}", i])
        image = db.snapshot_bytes()
        clone = Database.load_bytes(image)
        assert table_rows(clone) == table_rows(db)
        assert clone.checkpoint_lsn == db.wal.next_lsn
        # snapshot_bytes must NOT truncate the WAL (bootstrap must be
        # able to stream the tail from before the snapshot point).
        assert db.wal.read_stream(0, 1 << 20)[1] == "ok"


# ---------------------------------------------------------------------------
# end-to-end: primary server + replica server
# ---------------------------------------------------------------------------

class TestEndToEnd:
    def test_replica_serves_bootstrapped_and_streamed_rows(self, pair):
        primary, rh = pair
        with QueryClient("127.0.0.1", primary.port) as c:
            for i in range(10):
                c.execute(f"INSERT INTO t VALUES ('live{i}', {i})")
        assert rh.replica.link.wait_caught_up(10)
        with QueryClient("127.0.0.1", rh.port) as c:
            got = c.execute("SELECT name, v FROM t")
        assert got["row_count"] == 15  # 5 seeded + 10 streamed
        assert table_rows(rh.replica.db) == table_rows(primary.db)

    def test_writes_answer_typed_read_only_error(self, pair):
        _, rh = pair
        with QueryClient("127.0.0.1", rh.port) as c:
            with pytest.raises(ServerError) as exc_info:
                c.execute("INSERT INTO t VALUES ('nope', 0)")
            assert exc_info.value.error_type == "ReadOnlyReplicaError"
            with pytest.raises(ServerError) as exc_info:
                c.execute("BEGIN")
            assert exc_info.value.error_type == "ReadOnlyReplicaError"

    def test_health_carries_repl_lag_fields(self, pair):
        primary, rh = pair
        with QueryClient("127.0.0.1", rh.port) as c:
            repl = c.health()["repl"]
        assert repl["role"] == "replica"
        assert repl["bootstrapped"] and repl["connected"]
        assert repl["applied_lsn"] > 0
        assert repl["lag_bytes"] >= 0 and repl["lag_seconds"] >= 0.0
        assert repl["replica_id"] == rh.replica.replica_id
        with QueryClient("127.0.0.1", primary.port) as c:
            health = c.health()
        assert health["repl"]["role"] == "primary"
        assert rh.replica.replica_id in health["repl"]["streams"]
        assert health["lsn"] == primary.db.wal.flushed_lsn
        gauges = rh.replica.db.metrics.snapshot()
        assert "repl.applied_lsn" in gauges

    def test_bounded_staleness_read_waits_or_fails_typed(self, pair):
        primary, rh = pair
        rc = ResilientQueryClient("127.0.0.1", primary.port)
        rc.execute("INSERT INTO t VALUES ('fresh', 99)")
        lsn = rc.last_commit_lsn
        assert lsn > 0
        with QueryClient("127.0.0.1", rh.port) as c:
            got = c.execute("SELECT name FROM t WHERE v = 99",
                            min_lsn=lsn, min_lsn_timeout=5.0)
            assert got["row_count"] == 1  # waited for the apply
            with pytest.raises(ServerError) as exc_info:
                c.execute("SELECT name FROM t", min_lsn=10 ** 12,
                          min_lsn_timeout=0.05)
            assert exc_info.value.error_type == "ReplicaLaggingError"
        rc.close()

    def test_checkpoint_on_live_primary_loses_no_records(self, pair, tmp_path):
        primary, rh = pair
        with QueryClient("127.0.0.1", primary.port) as c:
            for i in range(5):
                c.execute(f"INSERT INTO t VALUES ('pre{i}', {i})")
        primary.db.save(tmp_path / "ckpt.img")  # truncates the WAL
        with QueryClient("127.0.0.1", primary.port) as c:
            for i in range(5):
                c.execute(f"INSERT INTO t VALUES ('post{i}', {i})")
        assert rh.replica.link.wait_caught_up(10)
        assert table_rows(rh.replica.db) == table_rows(primary.db)

    def test_detached_replica_rebootstraps_after_falling_off_the_log(
            self, primary, tmp_path):
        rh = ReplicaHarness(primary.port)
        try:
            assert rh.replica.wait_ready(10)
            assert rh.replica.link.wait_caught_up(10)
            # Sever the link and drop its retention pin, then move the
            # log past it: the replica's resume point falls off.
            rh.replica.link.stop(join=True)
            with primary.db._commit_mutex:
                primary.db.wal.unregister_stream(rh.replica.replica_id)
            for i in range(8):
                primary.db.insert("t", [f"gap{i}", i])
            primary.db.save(tmp_path / "ckpt.img")
            bootstraps = rh.replica.link.bootstraps
            rh.replica.link._stop.clear()
            rh.replica.link.start()
            assert wait_for(
                lambda: rh.replica.link.bootstraps > bootstraps, 10
            ), "too_old answer did not trigger a re-bootstrap"
            assert rh.replica.link.wait_caught_up(10)
            assert table_rows(rh.replica.db) == table_rows(primary.db)
        finally:
            rh.stop()


class TestPromoteAndFailover:
    def test_promote_then_write(self, pair):
        primary, rh = pair
        assert rh.replica.link.wait_caught_up(10)
        with QueryClient("127.0.0.1", rh.port) as c:
            result = c.request({"op": "promote"})
            assert result["promoted"]
            c.execute("INSERT INTO t VALUES ('after-promote', 1)")
            got = c.execute("SELECT name FROM t")
            assert got["row_count"] == 6
            # Idempotent: a second promote is a no-op answer, not an error.
            again = c.request({"op": "promote"})
            assert again.get("already_primary")

    def test_promote_before_bootstrap_is_refused(self):
        # Point the replica at a dead port: bootstrap can never finish.
        replica = ReplicaServer("127.0.0.1", 1, retry=RetryPolicy(
            max_attempts=2, base_delay=0.001, max_delay=0.01))
        with pytest.raises(ReplicationError):
            replica.promote()

    def test_promoted_replica_serves_new_replicas(self, pair):
        primary, rh = pair
        assert rh.replica.link.wait_caught_up(10)
        rh.replica.promote()
        rh.replica.db.insert("t", ["chained", 42])
        chained = ReplicaHarness(rh.port)
        try:
            assert chained.replica.wait_ready(10)
            assert chained.replica.link.wait_caught_up(10)
            assert table_rows(chained.replica.db) == table_rows(
                rh.replica.db)
        finally:
            chained.stop()

    def test_reads_fail_over_when_primary_dies(self, pair):
        primary, rh = pair
        rc = ResilientQueryClient(
            "127.0.0.1", primary.port,
            replicas=[("127.0.0.1", rh.port)],
            retry=RetryPolicy(max_attempts=6, base_delay=0.01,
                              max_delay=0.05),
        )
        assert rc.execute("SELECT name FROM t")["row_count"] == 5
        primary.stop()
        # Reads rotate onto the replica; a write must surface a typed
        # error (never a silent ambiguous retry).
        assert rc.execute("SELECT name FROM t")["row_count"] == 5
        assert rc.failovers >= 1
        with pytest.raises((ServerError, OSError)):
            rc.execute("INSERT INTO t VALUES ('lost', 0)")
        rc.close()

    def test_replica_list_learned_at_runtime(self, pair):
        primary, rh = pair
        rc = ResilientQueryClient("127.0.0.1", primary.port)
        rc.add_replica("127.0.0.1", rh.port)
        assert len(rc.endpoints) == 2
        primary.stop()
        assert rc.execute("SELECT name FROM t")["row_count"] == 5
        rc.close()


class TestReplicationLag:
    def test_lag_metrics_advance_under_ingest(self, pair):
        primary, rh = pair
        link = rh.replica.link
        for i in range(20):
            primary.db.insert("t", [f"m{i}", i])
        assert link.wait_caught_up(10)
        assert link.lag_bytes() == 0
        assert link.lag_seconds() == 0.0
        snap = rh.replica.db.metrics.snapshot()
        assert snap.get("repl.records_applied", 0) >= 20
