"""Crash matrix for Database.save()/load().

``save()`` flushes every dirty page and then writes the image via a
temporary file + atomic rename. A crash at *any* point must leave a path
that either loads to an integrity-checked database (old or new state) or
raises a typed :class:`~repro.errors.CorruptImageError` — never a load
that silently returns wrong data.

The matrix injects a fail-stop at every disk-write index of the flush on a
pickled clone (the original stays pristine), plus the tmp-file crash
window between write and rename.
"""

from __future__ import annotations

import pickle

import pytest

from repro.catalog.schema import Column
from repro.core.database import Database
from repro.errors import InjectedFaultError
from repro.faults import FaultPlan, install_faults
from repro.storage.record import ValueType


def make_db() -> Database:
    db = Database(buffer_pages=16)
    db.create_table("t", [Column("name", ValueType.TEXT),
                          Column("v", ValueType.INT)])
    db.create_index("t", "v")
    db.create_classifier_instance(
        "C", ["alpha", "beta"],
        [("apple alpha fruit", "alpha"), ("bear beta animal", "beta")],
    )
    db.sql("Alter Table t Add Indexable C")
    for i in range(40):
        oid = db.insert("t", [f"r{i}", i % 5])
        if i % 3 == 0:
            db.add_annotation("apple alpha fruit", table="t", oid=oid)
    return db


def clone(db: Database) -> Database:
    return pickle.loads(pickle.dumps(db))


def mutate(db: Database) -> None:
    """Dirty a spread of pages: heap, B-Trees, summary structures."""
    for i in range(20):
        oid = db.insert("t", [f"new{i}", 7])
        if i % 2 == 0:
            db.add_annotation("bear beta animal", table="t", oid=oid)
    db.delete_tuple("t", 1)


class TestCrashDuringSave:
    def test_every_write_index(self, tmp_path):
        base = make_db()
        path = tmp_path / "img.db"
        base.save(path)
        old_image = path.read_bytes()
        mutate(base)

        # Count the flush's disk writes on a throwaway clone.
        probe = clone(base)
        counter = install_faults(probe, FaultPlan())
        probe.save(tmp_path / "probe.db")
        total_writes = counter.write_ops
        assert total_writes > 0, "matrix is vacuous: no dirty pages to flush"

        for i in range(total_writes):
            path.write_bytes(old_image)
            victim = clone(base)
            install_faults(victim, FaultPlan().fail_write(at=i))
            with pytest.raises(InjectedFaultError):
                victim.save(path)
            # The old image is untouched (the file write never began) and
            # loads to a database that passes the full audit.
            restored = Database.load(path, verify=True)
            assert len(restored.catalog.table("t")) == 40

        # No fault: the save completes and the new state round-trips.
        survivor = clone(base)
        install_faults(survivor, FaultPlan())
        survivor.save(path)
        restored = Database.load(path, verify=True)
        assert len(restored.catalog.table("t")) == len(base.catalog.table("t"))

    def test_crash_between_tmp_write_and_rename(self, tmp_path):
        db = make_db()
        path = tmp_path / "img.db"
        db.save(path)
        old_image = path.read_bytes()
        mutate(db)
        # Simulate a crash after the tmp file was (partially) written but
        # before the atomic rename: the destination still holds the old
        # image and must load cleanly; the orphan tmp is just ignored.
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(b"partial garbage that never got renamed")
        restored = Database.load(path, verify=True)
        assert path.read_bytes() == old_image
        assert len(restored.catalog.table("t")) == 40

    def test_saved_image_same_after_failed_save(self, tmp_path):
        """A failed save must not leave a half-written destination."""
        db = make_db()
        path = tmp_path / "img.db"
        db.save(path)
        old_image = path.read_bytes()
        mutate(db)
        victim = clone(db)
        install_faults(victim, FaultPlan().fail_write(at=0))
        with pytest.raises(InjectedFaultError):
            victim.save(path)
        assert path.read_bytes() == old_image
