"""Vocabulary pools for the synthetic annotation generator.

Annotations describe "anything related to birds, e.g., color, body shape or
weight, certain behavior or sound, eating habits, geographic location, or
observed diseases" (§1.1). Each class label owns a distinctive keyword pool
so the Naive Bayes classifier and CluStream grouping exercise realistic
separable text.
"""

from __future__ import annotations

#: Labels of the ClassBird1 instance used throughout the evaluation (§6).
CLASS_LABELS = ["Disease", "Anatomy", "Behavior", "Other"]

CATEGORIES: dict[str, list[str]] = {
    "Disease": [
        "infection", "influenza", "avian", "flu", "virus", "parasite",
        "outbreak", "lesion", "sick", "illness", "disease", "pathogen",
        "botulism", "epidemic", "symptom", "mortality", "fungal", "mite",
    ],
    "Anatomy": [
        "wing", "wingspan", "beak", "bill", "feather", "plumage", "tail",
        "skeleton", "bone", "weight", "anatomy", "body", "shape", "size",
        "talon", "crest", "molt", "coloration", "iris", "webbed",
    ],
    "Behavior": [
        "migration", "nesting", "singing", "song", "foraging", "courtship",
        "feeding", "eating", "diving", "flying", "behavior", "flock",
        "roosting", "territorial", "display", "preening", "calling",
        "stonewort", "mating", "wintering",
    ],
    "Other": [
        "observation", "record", "survey", "volunteer", "photograph",
        "location", "region", "lake", "wetland", "coast", "provenance",
        "comment", "question", "note", "checklist", "county", "reserve",
        "experiment", "wikipedia", "article",
    ],
}

FILLER_WORDS = [
    "the", "observed", "during", "near", "with", "several", "adult",
    "juvenile", "morning", "evening", "reported", "appears", "noted",
    "unusual", "typical", "first", "seen", "around", "area", "study",
]

#: Seed training examples for the ClassBird1 Naive Bayes model — a few
#: hand-written documents per label, as a domain expert would provide when
#: instantiating the summary instance (§2.1 extensibility).
SEED_EXAMPLES: list[tuple[str, str]] = [
    ("observed infection and avian influenza symptoms in sick individuals "
     "virus outbreak mortality", "Disease"),
    ("parasite lesions and fungal pathogen illness reported disease "
     "epidemic botulism", "Disease"),
    ("mite infestation symptom sick bird disease", "Disease"),
    ("wing and wingspan measurements beak bill plumage feather tail",
     "Anatomy"),
    ("skeleton bone weight anatomy body shape size talon crest", "Anatomy"),
    ("molt coloration iris webbed feet plumage anatomy", "Anatomy"),
    ("migration and nesting behavior singing song foraging courtship",
     "Behavior"),
    ("feeding eating stonewort diving flying flock roosting behavior",
     "Behavior"),
    ("territorial display preening calling mating wintering behavior",
     "Behavior"),
    ("observation record survey volunteer photograph location", "Other"),
    ("provenance comment question note checklist county reserve", "Other"),
    ("experiment wikipedia article region lake wetland coast", "Other"),
]

GENERA = [
    "Anser", "Cygnus", "Ardea", "Haliaeetus", "Corvus", "Larus", "Turdus",
    "Passer", "Falco", "Strix", "Picus", "Sterna", "Grus", "Ciconia",
]

FAMILIES = [
    "Anatidae", "Ardeidae", "Accipitridae", "Corvidae", "Laridae",
    "Turdidae", "Passeridae", "Falconidae", "Strigidae", "Picidae",
    "Sternidae", "Gruidae",
]

HABITATS = [
    "wetland", "forest", "grassland", "coast", "tundra", "urban",
    "mountain", "desert-edge",
]

REGIONS = [
    "Nearctic", "Palearctic", "Neotropic", "Afrotropic", "Indomalaya",
    "Australasia",
]

EPITHETS = [
    "cygnoides", "olor", "cinerea", "albicilla", "corone", "argentatus",
    "merula", "domesticus", "peregrinus", "aluco", "viridis", "hirundo",
    "grus", "ciconia", "major", "minor", "alba", "nigra", "rustica",
    "flavus",
]
