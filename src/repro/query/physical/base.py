"""Physical operator base class and execution context."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.catalog.catalog import Catalog
from repro.query.eval import EvalContext
from repro.query.tuples import QTuple
from repro.summaries.maintenance import SummaryManager


@dataclass
class ExecContext:
    """Everything an operator may need at runtime.

    ``propagate`` mirrors the engine's summary-propagation switch: when off,
    results carry no summary objects and access paths may skip the
    SummaryStorage entirely (the Figure 13 "NoPropagation" cases).
    """

    catalog: Catalog
    manager: SummaryManager
    propagate: bool = True
    #: (table lowercase, instance) -> SummaryBTreeIndex
    summary_indexes: dict = field(default_factory=dict)
    #: (table lowercase, instance) -> BaselineClassifierIndex
    baseline_indexes: dict = field(default_factory=dict)
    #: (table lowercase, instance) -> NormalizedSnippetReplica (Figure 12)
    normalized_replicas: dict = field(default_factory=dict)
    #: (table lowercase, instance) -> TrigramKeywordIndex
    keyword_indexes: dict = field(default_factory=dict)
    eval_ctx: EvalContext = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.eval_ctx is None:
            self.eval_ctx = EvalContext(manager=self.manager)

    def summary_index(self, table: str, instance: str):
        return self.summary_indexes.get((table.lower(), instance))

    def baseline_index(self, table: str, instance: str):
        return self.baseline_indexes.get((table.lower(), instance))

    def normalized_replica(self, table: str, instance: str):
        return self.normalized_replicas.get((table.lower(), instance))

    def keyword_index(self, table: str, instance: str):
        return self.keyword_indexes.get((table.lower(), instance))


class PhysicalOperator:
    """Base class: every operator is an iterator of QTuples.

    Subclasses implement :meth:`_produce`; consumers call :meth:`rows`,
    which transparently instruments the iterator when an
    :class:`~repro.obs.profile.PlanProfiler` is attached (EXPLAIN ANALYZE)
    and/or checkpoints it when an
    :class:`~repro.resilience.context.ExecutionContext` is attached
    (deadlines, cooperative cancellation). The indirection keeps the
    operators themselves free of counting and checkpoint logic.

    Batch mode runs the same plan through :meth:`batches` instead: chunks
    of :class:`~repro.query.batch.Batch` flow between operators, with the
    same two instrumentation wrappers applied per batch. Operators without
    a native :meth:`_produce_batches` fall back to chunking their row
    iterator, so every plan runs in either mode.
    """

    #: Set per-instance by PlanProfiler.attach(); None = unprofiled run.
    profiler = None
    #: Set per-instance by ExecutionContext.attach(); None = no deadline or
    #: cancellation checkpoints.
    runtime = None
    #: Set by the Database on a plan's root: materialize every row view of
    #: an outgoing batch *inside* this operator's instrumented iterator, so
    #: lazy summary reads are charged to the plan (keeping the profiler's
    #: sum-to-run-totals invariant) and covered by deadline checkpoints.
    materialize_output = False

    def _produce(self) -> Iterator[QTuple]:
        raise NotImplementedError

    def rows(self) -> Iterator[QTuple]:
        inner = self._produce()
        if self.profiler is not None:
            inner = self.profiler.wrap(self, inner)
        if self.runtime is not None:
            # Runtime checks go outermost so a checkpoint covers the
            # profiler's bookkeeping too.
            inner = self.runtime.wrap(self, inner)
        return inner

    def _produce_batches(self):
        """Default batch production: chunk the operator's own row logic."""
        from repro.query.batch import batches_from_rows

        yield from batches_from_rows(self._produce())

    def batches(self):
        inner = self._produce_batches()
        if self.materialize_output:
            inner = self._materialized(inner)
        if self.profiler is not None:
            inner = self.profiler.wrap_batches(self, inner)
        if self.runtime is not None:
            inner = self.runtime.wrap_batches(self, inner)
        return inner

    @staticmethod
    def _materialized(inner):
        for batch in inner:
            batch.to_rows()
            yield batch

    def __iter__(self) -> Iterator[QTuple]:
        return self.rows()

    @property
    def children(self) -> list["PhysicalOperator"]:
        return []

    def label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)
