"""Benchmark harness shared by every ``benchmarks/bench_*.py`` file.

See DESIGN.md §3 for the experiment index mapping each bench to the paper
figure it regenerates.
"""

from repro.bench.harness import (
    CachedDatabaseMutated,
    FigureTable,
    Measurement,
    cached_database,
    clear_cache,
    fresh_database,
    measure,
    measure_sql,
)
from repro.bench.presets import (
    FULL_SWEEP,
    PAPER_LABELS,
    PRESETS,
    ScalePreset,
    active_preset,
)

__all__ = [
    "FigureTable",
    "Measurement",
    "ScalePreset",
    "PRESETS",
    "PAPER_LABELS",
    "FULL_SWEEP",
    "active_preset",
    "CachedDatabaseMutated",
    "cached_database",
    "fresh_database",
    "clear_cache",
    "measure",
    "measure_sql",
]
