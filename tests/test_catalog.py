"""Unit tests for schemas, key encodings, tables, and the catalog."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, Column, Schema, Table
from repro.catalog.keys import (
    encode_bool,
    encode_float,
    encode_int,
    decode_int,
    encode_key,
    encode_text,
)
from repro.errors import CatalogError, RecordNotFoundError, SchemaError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.record import ValueType


def make_pool():
    return BufferPool(DiskManager(), capacity=512)


def birds_schema():
    return Schema(
        [
            Column("name", ValueType.TEXT),
            Column("family", ValueType.TEXT),
            Column("weight", ValueType.FLOAT),
            Column("sightings", ValueType.INT),
        ]
    )


class TestSchema:
    def test_basic_lookup(self):
        schema = birds_schema()
        assert schema.index_of("family") == 1
        assert schema.column("weight").type is ValueType.FLOAT
        assert "name" in schema
        assert "bogus" not in schema

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("a", ValueType.INT), Column("a", ValueType.TEXT)])

    def test_row_from_dict_orders_values(self):
        schema = birds_schema()
        row = schema.row_from_dict({"sightings": 5, "name": "swan"})
        assert row == ["swan", None, None, 5]

    def test_row_from_dict_unknown_column(self):
        with pytest.raises(SchemaError):
            birds_schema().row_from_dict({"nope": 1})

    def test_validate_not_nullable(self):
        schema = Schema([Column("id", ValueType.INT, nullable=False)])
        with pytest.raises(SchemaError):
            schema.validate_row([None])

    def test_project(self):
        sub = birds_schema().project(["weight", "name"])
        assert sub.names == ["weight", "name"]


class TestKeyEncodings:
    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1),
           st.integers(min_value=-(2**63), max_value=2**63 - 1))
    @settings(max_examples=100)
    def test_int_order_preserved(self, a, b):
        assert (encode_int(a) < encode_int(b)) == (a < b)

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    @settings(max_examples=50)
    def test_int_roundtrip(self, a):
        assert decode_int(encode_int(a)) == a

    @given(
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.floats(allow_nan=False, allow_infinity=False, width=64),
    )
    @settings(max_examples=100)
    def test_float_order_preserved(self, a, b):
        if a < b:
            assert encode_float(a) < encode_float(b)
        elif a > b:
            assert encode_float(a) > encode_float(b)

    @given(st.text(max_size=30), st.text(max_size=30))
    @settings(max_examples=50)
    def test_text_prefix_order(self, a, b):
        # utf-8 lexicographic order agrees with codepoint order
        assert (encode_text(a) < encode_text(b)) == (a < b)

    def test_bool_order(self):
        assert encode_bool(False) < encode_bool(True)

    def test_null_sorts_first(self):
        assert encode_key(None, ValueType.INT) < encode_key(-(2**63), ValueType.INT)
        assert encode_key(None, ValueType.TEXT) < encode_key("", ValueType.TEXT)


class TestTable:
    def test_insert_read_roundtrip(self):
        table = Table("birds", birds_schema(), make_pool())
        oid = table.insert({"name": "swan goose", "family": "Anatidae",
                            "weight": 3.2, "sightings": 12})
        assert table.read_dict(oid)["name"] == "swan goose"
        assert len(table) == 1

    def test_oids_monotonic(self):
        table = Table("birds", birds_schema(), make_pool())
        oids = [table.insert({"name": f"b{i}"}) for i in range(5)]
        assert oids == [1, 2, 3, 4, 5]

    def test_disk_tuple_loc_resolves(self):
        table = Table("birds", birds_schema(), make_pool())
        oid = table.insert({"name": "x"})
        rid = table.disk_tuple_loc(oid)
        assert table.read_at(rid)[0] == "x"

    def test_read_missing_oid_raises(self):
        table = Table("birds", birds_schema(), make_pool())
        with pytest.raises(RecordNotFoundError):
            table.read(99)

    def test_update_changes_values(self):
        table = Table("birds", birds_schema(), make_pool())
        oid = table.insert({"name": "a", "sightings": 1})
        table.update(oid, {"sightings": 2})
        assert table.read_dict(oid)["sightings"] == 2
        assert table.read_dict(oid)["name"] == "a"

    def test_delete_removes_tuple(self):
        table = Table("birds", birds_schema(), make_pool())
        oid = table.insert({"name": "gone"})
        table.delete(oid)
        assert len(table) == 0
        with pytest.raises(RecordNotFoundError):
            table.read(oid)

    def test_scan_returns_all(self):
        table = Table("birds", birds_schema(), make_pool())
        for i in range(200):
            table.insert({"name": f"bird-{i}", "sightings": i})
        rows = dict(table.scan())
        assert len(rows) == 200
        assert rows[1][0] == "bird-0"

    def test_secondary_index_lookup(self):
        table = Table("birds", birds_schema(), make_pool())
        for i in range(50):
            table.insert({"name": f"b{i}", "family": f"fam{i % 5}"})
        table.create_index("family")
        oids = table.index_lookup("family", "fam3")
        assert len(oids) == 10
        for oid in oids:
            assert table.read_dict(oid)["family"] == "fam3"

    def test_secondary_index_range(self):
        table = Table("birds", birds_schema(), make_pool())
        for i in range(100):
            table.insert({"name": f"b{i}", "sightings": i})
        table.create_index("sightings")
        oids = list(table.index_range("sightings", 10, 19))
        assert len(oids) == 10
        values = [table.read_dict(o)["sightings"] for o in oids]
        assert values == sorted(values)

    def test_index_maintained_on_update_and_delete(self):
        table = Table("birds", birds_schema(), make_pool())
        oid = table.insert({"name": "b", "sightings": 5})
        table.create_index("sightings")
        table.update(oid, {"sightings": 7})
        assert table.index_lookup("sightings", 5) == []
        assert table.index_lookup("sightings", 7) == [oid]
        table.delete(oid)
        assert table.index_lookup("sightings", 7) == []

    def test_duplicate_index_rejected(self):
        table = Table("birds", birds_schema(), make_pool())
        table.create_index("family")
        with pytest.raises(CatalogError):
            table.create_index("family")

    def test_lookup_without_index_raises(self):
        table = Table("birds", birds_schema(), make_pool())
        with pytest.raises(CatalogError):
            table.index_lookup("family", "x")


class TestCatalog:
    def test_create_and_get(self):
        catalog = Catalog(make_pool())
        catalog.create_table("Birds", birds_schema())
        assert catalog.has_table("birds")  # case-insensitive
        assert catalog.table("BIRDS").name == "Birds"

    def test_duplicate_table_rejected(self):
        catalog = Catalog(make_pool())
        catalog.create_table("t", birds_schema())
        with pytest.raises(CatalogError):
            catalog.create_table("T", birds_schema())

    def test_drop_table(self):
        catalog = Catalog(make_pool())
        catalog.create_table("t", birds_schema())
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        with pytest.raises(CatalogError):
            catalog.table("t")
