"""B-Tree node serialization.

Two node kinds share a page format discriminated by a leading byte:

Leaf::

    [ 0x01 | num:u16 | next_leaf:i32 | (klen:u16, key, vlen:u16, value)* ]

Internal::

    [ 0x00 | num:u16 | child0:u32 | (klen:u16, key, vlen:u16, value,
                                     child:u32)* ]

Internal separators are full ``(key, value)`` composites: entries strictly
less than separator *i* live under child *i*; entries greater than or equal
live to its right. This routes duplicate keys deterministically.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import CorruptPageError, StorageError

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I32 = struct.Struct("<i")


def _read_chunk(data: bytes | bytearray, pos: int, length: int) -> bytes:
    """Slice ``length`` bytes, refusing silent truncation past the page end."""
    if pos + length > len(data):
        raise CorruptPageError(
            f"node field of {length} bytes at offset {pos} runs past the "
            f"{len(data)}-byte page"
        )
    return bytes(data[pos:pos + length])

LEAF_TAG = 1
INTERNAL_TAG = 0

#: Composite entry: (key bytes, value bytes). Ordered lexicographically as a
#: pair.
Entry = tuple[bytes, bytes]


def entry_size(entry: Entry) -> int:
    """Serialized size of one (key, value) pair in a leaf."""
    return 4 + len(entry[0]) + len(entry[1])


def separator_size(entry: Entry) -> int:
    """Serialized size of one separator + child pointer in an internal node."""
    return entry_size(entry) + 4


@dataclass
class LeafNode:
    """A leaf holds sorted entries plus a pointer to the next leaf."""

    entries: list[Entry] = field(default_factory=list)
    next_leaf: int = -1  # page id of right sibling, -1 for none
    #: Cached serialized size; ``None`` means recompute.  Kept current by
    #: :meth:`insert_entry`/:meth:`remove_entry`; bulk reslices of
    #: ``entries`` must call :meth:`invalidate_size`.
    _size: int | None = field(default=None, repr=False, compare=False)

    def serialized_size(self) -> int:
        if self._size is None:
            self._size = 1 + 2 + 4 + sum(entry_size(e) for e in self.entries)
        return self._size

    def insert_entry(self, pos: int, entry: Entry) -> None:
        self.entries.insert(pos, entry)
        if self._size is not None:
            self._size += entry_size(entry)

    def remove_entry(self, pos: int) -> None:
        entry = self.entries.pop(pos)
        if self._size is not None:
            self._size -= entry_size(entry)

    def invalidate_size(self) -> None:
        self._size = None

    def to_bytes(self, page_size: int) -> bytearray:
        pack = _U16.pack
        parts = [bytes([LEAF_TAG]), pack(len(self.entries)),
                 _I32.pack(self.next_leaf)]
        for key, value in self.entries:
            parts += (pack(len(key)), key, pack(len(value)), value)
        body = b"".join(parts)
        data = bytearray(page_size)
        data[:len(body)] = body
        return data

    @classmethod
    def from_bytes(cls, data: bytes | bytearray) -> "LeafNode":
        try:
            (num,) = _U16.unpack_from(data, 1)
            (next_leaf,) = _I32.unpack_from(data, 3)
            entries: list[Entry] = []
            pos = 7
            for _ in range(num):
                (klen,) = _U16.unpack_from(data, pos)
                pos += 2
                key = _read_chunk(data, pos, klen)
                pos += klen
                (vlen,) = _U16.unpack_from(data, pos)
                pos += 2
                value = _read_chunk(data, pos, vlen)
                pos += vlen
                entries.append((key, value))
        except struct.error as exc:
            raise CorruptPageError(f"corrupt leaf node: {exc}") from exc
        # ``pos`` ends exactly at the serialized size: seed the cache.
        return cls(entries, next_leaf, _size=pos)


@dataclass
class InternalNode:
    """An internal node: ``children[i]`` < ``separators[i]`` <= ``children[i+1]``."""

    separators: list[Entry] = field(default_factory=list)
    children: list[int] = field(default_factory=list)  # page ids
    #: Cached serialized size; see :class:`LeafNode`.
    _size: int | None = field(default=None, repr=False, compare=False)

    def serialized_size(self) -> int:
        if self._size is None:
            self._size = 1 + 2 + 4 + sum(
                separator_size(s) for s in self.separators
            )
        return self._size

    def insert_separator(self, pos: int, separator: Entry,
                         child: int) -> None:
        """Insert ``separator`` with ``child`` as its right subtree."""
        self.separators.insert(pos, separator)
        self.children.insert(pos + 1, child)
        if self._size is not None:
            self._size += separator_size(separator)

    def invalidate_size(self) -> None:
        self._size = None

    def to_bytes(self, page_size: int) -> bytearray:
        if len(self.children) != len(self.separators) + 1:
            raise StorageError("internal node child/separator mismatch")
        pack16 = _U16.pack
        pack32 = _U32.pack
        parts = [bytes([INTERNAL_TAG]), pack16(len(self.separators)),
                 pack32(self.children[0])]
        for sep, child in zip(self.separators, self.children[1:]):
            key, value = sep
            parts += (pack16(len(key)), key, pack16(len(value)), value,
                      pack32(child))
        body = b"".join(parts)
        data = bytearray(page_size)
        data[:len(body)] = body
        return data

    @classmethod
    def from_bytes(cls, data: bytes | bytearray) -> "InternalNode":
        try:
            (num,) = _U16.unpack_from(data, 1)
            (child0,) = _U32.unpack_from(data, 3)
            separators: list[Entry] = []
            children = [child0]
            pos = 7
            for _ in range(num):
                (klen,) = _U16.unpack_from(data, pos)
                pos += 2
                key = _read_chunk(data, pos, klen)
                pos += klen
                (vlen,) = _U16.unpack_from(data, pos)
                pos += 2
                value = _read_chunk(data, pos, vlen)
                pos += vlen
                (child,) = _U32.unpack_from(data, pos)
                pos += 4
                separators.append((key, value))
                children.append(child)
        except struct.error as exc:
            raise CorruptPageError(f"corrupt internal node: {exc}") from exc
        return cls(separators, children, _size=pos)


def parse_node(data: bytes | bytearray) -> LeafNode | InternalNode:
    """Parse a node page into the right node class.

    Raises :class:`~repro.errors.CorruptPageError` on an unknown node tag or
    on fields that run past the page boundary, so corrupted node pages
    surface as typed errors instead of decoding garbage.
    """
    if len(data) == 0:
        raise CorruptPageError("empty node page")
    if data[0] == LEAF_TAG:
        return LeafNode.from_bytes(data)
    if data[0] == INTERNAL_TAG:
        return InternalNode.from_bytes(data)
    raise CorruptPageError(f"unknown node tag {data[0]}")
