"""Per-operator execution profiling (the machinery behind EXPLAIN ANALYZE).

A :class:`PlanProfiler` attaches to a physical plan before execution.  Every
operator's iterator is then wrapped (see
:meth:`repro.query.physical.base.PhysicalOperator.rows`) so that each
``next()`` call charges to that operator:

* rows produced and ``next()`` calls,
* wall time,
* the buffer-pool (hits/misses) and disk (reads/writes) counter deltas
  observed across the call, and
* the summary-cache hit/miss deltas (when the database runs with a
  :class:`~repro.cache.SummaryCache` attached).

Measurements are *inclusive* while running — a join's ``next()`` contains
the work of the scans it pulls from — and converted to *exclusive* ("self")
numbers at report time by subtracting the children's inclusive totals.
Because every child row is pulled from inside some ancestor's ``next()``,
the exclusive numbers of a plan tree sum exactly to the run's totals: the
per-operator page accesses add up to the buffer-pool delta and the
per-operator disk reads/writes add up to the run's :class:`IOStats` delta —
the invariant the Figure 10–13 access-path claims are read off of.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator


@dataclass
class OperatorStats:
    """Inclusive execution counters of one physical operator."""

    label: str
    rows: int = 0
    next_calls: int = 0
    wall_s: float = 0.0
    pool_hits: int = 0
    pool_misses: int = 0
    disk_reads: int = 0
    disk_writes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def pages(self) -> int:
        """Logical page accesses (buffer-pool requests)."""
        return self.pool_hits + self.pool_misses


class PlanProfiler:
    """Charges execution work to the physical operators of one plan."""

    def __init__(self, pool, disk, cache=None) -> None:
        self.pool = pool
        self.disk = disk
        #: summary cache whose hit/miss counters are attributed per
        #: operator (None: the cache columns stay zero).
        self.cache = cache
        self.root = None
        self._stats: dict[int, OperatorStats] = {}

    # -- wiring ---------------------------------------------------------------

    def attach(self, root) -> "PlanProfiler":
        """Register every operator of ``root``'s tree with this profiler."""
        self.root = root
        stack = [root]
        while stack:
            op = stack.pop()
            op.profiler = self
            self._stats[id(op)] = OperatorStats(op.label())
            stack.extend(op.children)
        return self

    def stats_for(self, op) -> OperatorStats:
        return self._stats[id(op)]

    def wrap(self, op, inner: Iterator) -> Iterator:
        """Instrumented pass-through over one operator's row iterator."""
        stats = self._stats[id(op)]
        pool = self.pool
        io = self.disk.stats
        cache = self.cache
        while True:
            hits0, misses0 = pool.hits, pool.misses
            reads0, writes0 = io.reads, io.writes
            chits0 = cache.hits if cache is not None else 0
            cmisses0 = cache.misses if cache is not None else 0
            started = time.perf_counter()
            try:
                row = next(inner)
            except StopIteration:
                self._charge(stats, started, hits0, misses0, reads0, writes0,
                             chits0, cmisses0)
                return
            self._charge(stats, started, hits0, misses0, reads0, writes0,
                         chits0, cmisses0)
            stats.rows += 1
            yield row

    def wrap_batches(self, op, inner: Iterator) -> Iterator:
        """Batch-mode counterpart of :meth:`wrap`: one charge per batch
        pulled, with ``rows`` advanced by the batch's row count — so the
        per-operator row totals match tuple mode exactly, while
        ``next_calls`` counts batch pulls."""
        stats = self._stats[id(op)]
        pool = self.pool
        io = self.disk.stats
        cache = self.cache
        while True:
            hits0, misses0 = pool.hits, pool.misses
            reads0, writes0 = io.reads, io.writes
            chits0 = cache.hits if cache is not None else 0
            cmisses0 = cache.misses if cache is not None else 0
            started = time.perf_counter()
            try:
                batch = next(inner)
            except StopIteration:
                self._charge(stats, started, hits0, misses0, reads0, writes0,
                             chits0, cmisses0)
                return
            self._charge(stats, started, hits0, misses0, reads0, writes0,
                         chits0, cmisses0)
            stats.rows += len(batch)
            yield batch

    def _charge(
        self,
        stats: OperatorStats,
        started: float,
        hits0: int,
        misses0: int,
        reads0: int,
        writes0: int,
        chits0: int = 0,
        cmisses0: int = 0,
    ) -> None:
        stats.wall_s += time.perf_counter() - started
        stats.next_calls += 1
        stats.pool_hits += self.pool.hits - hits0
        stats.pool_misses += self.pool.misses - misses0
        stats.disk_reads += self.disk.stats.reads - reads0
        stats.disk_writes += self.disk.stats.writes - writes0
        if self.cache is not None:
            stats.cache_hits += self.cache.hits - chits0
            stats.cache_misses += self.cache.misses - cmisses0

    # -- reporting ------------------------------------------------------------

    def summarize(self) -> list[dict]:
        """Pre-order list of per-operator entries with inclusive and
        exclusive ("self") counters."""
        assert self.root is not None, "profiler was never attached"
        out: list[dict] = []

        def visit(op, depth: int) -> None:
            s = self._stats[id(op)]
            kids = [self._stats[id(c)] for c in op.children]
            out.append({
                "label": s.label,
                "depth": depth,
                "rows": s.rows,
                "next_calls": s.next_calls,
                "time_s": s.wall_s,
                "pages": s.pages,
                "reads": s.disk_reads,
                "writes": s.disk_writes,
                "self_time_s": max(
                    s.wall_s - sum(k.wall_s for k in kids), 0.0
                ),
                "self_pages": s.pages - sum(k.pages for k in kids),
                "self_hits": s.pool_hits - sum(k.pool_hits for k in kids),
                "self_misses": s.pool_misses - sum(k.pool_misses for k in kids),
                "self_reads": s.disk_reads - sum(k.disk_reads for k in kids),
                "self_writes": s.disk_writes - sum(k.disk_writes for k in kids),
                "cache_hits": s.cache_hits,
                "cache_misses": s.cache_misses,
                "self_cache_hits":
                    s.cache_hits - sum(k.cache_hits for k in kids),
                "self_cache_misses":
                    s.cache_misses - sum(k.cache_misses for k in kids),
            })
            for child in op.children:
                visit(child, depth + 1)

        visit(self.root, 0)
        return out

    def render(self) -> str:
        """The annotated plan tree EXPLAIN ANALYZE prints."""
        lines = []
        for e in self.summarize():
            indent = "  " * e["depth"]
            line = (
                f"{indent}{e['label']}"
                f"  (rows={e['rows']} next={e['next_calls']}"
                f" self_ms={e['self_time_s'] * 1e3:.2f}"
                f" pages={e['self_pages']}"
                f" reads={e['self_reads']} writes={e['self_writes']}"
            )
            if e["self_cache_hits"] or e["self_cache_misses"]:
                line += (
                    f" cache={e['self_cache_hits']}/"
                    f"{e['self_cache_hits'] + e['self_cache_misses']}"
                )
            lines.append(line + ")")
        return "\n".join(lines)
