"""Expression evaluation over runtime tuples.

Summary expressions are evaluated by walking their call chain starting at
the tuple's ``$`` summary set; each link dispatches on the receiver type
(SummarySet / Classifier / Snippet / Cluster object) to the §3.1
manipulation functions. Keyword-search functions consult the snippets first
and fall back to the raw annotations through the
:class:`EvalContext` — the accuracy/performance tradeoff studied in [16].
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.query.ast import (
    UdfCall,
    AggCall,
    And,
    ColumnRef,
    Comparison,
    Expr,
    Literal,
    Not,
    ObjectFunc,
    Or,
    SummaryExpr,
)
from repro.query.tuples import QTuple
from repro.summaries.functions import SummarySet
from repro.summaries.objects import (
    ClassifierObject,
    ClusterObject,
    SnippetObject,
    SummaryObject,
)


@dataclass
class EvalContext:
    """Execution-wide services the evaluator may need.

    ``manager`` resolves raw annotation texts for keyword-search fallback;
    ``search_raw`` can be disabled to search snippets only (faster, possibly
    less complete — the [16] tradeoff).
    """

    manager: object | None = None  # SummaryManager, typed loosely to avoid cycles
    search_raw: bool = True
    #: registered black-box UDFs over summary sets (§3.2): name -> callable
    udfs: dict = field(default_factory=dict)
    _raw_cache: dict[int, str] = field(default_factory=dict)

    def raw_texts(self, ann_ids: list[int]) -> list[str]:
        if self.manager is None:
            return []
        missing = [a for a in ann_ids if a not in self._raw_cache]
        if missing:
            for ann_id, text in zip(
                missing, self.manager.annotations.texts(missing)
            ):
                self._raw_cache[ann_id] = text
        return [self._raw_cache[a] for a in ann_ids]


def like_match(value: str, pattern: str) -> bool:
    """SQL LIKE with ``%`` and ``_`` wildcards (also accepts ``*`` as a
    convenience alias for ``%``, matching the paper's "Swan*" example)."""
    regex = "".join(
        ".*" if ch in "%*" else "." if ch == "_" else re.escape(ch)
        for ch in pattern
    )
    # DOTALL: SQL's % and _ match any character, including newlines —
    # annotations are multi-line text.
    flags = re.IGNORECASE | re.DOTALL
    return re.fullmatch(regex, value, flags=flags) is not None


def evaluate(expr: Expr, row: QTuple, ctx: EvalContext | None = None) -> object:
    """Evaluate ``expr`` against one tuple. Comparison with NULL is False."""
    ctx = ctx or EvalContext()
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        name = f"{expr.alias}.{expr.column}" if expr.alias else expr.column
        return row.get(name)
    if isinstance(expr, SummaryExpr):
        return evaluate_summary_expr(expr, row, ctx)
    if isinstance(expr, Comparison):
        return _compare(expr, row, ctx)
    if isinstance(expr, And):
        return all(bool(evaluate(i, row, ctx)) for i in expr.items)
    if isinstance(expr, Or):
        return any(bool(evaluate(i, row, ctx)) for i in expr.items)
    if isinstance(expr, Not):
        return not bool(evaluate(expr.item, row, ctx))
    if isinstance(expr, UdfCall):
        fn = ctx.udfs.get(expr.name)
        if fn is None:
            raise QueryError(f"unknown UDF {expr.name!r}")
        return fn(*[evaluate(a, row, ctx) for a in expr.args])
    if isinstance(expr, AggCall):
        raise QueryError(
            f"aggregate {expr.func} outside GROUP BY evaluation"
        )
    raise QueryError(f"cannot evaluate expression {expr!r}")


def _compare(expr: Comparison, row: QTuple, ctx: EvalContext) -> bool:
    left = evaluate(expr.left, row, ctx)
    right = evaluate(expr.right, row, ctx)
    if left is None or right is None:
        return False
    if expr.op == "LIKE":
        return like_match(str(left), str(right))
    if expr.op == "=":
        return left == right
    if expr.op == "<>":
        return left != right
    try:
        if expr.op == "<":
            return left < right
        if expr.op == "<=":
            return left <= right
        if expr.op == ">":
            return left > right
        if expr.op == ">=":
            return left >= right
    except TypeError as exc:
        raise QueryError(f"cannot compare {left!r} {expr.op} {right!r}") from exc
    raise QueryError(f"unknown operator {expr.op!r}")


def evaluate_object_predicate(
    expr: Expr, obj: SummaryObject, ctx: EvalContext | None = None
) -> bool:
    """Evaluate a FILTER SUMMARIES predicate against one summary object.

    :class:`~repro.query.ast.ObjectFunc` leaves dispatch on ``obj``; the
    boolean/comparison structure is shared with row evaluation.
    """
    ctx = ctx or EvalContext()

    def ev(e: Expr) -> object:
        if isinstance(e, Literal):
            return e.value
        if isinstance(e, ObjectFunc):
            return _dispatch_object(obj, e.name, e.args, ctx)
        if isinstance(e, Comparison):
            left, right = ev(e.left), ev(e.right)
            if left is None or right is None:
                return False
            if e.op == "LIKE":
                return like_match(str(left), str(right))
            return {
                "=": left == right,
                "<>": left != right,
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }[e.op]
        if isinstance(e, And):
            return all(bool(ev(i)) for i in e.items)
        if isinstance(e, Or):
            return any(bool(ev(i)) for i in e.items)
        if isinstance(e, Not):
            return not bool(ev(e.item))
        raise QueryError(f"invalid FILTER SUMMARIES expression {e!r}")

    return bool(ev(expr))


def is_structural_predicate(expr: Expr) -> bool:
    """True when a FILTER SUMMARIES predicate touches only the InstanceID /
    SummaryType of the objects — the paper's *structural* predicates, which
    Rule 8 may push to both join sides."""
    structural_funcs = {"getSummaryType", "getSummaryName"}
    for node in expr.walk():
        if isinstance(node, ObjectFunc) and node.name not in structural_funcs:
            return False
    return True


def _rollup_value(
    obj: ClassifierObject, node: str, ctx: EvalContext
) -> int | None:
    """Resolve an inner hierarchy node by summing its subtree's leaves
    (multi-level summarization); None when the instance is flat or the
    node is unknown — the caller then raises the flat-label error."""
    if ctx.manager is None:
        return None
    from repro.summaries.hierarchy import HierarchicalClassifierInstance

    try:
        instance = ctx.manager.instance(obj.instance_name)
    except Exception:
        return None
    if isinstance(instance, HierarchicalClassifierInstance) \
            and node in instance.tree:
        return instance.resolve_value(obj, node)
    return None


# -- summary-expression dispatch ----------------------------------------------------


def evaluate_summary_expr(
    expr: SummaryExpr, row: QTuple, ctx: EvalContext
) -> object:
    receiver: object = row.summary_set(expr.alias)
    for call in expr.chain:
        if receiver is None:
            return None  # a missing summary object nullifies the chain
        receiver = _dispatch(receiver, call.name, call.args, ctx)
    return receiver


def _dispatch(receiver: object, name: str, args: tuple, ctx: EvalContext) -> object:
    if isinstance(receiver, SummarySet):
        return _dispatch_set(receiver, name, args)
    if isinstance(receiver, SummaryObject):
        return _dispatch_object(receiver, name, args, ctx)
    raise QueryError(f"cannot call {name}() on {type(receiver).__name__}")


def _dispatch_set(s: SummarySet, name: str, args: tuple) -> object:
    if name == "getSize":
        return s.get_size()
    if name == "getSummaryObject":
        if len(args) != 1:
            raise QueryError("getSummaryObject takes exactly one argument")
        return s.get_summary_object(args[0])
    raise QueryError(f"unknown summary-set function {name!r}")


def _dispatch_object(
    obj: SummaryObject, name: str, args: tuple, ctx: EvalContext
) -> object:
    # Functions common to all summary types (§3.1).
    if name == "getSummaryType":
        return obj.get_summary_type()
    if name == "getSummaryName":
        return obj.get_summary_name()
    if name == "getSize":
        return obj.get_size()

    if isinstance(obj, ClassifierObject):
        if name == "getLabelName":
            return obj.get_label_name(int(args[0]))
        if name == "getLabelValue":
            arg = args[0]
            if isinstance(arg, str) and arg not in obj.label_elements:
                rolled = _rollup_value(obj, arg, ctx)
                if rolled is not None:
                    return rolled
            return obj.get_label_value(arg)
    if isinstance(obj, SnippetObject):
        if name == "getSnippet":
            return obj.get_snippet(int(args[0]))
        if name in ("containsSingle", "containsUnion"):
            keywords = [str(a) for a in args]
            method = (
                obj.contains_single if name == "containsSingle"
                else obj.contains_union
            )
            if method(keywords):
                return True
            if ctx.search_raw and ctx.manager is not None:
                raws = ctx.raw_texts(sorted(obj.all_annotation_ids()))
                return method(keywords, raw_texts=raws)
            return False
    if isinstance(obj, ClusterObject):
        if name == "getGroupSize":
            return obj.get_group_size(int(args[0]))
        if name == "getRepresentative":
            return obj.get_representative(int(args[0]))
    raise QueryError(
        f"unknown function {name!r} for {obj.get_summary_type()} objects"
    )
