"""Counter/timer registry.

A :class:`MetricsRegistry` is a flat namespace of named monotonic counters
(``inc``) and accumulated wall-time buckets (``timer``/``add_time``).  It is
deliberately tiny: dict lookups only, no locks, no background machinery —
cheap enough to leave enabled in every run, which is what makes the counted
numbers comparable across benches (DESIGN.md §5's interpreter-noise
argument).

Naming convention used by the engine::

    maint.on_summary_insert      SummaryManager observer events (§4.1.2)
    maint.annotation_add         raw annotation mutations
    index.summary.<tbl>.<inst>.probes   Summary-BTree probe counts
    cache.hits / cache.misses    summary-cache lookups (repro.cache)
    cache.stores / cache.evictions / cache.invalidations / cache.rejections
                                 summary-cache admission and removal events
    cache.epoch_bumps[.<reason>] coarse invalidations (write / recover /
                                 repair / load / rebuild_oid_index)
    pool.hits / pool.misses      buffer-pool counters (merged at snapshot)
    disk.reads / disk.writes     DiskManager counters (merged at snapshot)
    faults.injected              total injected disk faults (repro.faults)
    faults.injected.<kind>       per-kind: fail_stop / transient /
                                 torn_write / bit_flip
    resilience.retries[.<op>]    transient I/O retries (repro.resilience)
    resilience.recovered         operations that succeeded after >=1 retry
    resilience.failures          operations that failed past the budget
    resilience.breaker.<state>   breaker transitions (closed/half-open/open)
    resilience.breaker.rejected  calls fast-failed by an open breaker
    resilience.timeouts          statements killed by their deadline
    resilience.cancelled         statements cooperatively cancelled
    resilience.quarantined / resilience.restored
                                 access-path health transitions
    resilience.degraded_plans    statements planned around unhealthy paths
    resilience.statement_retries statements re-run after mid-query index
                                 corruption quarantined their access paths
    resilience.breaker_state     snapshot gauge: 0=closed 1=half-open 2=open
    resilience.unhealthy_paths   snapshot gauge: quarantined path count
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class MetricsRegistry:
    """Named monotonic counters + accumulated timers."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.timers: dict[str, float] = {}

    # -- counters -------------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def get(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    # -- timers ---------------------------------------------------------------

    def add_time(self, name: str, seconds: float) -> None:
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    @contextmanager
    def timer(self, name: str):
        """Accumulate the elapsed wall time of the ``with`` body."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - started)

    # -- snapshot / delta / reset --------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """One flat dict of every counter and timer (timers keyed
        ``<name>.seconds``)."""
        out: dict[str, float] = dict(self.counters)
        for name, seconds in self.timers.items():
            out[f"{name}.seconds"] = seconds
        return out

    @staticmethod
    def delta(after: dict[str, float], before: dict[str, float]) -> dict[str, float]:
        """Per-key difference of two snapshots (keys absent from ``before``
        count from zero; unchanged keys are dropped)."""
        out = {}
        for key, value in after.items():
            diff = value - before.get(key, 0)
            if diff:
                out[key] = diff
        return out

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()
