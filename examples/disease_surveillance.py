"""Disease surveillance over an ornithological database.

The scenario that motivates the paper (§1.1): scientists need to find,
rank, and drill into disease-related field reports that are buried in
thousands of free-text annotations.  This example generates the paper's
Birds workload, then answers the three §1.1 questions with single queries
— the tasks the Raw-Annotations study group needed 21–45 minutes of
manual reading for.

Run with::

    python examples/disease_surveillance.py
"""

from repro.workload.generator import WorkloadConfig, build_database

DISEASE = "$.getSummaryObject('ClassBird1').getLabelValue('Disease')"
BEHAVIOR = "$.getSummaryObject('ClassBird1').getLabelValue('Behavior')"

print("Building the annotated Birds database (seeded, ~30s of work in the")
print("paper corresponds to seconds here at laptop scale)...")
# cell_fraction=0: AKN-style field annotations attach to whole records,
# which also lets the Summary-BTree answer ORDER BY in index order.
db = build_database(WorkloadConfig(
    num_birds=80, annotations_per_tuple=40, synonyms_per_bird=2, seed=11,
    cell_fraction=0.0,
))

total = db.sql("Select count(*) n From birds")
print(f"\nLoaded {total.tuples[0].get('n')} birds, "
      f"{len(db.manager.annotations)} raw annotations.\n")

# -- Q1: disease-related annotations on a name pattern ---------------------
print("Q1. Disease reports on Larus* birds (selection + zoom-in):")
result = db.sql(
    "Select common_name From birds r "
    f"Where common_name Like 'Larus%' And r.{DISEASE} > 0"
)
for i, row in enumerate(result.tuples[:3]):
    table, oid = next(iter(row.provenance.values()))
    texts = db.zoom_in(table, oid, "ClassBird1", "Disease")
    print(f"  {row.get('common_name')}: {len(texts)} disease annotations")
    print(f"    e.g. \"{texts[0][:70]}...\"")

# -- Q2: aggregate behavior-related knowledge per family -------------------
print("\nQ2. Behavior-related annotation counts per family (aggregation")
print("    merges the group members' summaries with dedup):")
grouped = db.sql(
    f"Select family, r.{BEHAVIOR} b, count(*) n From birds r "
    "Group By family Order By family Limit 5"
)
for t in grouped.tuples:
    print(f"  {t.get('family'):<18} birds={t.get('n'):>3} "
          f"behavior-annotations={t.get('b')}")

# -- Q3: rank by disease burden (the query basic InsightNotes could not
#        answer without manual sorting) ------------------------------------
print("\nQ3. Top-5 birds by disease-annotation count (summary-based sort,")
print("    answered by the Summary-BTree in index order):")
ranked = db.sql(
    f"Select common_name From birds r Order By r.{DISEASE} Desc Limit 5"
)
for i, t in enumerate(ranked.tuples, 1):
    counts = dict(ranked.summaries(i - 1)["ClassBird1"])
    print(f"  {i}. {t.get('common_name'):<22} disease={counts['Disease']}")

stats = ranked.stats
print(f"\n(query ran in {stats['elapsed_s'] * 1e3:.1f} ms, "
      f"{stats['io_reads']} disk reads)\nPlan:\n{stats['plan']}")
