"""Multi-level (hierarchical) summarization — the §8 future-work
extension: label trees, roll-up resolution in queries, multi-level
zoom-in, and the planner's leaf-only index side condition."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Column, Database, LabelTree, ValueType
from repro.errors import SummaryError

SPEC = {
    "Health": {"Disease": {}, "Injury": {}},
    "Ecology": {"Behavior": {}, "Habitat": {}},
    "Other": {},
}

SEEDS = [
    ("flu virus infection outbreak epidemic", "Disease"),
    ("broken wing wound bleeding fracture", "Injury"),
    ("foraging nesting singing courtship", "Behavior"),
    ("wetland lake coastal reed marsh", "Habitat"),
    ("survey checklist volunteer photo", "Other"),
]

TEXTS = {
    "Disease": "flu virus infection detected in the flock",
    "Injury": "wound on the wing bleeding badly fracture",
    "Behavior": "nesting and singing courtship display",
    "Habitat": "wetland reed marsh near the lake",
    "Other": "volunteer survey checklist photo uploaded",
}


class TestLabelTree:
    def test_leaves_in_spec_order(self):
        tree = LabelTree(SPEC)
        assert tree.leaves() == [
            "Disease", "Injury", "Behavior", "Habitat", "Other",
        ]

    def test_subtree_leaves(self):
        tree = LabelTree(SPEC)
        assert tree.leaves("Health") == ["Disease", "Injury"]
        assert tree.leaves("Other") == ["Other"]

    def test_children_and_parent(self):
        tree = LabelTree(SPEC)
        assert tree.children("Ecology") == ["Behavior", "Habitat"]
        assert tree.parent("Disease") == "Health"
        assert tree.parent("Health") is None

    def test_is_leaf_and_contains(self):
        tree = LabelTree(SPEC)
        assert tree.is_leaf("Disease")
        assert not tree.is_leaf("Health")
        assert "Habitat" in tree
        assert "NoSuch" not in tree

    def test_levels_and_paths(self):
        tree = LabelTree(SPEC)
        assert tree.level_of("Health") == 0
        assert tree.level_of("Disease") == 1
        assert tree.path_to("Habitat") == ["Ecology", "Habitat"]

    def test_three_level_tree(self):
        tree = LabelTree({"A": {"B": {"C": {}, "D": {}}, "E": {}}})
        assert tree.leaves() == ["C", "D", "E"]
        assert tree.leaves("B") == ["C", "D"]
        assert tree.level_of("C") == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(SummaryError):
            LabelTree({"A": {"B": {}}, "B": {}})

    def test_empty_tree_rejected(self):
        with pytest.raises(SummaryError):
            LabelTree({})

    def test_unknown_node_errors(self):
        tree = LabelTree(SPEC)
        with pytest.raises(SummaryError):
            tree.leaves("NoSuch")
        with pytest.raises(SummaryError):
            tree.children("NoSuch")

    def test_to_spec_roundtrip(self):
        tree = LabelTree(SPEC)
        assert LabelTree(tree.to_spec()).leaves() == tree.leaves()

    @given(st.lists(
        st.text(alphabet="abcdefgh", min_size=1, max_size=4),
        min_size=1, max_size=6, unique=True,
    ))
    def test_flat_spec_leaves_are_roots(self, names):
        tree = LabelTree({n: {} for n in names})
        assert tree.leaves() == names
        assert tree.roots == names


@pytest.fixture()
def db():
    database = Database()
    database.create_table("t", [Column("name", ValueType.TEXT)])
    database.create_hierarchical_classifier_instance("H", SPEC, SEEDS)
    database.manager.link("t", "H")
    return database


def annotate(db, oid, *cats):
    for cat in cats:
        db.add_annotation(TEXTS[cat], table="t", oid=oid)


class TestRollupQueries:
    def test_inner_node_value_is_subtree_sum(self, db):
        oid = db.insert("t", {"name": "a"})
        annotate(db, oid, "Disease", "Injury", "Behavior")
        r = db.sql(
            "Select name From t r Where "
            "r.$.getSummaryObject('H').getLabelValue('Health') = 2"
        )
        assert len(r) == 1

    def test_leaf_values_still_direct(self, db):
        oid = db.insert("t", {"name": "a"})
        annotate(db, oid, "Disease", "Disease", "Injury")
        r = db.sql(
            "Select name From t r Where "
            "r.$.getSummaryObject('H').getLabelValue('Disease') = 2"
        )
        assert len(r) == 1

    def test_order_by_inner_node(self, db):
        for name, cats in [("low", ["Behavior"]),
                           ("high", ["Disease", "Injury", "Disease"])]:
            oid = db.insert("t", {"name": name})
            annotate(db, oid, *cats)
        r = db.sql(
            "Select name From t r Order By "
            "r.$.getSummaryObject('H').getLabelValue('Health') Desc"
        )
        assert r.column("name") == ["high", "low"]

    def test_unknown_node_raises(self, db):
        oid = db.insert("t", {"name": "a"})
        annotate(db, oid, "Disease")
        with pytest.raises(Exception):
            db.sql(
                "Select name From t r Where "
                "r.$.getSummaryObject('H').getLabelValue('Bogus') = 1"
            )

    def test_flat_instances_unaffected(self, db):
        db.create_classifier_instance(
            "Flat", ["A", "B"], [("alpha apple", "A"), ("beta ball", "B")]
        )
        db.manager.link("t", "Flat")
        oid = db.insert("t", {"name": "a"})
        db.add_annotation("alpha apple pie", table="t", oid=oid)
        with pytest.raises(Exception):
            db.sql(
                "Select name From t r Where "
                "r.$.getSummaryObject('Flat').getLabelValue('Bogus') = 1"
            )


class TestRollupApi:
    def test_rollup_levels(self, db):
        oid = db.insert("t", {"name": "a"})
        annotate(db, oid, "Disease", "Injury", "Behavior", "Other")
        instance = db.manager.instance("H")
        obj = db.manager.summary_set_for("t", oid).get_summary_object("H")
        level0 = dict(instance.rollup(obj, level=0))
        assert level0 == {"Health": 2, "Ecology": 1, "Other": 1}
        level1 = dict(instance.rollup(obj, level=1))
        assert level1["Disease"] == 1
        assert level1["Other"] == 1  # shallow leaf attaches at its depth

    def test_resolve_elements_unions_children(self, db):
        oid = db.insert("t", {"name": "a"})
        annotate(db, oid, "Disease", "Injury")
        instance = db.manager.instance("H")
        obj = db.manager.summary_set_for("t", oid).get_summary_object("H")
        assert len(instance.resolve_elements(obj, "Health")) == 2

    def test_labels_must_match_leaves(self):
        from repro.summaries.hierarchy import HierarchicalClassifierInstance

        with pytest.raises(SummaryError):
            HierarchicalClassifierInstance(
                name="bad", labels=["X"], tree=LabelTree(SPEC)
            )


class TestMultiLevelZoom:
    def test_zoom_inner_node_unions_subtree(self, db):
        oid = db.insert("t", {"name": "a"})
        annotate(db, oid, "Disease", "Injury", "Behavior")
        health = db.zoom_in("t", oid, "H", "Health")
        disease = db.zoom_in("t", oid, "H", "Disease")
        assert len(health) == 2
        assert len(disease) == 1
        assert set(disease) <= set(health)

    def test_zoom_level_by_level(self, db):
        # Walk the hierarchy: whole instance -> level 0 node -> leaf.
        oid = db.insert("t", {"name": "a"})
        annotate(db, oid, "Disease", "Habitat")
        everything = db.zoom_in("t", oid, "H")
        ecology = db.zoom_in("t", oid, "H", "Ecology")
        habitat = db.zoom_in("t", oid, "H", "Habitat")
        assert len(everything) == 2
        assert ecology == habitat

    def test_zoom_unknown_selector_still_raises(self, db):
        oid = db.insert("t", {"name": "a"})
        annotate(db, oid, "Disease")
        with pytest.raises(SummaryError):
            db.zoom_in("t", oid, "H", "Bogus")


class TestIndexSideCondition:
    def test_leaf_predicate_uses_index(self, db):
        for i in range(6):
            oid = db.insert("t", {"name": f"n{i}"})
            annotate(db, oid, *(["Disease"] * i))
        db.create_summary_index("t", "H")
        db.analyze("t")
        db.options.force_access = "index"
        report = db.explain(
            "Select * From t r Where "
            "r.$.getSummaryObject('H').getLabelValue('Disease') > 3"
        )
        db.options.force_access = None
        assert "SummaryIndexScan" in report.physical

    def test_inner_node_predicate_falls_back_to_scan(self, db):
        for i in range(6):
            oid = db.insert("t", {"name": f"n{i}"})
            annotate(db, oid, *(["Disease"] * i))
        db.create_summary_index("t", "H")
        db.analyze("t")
        db.options.force_access = "index"
        report = db.explain(
            "Select * From t r Where "
            "r.$.getSummaryObject('H').getLabelValue('Health') > 3"
        )
        db.options.force_access = None
        assert "SummaryIndexScan" not in report.physical
        assert "SeqScan" in report.physical

    def test_inner_node_results_match_scan_semantics(self, db):
        for i in range(6):
            oid = db.insert("t", {"name": f"n{i}"})
            annotate(db, oid, *(["Disease"] * (i % 3)), "Injury")
        db.create_summary_index("t", "H")
        db.analyze("t")
        query = (
            "Select name From t r Where "
            "r.$.getSummaryObject('H').getLabelValue('Health') >= 2"
        )
        expected = {
            t.get("name") for t in db.sql(query).tuples
        }
        db.options.force_access = "index"
        with_force = {t.get("name") for t in db.sql(query).tuples}
        db.options.force_access = None
        assert with_force == expected


class TestMaintenance:
    def test_incremental_counts_roll_up(self, db):
        oid = db.insert("t", {"name": "a"})
        instance = db.manager.instance("H")
        annotate(db, oid, "Disease")
        obj = db.manager.summary_set_for("t", oid).get_summary_object("H")
        assert instance.resolve_value(obj, "Health") == 1
        annotate(db, oid, "Injury")
        obj = db.manager.summary_set_for("t", oid).get_summary_object("H")
        assert instance.resolve_value(obj, "Health") == 2

    def test_annotation_delete_rolls_down(self, db):
        oid = db.insert("t", {"name": "a"})
        ann = db.add_annotation(TEXTS["Disease"], table="t", oid=oid)
        annotate(db, oid, "Injury")
        db.delete_annotation(ann.ann_id)
        instance = db.manager.instance("H")
        obj = db.manager.summary_set_for("t", oid).get_summary_object("H")
        assert instance.resolve_value(obj, "Health") == 1
