"""Trigram keyword index over Snippet summary objects.

§3.1 notes a studied trade-off "w.r.t accuracy and performance — between
searching the snippets vs. searching the raw annotations", and §8 lists
richer operator implementations as future work.  This index accelerates
the snippet-side of that trade-off: ``containsSingle``/``containsUnion``
predicates evaluated in snippet-only mode (``PlannerOptions.search_raw =
False``).

Design (the pg_trgm idea): every snippet's lowercase text is decomposed
into character **trigrams**; a B-Tree maps ``trigram -> data OID``.  A
keyword matches a tuple only if *all* of the keyword's trigrams occur in
that tuple's snippet text, so intersecting posting lists yields a
**superset** of the true substring matches — the engine then re-checks the
original predicate on the candidates, keeping results exactly equal to a
scan plan.  Keywords shorter than three characters produce no trigrams and
make the index unusable for that query (the planner falls back to a scan).

A reverse B-Tree (``OID -> trigram``) supports incremental maintenance via
the SummaryManager's generic ``on_objects_write`` event.
"""

from __future__ import annotations

from repro.btree.tree import BTree
from repro.catalog.keys import decode_int, encode_int
from repro.errors import ReproError
from repro.storage.buffer import BufferPool
from repro.summaries.objects import SnippetObject, SummaryObject


def trigrams(text: str) -> set[str]:
    """Distinct character trigrams of ``text``, lowercased."""
    lowered = text.lower()
    return {lowered[i:i + 3] for i in range(len(lowered) - 2)}


class TrigramKeywordIndex:
    """Trigram postings over one snippet instance of one table."""

    def __init__(self, table_name: str, instance_name: str, pool: BufferPool):
        self.table_name = table_name.lower()
        self.instance_name = instance_name
        #: trigram (utf-8) -> encoded OID
        self.postings = BTree(pool)
        #: encoded OID -> trigram (utf-8), for incremental deletion
        self.reverse = BTree(pool)
        #: candidates() probes served (observability).
        self.probes = 0

    def __len__(self) -> int:
        return len(self.postings)

    def pages_used(self) -> int:
        return self.postings.node_count() + self.reverse.node_count()

    # -- maintenance -----------------------------------------------------------

    def _snippet_text(self, objects: dict[str, SummaryObject]) -> str | None:
        obj = objects.get(self.instance_name)
        if not isinstance(obj, SnippetObject) or not obj.snippets:
            return None
        return " \n ".join(obj.snippets.values())

    def _insert_rows(self, oid: int, text: str) -> None:
        key_oid = encode_int(oid)
        for gram in trigrams(text):
            self.postings.insert(gram.encode("utf-8"), key_oid)
            self.reverse.insert(key_oid, gram.encode("utf-8"))

    def _delete_rows(self, oid: int) -> None:
        key_oid = encode_int(oid)
        for gram in self.reverse.search(key_oid):
            self.postings.delete(gram, key_oid)
            self.reverse.delete(key_oid, gram)

    def on_objects_write(
        self, oid: int, objects: dict[str, SummaryObject]
    ) -> None:
        self._delete_rows(oid)
        text = self._snippet_text(objects)
        if text is not None:
            self._insert_rows(oid, text)

    def on_objects_delete(self, oid: int) -> None:
        self._delete_rows(oid)

    def bulk_build(self, storage) -> int:
        """Index every existing snippet object; returns postings written."""
        written = 0
        for oid, objects in storage.scan():
            text = self._snippet_text(objects)
            if text is not None:
                self._insert_rows(oid, text)
                written += 1
        return written

    def rebuild(self, storage) -> int:
        """Discard both trees and re-derive them from the de-normalized
        storage (repair path). Returns postings written."""
        pool = self.postings.pool
        for tree in (self.postings, self.reverse):
            try:
                tree.drop()
            except ReproError:
                pass  # corrupt tree: abandon its pages rather than fail
        self.postings = BTree(pool)
        self.reverse = BTree(pool)
        return self.bulk_build(storage)

    # -- querying ----------------------------------------------------------------

    def oids_with_trigram(self, gram: str) -> set[int]:
        return {
            decode_int(v) for v in self.postings.search(gram.encode("utf-8"))
        }

    def candidates(self, keywords: list[str]) -> set[int] | None:
        """OIDs that *may* contain every keyword as a substring of their
        snippet text (a superset of the true matches), or ``None`` when
        any keyword is too short to decompose into trigrams."""
        self.probes += 1
        result: set[int] | None = None
        for keyword in keywords:
            grams = trigrams(keyword)
            if not grams:
                return None  # unusable: the keyword has < 3 characters
            keyword_oids: set[int] | None = None
            for gram in grams:
                hits = self.oids_with_trigram(gram)
                keyword_oids = (
                    hits if keyword_oids is None else keyword_oids & hits
                )
                if not keyword_oids:
                    break
            result = (
                keyword_oids if result is None else result & keyword_oids
            )
            if not result:
                return set()
        return result if result is not None else set()
