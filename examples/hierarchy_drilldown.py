"""Multi-level summarization: querying and drilling down a label hierarchy.

The paper's future-work extension (§8) realized: a classifier instance
whose labels form a tree.  Queries reference any level — an inner node's
value is its subtree's leaf sum — and zoom-in walks the hierarchy one
level at a time down to the raw annotations.

Run with::

    python examples/hierarchy_drilldown.py
"""

from repro import Column, Database, ValueType

db = Database()
db.create_table("birds", [Column("name", ValueType.TEXT)])

# A two-level hierarchy over the field-note categories.
db.create_hierarchical_classifier_instance(
    "BirdTopics",
    {
        "Health": {"Disease": {}, "Injury": {}},
        "Ecology": {"Behavior": {}, "Habitat": {}},
        "Other": {},
    },
    seed_examples=[
        ("flu virus infection outbreak epidemic sick", "Disease"),
        ("broken wing wound bleeding fracture limping", "Injury"),
        ("foraging nesting singing courtship display", "Behavior"),
        ("wetland lake coastal reed marsh shoreline", "Habitat"),
        ("survey checklist volunteer photo record", "Other"),
    ],
)
db.manager.link("birds", "BirdTopics")

FIELD_NOTES = {
    "Swan Goose": [
        "flu outbreak suspected, several sick individuals seen",
        "one adult limping with a wing wound, possibly a fracture",
        "nesting activity in the reed marsh near the east shoreline",
    ],
    "Mute Swan": [
        "courtship display observed at dawn, pair singing",
        "foraging in the shallow wetland all morning",
    ],
    "House Crow": [
        "virus infection confirmed by the lab, epidemic risk",
        "volunteer uploaded a photo to the checklist",
    ],
}
for name, notes in FIELD_NOTES.items():
    oid = db.insert("birds", {"name": name})
    for note in notes:
        db.add_annotation(note, table="birds", oid=oid)

# -- query the TOP level: which birds have health-related reports? ----------
TOPIC = "$.getSummaryObject('BirdTopics')"
result = db.sql(
    f"Select name From birds r Where r.{TOPIC}.getLabelValue('Health') > 0 "
    f"Order By r.{TOPIC}.getLabelValue('Health') Desc"
)
print("Birds with health-related reports (inner-node roll-up):")
for t in result.tuples:
    print(f"  {t.get('name')}")

# -- roll-up views at each level --------------------------------------------
instance = db.manager.instance("BirdTopics")
swan = db.sql("Select name From birds Where name = 'Swan Goose'")
table, oid = next(iter(swan.tuples[0].provenance.values()))
obj = db.manager.summary_set_for(table, oid).get_summary_object("BirdTopics")
print("\nSwan Goose at hierarchy level 0:", instance.rollup(obj, level=0))
print("Swan Goose at hierarchy level 1:", instance.rollup(obj, level=1))

# -- drill down level by level ----------------------------------------------
print("\nZooming into Swan Goose's 'Health' reports (subtree union):")
for text in db.zoom_in(table, oid, "BirdTopics", "Health"):
    print(f"  - {text}")
print("...and just the 'Injury' leaf:")
for text in db.zoom_in(table, oid, "BirdTopics", "Injury"):
    print(f"  - {text}")
