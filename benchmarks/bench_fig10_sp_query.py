"""Figure 10 — Select-Project query with a classifier equality predicate.

Paper: at 1% selectivity (``Disease = constant``), both indexes beat the
NoIndex table scan by ≈two orders of magnitude, and the Summary-BTree is
≈3× faster than the Baseline index because the latter crosses more
levels of indirection (derived index → normalized row → OID index → R).
"""

import pytest

from repro.bench import FigureTable, cached_database
from repro.bench.queries import equality_constant, sp_equality_query

SCHEMES = {
    "NoIndex": "none",
    "Baseline Index": "baseline",
    "Summary-BTree": "summary_btree",
}


@pytest.mark.benchmark(group="fig10-sp-query")
@pytest.mark.parametrize("scheme", list(SCHEMES))
@pytest.mark.parametrize("density", [10, 25, 50, 100, 200])
def test_sp_query(benchmark, case, scheme, density, preset, figure_writer):
    if density not in preset.densities:
        pytest.skip(f"density {density} not in preset {preset.name}")
    db = cached_database(
        num_birds=preset.num_birds, annotations_per_tuple=density,
        indexes="both", cell_fraction=0.0,
    )
    constant = equality_constant(db, "Disease", 0.01)
    query = sp_equality_query("Disease", constant)
    db.options.index_scheme = SCHEMES[scheme]
    db.options.force_access = None if scheme == "NoIndex" else "index"
    try:
        m = case(db, lambda: db.sql(query))
    finally:
        db.options.index_scheme = "summary_btree"
        db.options.force_access = None

    table = figure_writer.setdefault(
        "fig10_sp_query",
        FigureTable(
            "Figure 10 — SP query, Disease = c at 1% selectivity",
            unit="ms (log-scale in the paper)",
        ),
    )
    table.add_measurement(scheme, preset.label(density), m)
    pages = figure_writer.setdefault(
        "fig10_sp_query_pages",
        FigureTable(
            "Figure 10 (companion) — logical page accesses",
            unit="pages",
        ),
    )
    pages.add(scheme, preset.label(density), m.pages)
    if len(table.cells) == len(SCHEMES) * len(preset.densities):
        table.note_ratio("Baseline Index", "Summary-BTree", "about 3x")
        table.note_ratio(
            "NoIndex", "Summary-BTree", "about two orders of magnitude"
        )
        pages.note_ratio("Baseline Index", "Summary-BTree", "about 3x")
        pages.note_ratio(
            "NoIndex", "Summary-BTree", "about two orders of magnitude"
        )
