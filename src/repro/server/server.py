"""The asyncio query server: N concurrent clients over one engine.

One :class:`QueryServer` wraps a :class:`~repro.core.database.Database`
and serves the length-prefixed JSON protocol (``repro.server.protocol``)
on a TCP socket.  Each connection gets its own locking
:class:`~repro.txn.session.Session` — its transactions and table locks
live exactly as long as the connection — and statements execute on a
worker thread pool, so readers under shared locks genuinely overlap
while the asyncio loop stays free to accept traffic.

Three layers keep the server standing when traffic outruns it
(DESIGN.md §5h):

* **Admission control.**  Connections beyond ``max_connections`` are
  answered a typed ``ServerOverloadedError`` frame and closed before a
  session exists.  Admitted statements pass through a bounded queue in
  front of the worker pool: when ``queue_limit`` statements are already
  waiting, or ``queue_timeout`` passes before a worker frees up, the
  statement is shed with a typed overload error instead of letting
  latency collapse — the client knows within the queue deadline, and
  because a shed statement never started executing, retrying it is
  always safe.  ``server.shed[.<cause>]`` counts sheds;
  ``server.queue_depth`` / ``server.active_connections`` gauges track
  levels.

* **Graceful lifecycle.**  :meth:`stop` drains: accepting stops, idle
  connections close, in-flight statements get ``drain_timeout`` seconds
  to finish, stragglers are cooperatively cancelled through the PR-5
  :meth:`~repro.txn.session.Session.cancel` path, and every session is
  closed before the worker pool shuts down — no lock and no transaction
  outlives shutdown.  An optional ``idle_timeout`` reclaims connections
  that stop talking, and server-side ``default_timeout``/``max_timeout``
  clamp client-supplied statement deadlines.

* **Network fault injection.**  A seeded
  :class:`~repro.faults.network.NetworkFaultPlan` may be injected at
  the accept/read/write points — connection resets, stalls, partial
  response frames, garbled bytes — driving the chaos battery that
  proves the invariants above hold under transport failure.  Frame
  checksums (``protocol.CRC_FLAG``) turn in-flight corruption into
  typed :class:`~repro.errors.ProtocolError`\\ s on either end.

Disconnect handling is the part worth reading twice: while a statement
runs on a worker thread, the loop concurrently watches the socket.  A
client that hangs up mid-statement triggers
:meth:`~repro.txn.session.Session.cancel` — the PR-5 cooperative
cancellation path — so the statement dies at its next batch boundary or
lock-wait slice and the session's locks are released with the
connection, never leaked.  Bytes that arrive instead (a pipelining
client) are kept as the prefix of the next frame.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time
from concurrent.futures import ThreadPoolExecutor

from repro.errors import ProtocolError, ReplicaLaggingError, ReproError
from repro.faults.network import NetworkFaultKind, NETWORK_OPS
from repro.server.protocol import (
    LENGTH,
    MAX_FRAME,
    decode_header,
    decode_payload,
    encode_frame,
    jsonable_result,
    verify_crc,
)

#: Default statement worker threads per server.
DEFAULT_WORKERS = 8

#: Default connection cap (env ``REPRO_SERVER_MAX_CONNECTIONS``).
DEFAULT_MAX_CONNECTIONS = 64

#: Default queue deadline in seconds (env ``REPRO_SERVER_QUEUE_TIMEOUT``).
DEFAULT_QUEUE_TIMEOUT = 2.0

#: Default drain deadline in seconds (env ``REPRO_SERVER_DRAIN_TIMEOUT``).
DEFAULT_DRAIN_TIMEOUT = 5.0


def _env_number(name: str, default, cast):
    """Parse an env knob; ``0``/``off``/``none`` mean disabled (None)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    if raw.strip().lower() in ("off", "none", ""):
        return None
    try:
        value = cast(raw)
    except ValueError:
        return default
    return None if value <= 0 else value


class _Conn:
    """Per-connection server state: the session, its transport, and
    whether a statement is currently on a worker thread. ``snapshot``
    caches a replication bootstrap image while its chunks stream out."""

    __slots__ = ("session", "writer", "busy", "snapshot")

    def __init__(self, session, writer):
        self.session = session
        self.writer = writer
        self.busy = False
        self.snapshot = None


def _error_response(message: str, error_type: str) -> dict:
    return {"ok": False, "error": message, "error_type": error_type}


class QueryServer:
    """Serve one database to concurrent clients over TCP."""

    def __init__(self, db, host: str = "127.0.0.1", port: int = 0,
                 max_frame: int = MAX_FRAME, workers: int = DEFAULT_WORKERS,
                 max_connections: int | None = None,
                 queue_limit: int | None = None,
                 queue_timeout: float | None = None,
                 drain_timeout: float | None = None,
                 idle_timeout: float | None = None,
                 default_timeout: float | None = None,
                 max_timeout: float | None = None,
                 network_faults=None):
        self.db = db
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self.workers = workers
        #: connection cap; None = unbounded (not recommended).
        self.max_connections = (
            max_connections if max_connections is not None
            else _env_number("REPRO_SERVER_MAX_CONNECTIONS",
                             DEFAULT_MAX_CONNECTIONS, int)
        )
        #: statements allowed to wait for a worker before shedding.
        self.queue_limit = (
            queue_limit if queue_limit is not None
            else _env_number("REPRO_SERVER_QUEUE_LIMIT", workers * 4, int)
            or workers * 4
        )
        #: seconds a queued statement may wait before it is shed.
        self.queue_timeout = (
            queue_timeout if queue_timeout is not None
            else _env_number("REPRO_SERVER_QUEUE_TIMEOUT",
                             DEFAULT_QUEUE_TIMEOUT, float)
            or DEFAULT_QUEUE_TIMEOUT
        )
        #: seconds stop() lets in-flight statements finish before
        #: cooperatively cancelling them.
        self.drain_timeout = (
            drain_timeout if drain_timeout is not None
            else _env_number("REPRO_SERVER_DRAIN_TIMEOUT",
                             DEFAULT_DRAIN_TIMEOUT, float)
            or DEFAULT_DRAIN_TIMEOUT
        )
        #: close connections silent for this long between statements
        #: (None = never).
        self.idle_timeout = (
            idle_timeout if idle_timeout is not None
            else _env_number("REPRO_SERVER_IDLE_TIMEOUT", None, float)
        )
        #: statement deadline applied when the client sends none.
        self.default_timeout = (
            default_timeout if default_timeout is not None
            else _env_number("REPRO_SERVER_DEFAULT_TIMEOUT", None, float)
        )
        #: hard cap on client-supplied statement deadlines.
        self.max_timeout = (
            max_timeout if max_timeout is not None
            else _env_number("REPRO_SERVER_MAX_TIMEOUT", None, float)
        )
        #: optional seeded NetworkFaultPlan consulted at accept/read/write.
        self.network_faults = network_faults
        self.draining = False
        self._server: asyncio.AbstractServer | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._worker_slots: asyncio.Semaphore | None = None
        self._connections: set[_Conn] = set()
        self._queued = 0
        self._net_ops = {op: 0 for op in NETWORK_OPS}
        #: registered non-SQL op handlers: name -> handler(request, conn).
        #: Handlers run on the worker pool (outside the admission queue —
        #: they are infrastructure, not statements); return the result
        #: value, or raise a ReproError for a typed error frame.
        self.ops: dict = {}
        #: replica-side replication link (set by ReplicaServer) — drives
        #: the health frame's repl section and min_lsn waits.
        self.repl_link = None
        #: primary-side replication endpoint once installed.
        self.repl_endpoint = None

    def register_op(self, name: str, handler) -> None:
        """Register an op handler: ``{"op": name, ...}`` requests route
        to ``handler(request, conn)`` on the worker pool."""
        self.ops[name] = handler

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` is the bound port
        (resolves an ephemeral 0)."""
        self.draining = False
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-stmt"
        )
        self._worker_slots = asyncio.Semaphore(self.workers)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, drain_timeout: float | None = None) -> None:
        """Gracefully drain and shut down.

        Stops accepting, closes idle connections, lets in-flight
        statements finish for up to ``drain_timeout`` seconds (default:
        the server's configured drain deadline), then cooperatively
        cancels stragglers via :meth:`Session.cancel` and closes every
        session before the worker pool shuts down — no table lock and
        no open transaction survives this call.
        """
        timeout = drain_timeout if drain_timeout is not None \
            else self.drain_timeout
        already_stopped = (self._server is None and not self._connections
                           and self._executor is None)
        if not already_stopped:
            self.db.metrics.inc("server.drains")
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle connections have nothing to drain: close their transports
        # so their handlers unwind on EOF and release their sessions.
        for conn in list(self._connections):
            if not conn.busy:
                conn.writer.close()
        deadline = time.monotonic() + timeout
        while self._connections and time.monotonic() < deadline:
            await asyncio.sleep(0.005)
        # Past the drain deadline: cooperatively cancel what is still
        # running, so no statement (and no lock it holds) outlives us.
        cancelled = 0
        for conn in list(self._connections):
            if conn.session.cancel():
                cancelled += 1
            conn.writer.close()
        if cancelled:
            self.db.metrics.inc("server.drain_cancelled", cancelled)
        grace = time.monotonic() + max(1.0, timeout)
        while self._connections and time.monotonic() < grace:
            await asyncio.sleep(0.005)
        # Whatever did not unwind in time still must not strand a lock:
        # force-close the sessions (abort + release is idempotent).
        for conn in list(self._connections):
            conn.session.close()
            self._connections.discard(conn)
        self.db.metrics.set_gauge("server.active_connections", 0)
        # Quiesce background summary maintenance: stop the worker thread
        # and fold any remaining staleness in inline, so a drained server
        # leaves fully maintained summaries behind.
        stop_maintenance = getattr(self.db, "stop_maintenance", None)
        if stop_maintenance is not None:
            stop_maintenance()
        if self._executor is not None:
            # wait=True: never abandon a live worker thread mid-statement.
            self._executor.shutdown(wait=True)
            self._executor = None
        self._worker_slots = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- health --------------------------------------------------------------

    def health(self) -> dict:
        """Liveness snapshot for load balancers: drain state, queue
        depth, connection counts, and the PR-5 degraded-path list."""
        db = self.db
        txn_manager = getattr(db, "txn_manager", None)
        path_health = getattr(db, "health", None)
        return {
            "lsn": self._current_lsn(),
            "repl": self._repl_health(),
            "status": "draining" if self.draining else "ok",
            "draining": self.draining,
            "accepting": self._server is not None and not self.draining,
            "connections": len(self._connections),
            "max_connections": self.max_connections,
            "queue_depth": self._queued,
            "queue_limit": self.queue_limit,
            "workers": self.workers,
            "open_txns": (
                len(txn_manager.active) if txn_manager is not None else 0
            ),
            "shed": db.metrics.get("server.shed"),
            "degraded_paths": (
                [list(key) for key in path_health.unhealthy()]
                if path_health is not None else []
            ),
            "summary_async": getattr(db, "summary_async", "off"),
            "maint_backlog": db.manager.pending_count(),
            "maint_lag_seconds": db.manager.pending_lag_seconds(),
        }

    def _current_lsn(self) -> int:
        """This node's durable log position: the flushed WAL tail on a
        primary, the applied-prefix watermark on a replica. Stamped into
        every success response so clients can carry their last commit
        LSN into bounded-staleness reads."""
        wal = getattr(self.db, "wal", None)
        if wal is not None:
            return wal.flushed_lsn
        return getattr(self.db, "_applied_lsn", 0)

    def _repl_health(self) -> dict:
        """The health frame's repl section: replica lag when a link is
        attached, stream/retention state when this node is a primary."""
        link = self.repl_link
        if link is not None:
            return link.health()
        wal = getattr(self.db, "wal", None)
        if wal is not None:
            return {
                "role": "primary",
                "wal_lsn": wal.next_lsn,
                "durable_lsn": wal.flushed_lsn,
                "streams": wal.stream_acks,
                "min_stream_lsn": wal.min_stream_lsn(),
                "retained_bytes": wal.retained_bytes,
            }
        return {"role": "standalone"}

    def _await_min_lsn(self, min_lsn: int, wait_timeout: float) -> None:
        """Bounded-staleness gate (runs on the worker thread): block
        until this node has applied through ``min_lsn``, else raise a
        typed ReplicaLaggingError — the statement never executes."""
        current = self._current_lsn()
        if current >= min_lsn:
            return
        link = self.repl_link
        if link is not None and wait_timeout > 0:
            current = link.wait_for_lsn(min_lsn, wait_timeout)
            if current >= min_lsn:
                return
        self.db.metrics.inc("repl.lagging_rejects")
        raise ReplicaLaggingError(
            f"applied through LSN {current}, statement requires "
            f"{min_lsn}",
            applied_lsn=current, min_lsn=min_lsn,
        )

    # -- network fault injection ---------------------------------------------

    def _net_fault(self, op: str):
        """Consume the next scheduled network fault for ``op`` (None
        when no plan is installed or nothing fires)."""
        plan = self.network_faults
        if plan is None:
            return None
        index = self._net_ops[op]
        self._net_ops[op] = index + 1
        fault = plan.consume(op, index)
        if fault is not None:
            self.db.metrics.inc("server.faults.injected")
            self.db.metrics.inc(f"server.faults.injected.{fault.kind}")
        return fault

    @staticmethod
    def _abort_transport(writer: asyncio.StreamWriter) -> None:
        transport = writer.transport
        if transport is not None:
            try:
                transport.abort()
            except Exception:  # pragma: no cover - transport already dead
                pass

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        fault = self._net_fault("accept")
        if fault is not None:
            if fault.kind == NetworkFaultKind.RESET:
                self._abort_transport(writer)
                return
            if fault.kind == NetworkFaultKind.STALL:
                await asyncio.sleep(fault.stall_seconds)
        if self.draining:
            await self._send_best_effort(writer, _error_response(
                "server is draining; connection rejected",
                "ServerShuttingDownError",
            ))
            writer.close()
            return
        if (self.max_connections is not None
                and len(self._connections) >= self.max_connections):
            # Admission control: shed the connection with a typed frame
            # before any session (or lock surface) exists for it.
            self.db.metrics.inc("server.shed")
            self.db.metrics.inc("server.shed.connections")
            await self._send_best_effort(writer, _error_response(
                f"server at its {self.max_connections}-connection cap; "
                "connection rejected", "ServerOverloadedError",
            ))
            writer.close()
            return
        self.db.metrics.inc("server.connections")
        conn = _Conn(self.db.session(locking=True), writer)
        self._connections.add(conn)
        self.db.metrics.set_gauge(
            "server.active_connections", len(self._connections))
        buffer = b""
        try:
            while True:
                try:
                    frame_read = self._read_frame(reader, buffer)
                    if self.idle_timeout is not None:
                        request, buffer = await asyncio.wait_for(
                            frame_read, self.idle_timeout
                        )
                    else:
                        request, buffer = await frame_read
                except asyncio.TimeoutError:
                    self.db.metrics.inc("server.idle_closed")
                    await self._send_best_effort(writer, _error_response(
                        f"connection idle for more than "
                        f"{self.idle_timeout}s; closing", "ServerError",
                    ))
                    return
                except ProtocolError as exc:
                    # A peer that cannot frame is out of sync with the
                    # stream: answer once, then hang up.
                    await self._send_best_effort(writer, _error_response(
                        str(exc), "ProtocolError"))
                    self.db.metrics.inc("server.errors")
                    return
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # clean or mid-frame EOF between statements
                if request is None:
                    return  # EOF at a frame boundary: clean disconnect
                response, buffer, alive = await self._run_request(
                    conn, reader, request, buffer
                )
                if response is not None:
                    try:
                        await self._send(writer, response)
                    except ProtocolError as exc:
                        # The *result* frame exceeds the cap — that is a
                        # statement-level failure, not a framing breach
                        # by the peer: answer typed, keep the connection.
                        self.db.metrics.inc("server.errors")
                        try:
                            await self._send(writer, _error_response(
                                f"result exceeds the {self.max_frame}-byte "
                                f"frame cap ({exc})", "ServerError",
                            ))
                        except (ProtocolError, ConnectionError):
                            return
                    except ConnectionError:
                        return
                if not alive:
                    return
                if self.draining:
                    # Statement finished during a drain: its response is
                    # out; now let the connection go.
                    return
        finally:
            # Aborts any open transaction and releases every lock: a
            # dropped connection can never strand a table lock.
            self._connections.discard(conn)
            self.db.metrics.set_gauge(
                "server.active_connections", len(self._connections))
            conn.session.close()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _clamp_timeout(self, timeout: float | None) -> float | None:
        """Apply the server's default and maximum statement deadlines."""
        effective = timeout if timeout is not None else self.default_timeout
        if self.max_timeout is not None:
            effective = (self.max_timeout if effective is None
                         else min(effective, self.max_timeout))
        return effective

    def _shed(self, cause: str, message: str) -> dict:
        self.db.metrics.inc("server.shed")
        self.db.metrics.inc(f"server.shed.{cause}")
        return _error_response(message, "ServerOverloadedError")

    async def _run_request(self, conn: _Conn, reader, request: dict,
                           buffer: bytes):
        """Execute one request on the worker pool while watching the
        socket; returns ``(response, buffer, connection_alive)``."""
        op = request.get("op")
        if op is not None:
            if op == "health":
                # Health probes are answered inline — never queued,
                # never shed, still answered while draining — so load
                # balancers can always see the server's state.
                self.db.metrics.inc("server.health_requests")
                return {"ok": True, "result": self.health()}, buffer, True
            handler = self.ops.get(op)
            if handler is not None:
                return await self._run_op(conn, op, handler, request,
                                          buffer)
            self.db.metrics.inc("server.errors")
            return (
                _error_response(f"unknown op {op!r}", "ProtocolError"),
                buffer, True,
            )
        sql = request.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            self.db.metrics.inc("server.errors")
            return (
                _error_response("request needs a non-empty 'sql'",
                                "ProtocolError"),
                buffer, True,
            )
        timeout = request.get("timeout")
        if timeout is not None and not isinstance(timeout, (int, float)):
            self.db.metrics.inc("server.errors")
            return (
                _error_response("'timeout' must be a number",
                                "ProtocolError"),
                buffer, True,
            )
        min_lsn = request.get("min_lsn")
        if min_lsn is not None and (
            not isinstance(min_lsn, int) or isinstance(min_lsn, bool)
            or min_lsn < 0
        ):
            self.db.metrics.inc("server.errors")
            return (
                _error_response("'min_lsn' must be a non-negative integer",
                                "ProtocolError"),
                buffer, True,
            )
        min_lsn_timeout = request.get("min_lsn_timeout", 0)
        if not isinstance(min_lsn_timeout, (int, float)) \
                or isinstance(min_lsn_timeout, bool):
            self.db.metrics.inc("server.errors")
            return (
                _error_response("'min_lsn_timeout' must be a number",
                                "ProtocolError"),
                buffer, True,
            )
        self.db.metrics.inc("server.requests")
        if self.draining:
            self.db.metrics.inc("server.shed")
            self.db.metrics.inc("server.shed.draining")
            return (
                _error_response(
                    "server is draining; statement rejected",
                    "ServerShuttingDownError",
                ),
                buffer, False,
            )
        timeout = self._clamp_timeout(timeout)
        # Bounded admission queue in front of the worker pool: when all
        # workers are busy, at most queue_limit statements wait, and
        # none waits longer than queue_timeout — everything else is
        # shed *now*, with a typed error, instead of stacking latency.
        if self._queued >= self.queue_limit:
            return (
                self._shed("queue_full",
                           f"statement queue is full "
                           f"({self._queued} waiting); statement shed"),
                buffer, True,
            )
        self._queued += 1
        self.db.metrics.set_gauge("server.queue_depth", self._queued)
        try:
            await asyncio.wait_for(
                self._worker_slots.acquire(), self.queue_timeout
            )
        except asyncio.TimeoutError:
            return (
                self._shed("queue_deadline",
                           f"no worker free within the "
                           f"{self.queue_timeout}s queue deadline; "
                           "statement shed"),
                buffer, True,
            )
        finally:
            self._queued -= 1
            self.db.metrics.set_gauge("server.queue_depth", self._queued)
        conn.busy = True
        try:
            return await self._run_on_worker(conn, reader, sql, timeout,
                                             buffer, min_lsn,
                                             float(min_lsn_timeout))
        finally:
            conn.busy = False
            self._worker_slots.release()

    async def _run_op(self, conn: _Conn, op: str, handler, request: dict,
                      buffer: bytes):
        """Run a registered op handler on the worker pool (outside the
        admission queue — ops are infrastructure, not statements)."""
        self.db.metrics.inc(f"server.ops.{op}")
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                self._executor, handler, request, conn
            )
        except ReproError as exc:
            self.db.metrics.inc("server.errors")
            return (
                _error_response(str(exc), type(exc).__name__),
                buffer, True,
            )
        except Exception as exc:  # never let a handler kill the server
            self.db.metrics.inc("server.errors")
            return (
                _error_response(f"op {op!r} failed: {exc}", "ServerError"),
                buffer, True,
            )
        return (
            {"ok": True, "result": result, "lsn": self._current_lsn()},
            buffer, True,
        )

    async def _run_on_worker(self, conn: _Conn, reader, sql: str,
                             timeout: float | None, buffer: bytes,
                             min_lsn: int | None = None,
                             min_lsn_timeout: float = 0.0):
        """The statement is admitted: run it on the pool, watching the
        socket for a mid-statement hangup."""
        session = conn.session
        loop = asyncio.get_running_loop()
        started = time.perf_counter()

        def _call():
            # The bounded-staleness gate waits (or raises) on the worker
            # thread, so the event loop never blocks on replication lag.
            if min_lsn:
                self._await_min_lsn(min_lsn, min_lsn_timeout)
            return session.execute(sql, timeout)

        stmt_future = loop.run_in_executor(self._executor, _call)
        peek = asyncio.ensure_future(reader.read(1))
        disconnected = False
        try:
            while not stmt_future.done():
                done, _pending = await asyncio.wait(
                    {stmt_future, peek}, return_when=asyncio.FIRST_COMPLETED
                )
                if peek in done and not stmt_future.done():
                    data = peek.result()
                    if data:
                        # The client pipelined its next frame; keep the
                        # byte and go back to waiting on the statement.
                        buffer += data
                        peek = asyncio.ensure_future(reader.read(1))
                        continue
                    # EOF mid-statement: cancel through the cooperative
                    # path and wait for the worker to unwind (it must
                    # finish before the session's locks are released).
                    disconnected = True
                    session.cancel()
                    self.db.metrics.inc("server.cancelled_disconnects")
                    try:
                        await stmt_future
                    except Exception:
                        pass
                    return None, buffer, False
        finally:
            # The peek must be fully retired before anything else reads
            # the stream: a cancelled asyncio read stays registered as
            # the reader's waiter until the cancellation is *awaited*.
            if not peek.done():
                peek.cancel()
            try:
                data = await peek
                # A byte that raced the statement's completion belongs
                # to the next frame; b"" (EOF) resurfaces on next read.
                if not disconnected and data:
                    buffer += data
            except (asyncio.CancelledError, ConnectionError):
                pass
        try:
            result = stmt_future.result()
        except ReproError as exc:
            self.db.metrics.inc("server.errors")
            return (
                _error_response(str(exc), type(exc).__name__),
                buffer, True,
            )
        elapsed_ms = (time.perf_counter() - started) * 1e3
        try:
            payload = jsonable_result(result)
        except Exception as exc:  # never let rendering kill the server
            self.db.metrics.inc("server.errors")
            return (
                _error_response(f"unserializable result: {exc}",
                                "ServerError"),
                buffer, True,
            )
        return (
            {"ok": True, "result": payload,
             "elapsed_ms": round(elapsed_ms, 3),
             "lsn": self._current_lsn()},
            buffer, True,
        )

    # -- framing over asyncio streams ----------------------------------------

    async def _read_frame(self, reader: asyncio.StreamReader,
                          buffer: bytes):
        """Read one frame, honouring bytes already peeked into ``buffer``.
        Returns ``(request, remaining_buffer)``; request is None on a
        clean EOF at a frame boundary."""
        garble = None
        fault = self._net_fault("read")
        if fault is not None:
            if fault.kind == NetworkFaultKind.RESET:
                self._abort_transport_of(reader)
                raise ConnectionResetError("injected network reset (read)")
            if fault.kind == NetworkFaultKind.STALL:
                await asyncio.sleep(fault.stall_seconds)
            elif fault.kind == NetworkFaultKind.GARBLE:
                garble = fault
        header, buffer, eof = await self._read_exactly(
            reader, LENGTH.size, buffer
        )
        if header is None:
            if eof and buffer:
                raise ProtocolError(
                    f"connection closed mid-header ({len(buffer)} of "
                    f"{LENGTH.size} bytes)"
                )
            return None, b""
        length, has_crc = decode_header(header, self.max_frame)
        declared_crc = None
        if has_crc:
            crc_word, buffer, _eof = await self._read_exactly(
                reader, LENGTH.size, buffer
            )
            if crc_word is None:
                raise ProtocolError(
                    f"connection closed mid-frame ({len(buffer)} of "
                    f"{LENGTH.size} checksum bytes)"
                )
            (declared_crc,) = LENGTH.unpack(crc_word)
        payload, buffer, _eof = await self._read_exactly(
            reader, length, buffer
        )
        if payload is None:
            raise ProtocolError(
                f"connection closed mid-frame ({len(buffer)} of "
                f"{length} payload bytes)"
            )
        if garble is not None:
            # Corrupt the received request the way a broken network
            # would have: the checksum (or the JSON decode) must catch
            # it — a garbled statement is never executed.
            payload = self.network_faults.garble(
                payload, garble.garble_bytes)
        if declared_crc is not None:
            verify_crc(payload, declared_crc)
        return decode_payload(payload), buffer

    def _abort_transport_of(self, reader: asyncio.StreamReader) -> None:
        transport = getattr(reader, "_transport", None)
        if transport is not None:
            try:
                transport.abort()
            except Exception:  # pragma: no cover - transport already dead
                pass

    @staticmethod
    async def _read_exactly(reader: asyncio.StreamReader, n: int,
                            buffer: bytes):
        """``(chunk, rest, eof)``: ``chunk`` is ``n`` bytes or None when
        the stream ended first (``rest`` then holds the partial tail)."""
        while len(buffer) < n:
            data = await reader.read(65536)
            if not data:
                return None, buffer, True
            buffer += data
        return buffer[:n], buffer[n:], False

    async def _send(self, writer: asyncio.StreamWriter, obj: dict) -> None:
        frame = encode_frame(obj, self.max_frame, crc=True)
        fault = self._net_fault("write")
        if fault is not None:
            if fault.kind == NetworkFaultKind.RESET:
                self._abort_transport(writer)
                raise ConnectionResetError("injected network reset (write)")
            if fault.kind == NetworkFaultKind.STALL:
                await asyncio.sleep(fault.stall_seconds)
            elif fault.kind == NetworkFaultKind.PARTIAL_FRAME:
                # Only a prefix reaches the wire, then the connection
                # drops — the client must never read this as a result.
                prefix = self.network_faults.partial_length(
                    len(frame), fault)
                writer.write(frame[:prefix])
                try:
                    await writer.drain()
                except ConnectionError:
                    pass
                self._abort_transport(writer)
                raise ConnectionResetError(
                    "injected partial frame (write)")
            elif fault.kind == NetworkFaultKind.GARBLE:
                # Corrupt bytes anywhere in the frame (header included):
                # the length check or checksum catches it client-side.
                frame = self.network_faults.garble(
                    frame, fault.garble_bytes)
        writer.write(frame)
        await writer.drain()

    async def _send_best_effort(self, writer: asyncio.StreamWriter,
                                obj: dict) -> None:
        """Send a frame to a peer we are about to hang up on; its death
        mid-send is its own problem."""
        try:
            await self._send(writer, obj)
        except (ProtocolError, ConnectionError, OSError):
            pass


async def serve(db, host: str = "127.0.0.1", port: int = 0,
                workers: int = DEFAULT_WORKERS, **kwargs) -> None:
    """Convenience runner: start a server, serve until SIGTERM/SIGINT
    (or cancellation), then gracefully drain."""
    server = QueryServer(db, host=host, port=port, workers=workers, **kwargs)
    if getattr(db, "wal", None) is not None:
        # A WAL-backed database served standalone is a replication-
        # capable primary: replicas may attach at any time.
        from repro.replication.primary import ReplicationEndpoint

        ReplicationEndpoint(server).install()
    await server.start()
    print(f"repro server listening on {server.host}:{server.port}",
          flush=True)
    loop = asyncio.get_running_loop()
    stop_requested = asyncio.Event()
    installed: list = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop_requested.set)
            installed.append(sig)
        except (NotImplementedError, ValueError, RuntimeError):
            pass  # non-main thread or platform without signal support
    forever = asyncio.ensure_future(server.serve_forever())
    stopper = asyncio.ensure_future(stop_requested.wait())
    try:
        await asyncio.wait({forever, stopper},
                           return_when=asyncio.FIRST_COMPLETED)
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
        stopper.cancel()
        await server.stop()  # graceful drain: finish or cancel in-flight
        if not forever.done():
            forever.cancel()
        try:
            await forever
        except (asyncio.CancelledError, Exception):
            pass
        print("repro server drained", flush=True)
