"""Slotted page layout.

Each page holds a slot directory that grows forward from the header and
record payloads that grow backward from the end of the page — the classic
slotted-page organization. Deleting a record leaves a tombstone slot so that
RIDs of other records remain stable.

Layout::

    [ num_slots:u16 | free_end:u16 | crc32:u32 ]          header (8 bytes)
    [ (offset:u16, length:u16) * num_slots ]              slot directory
    ...free space...
    [ record payloads packed right-to-left ]

The ``crc32`` field covers every byte of the page *except itself* (bytes
``[0:4]`` plus ``[8:page_size]``). It is stamped by the buffer pool when a
dirty page is written back to disk and verified when the page is read on a
miss, so torn writes and bit flips surface as a typed
:class:`~repro.errors.CorruptPageError` instead of decoding garbage.
"""

from __future__ import annotations

import struct
import zlib

from repro.errors import PageFullError, RecordNotFoundError, StorageError

PAGE_SIZE = 8192

_HEADER = struct.Struct("<HHI")  # num_slots, free_end, crc32
_SLOT = struct.Struct("<HH")
_HEADER_SIZE = _HEADER.size
_SLOT_SIZE = _SLOT.size
_CRC = struct.Struct("<I")
_CRC_OFFSET = 4


def compute_checksum(data: bytes | bytearray) -> int:
    """CRC32 of a slotted page, excluding the checksum field itself."""
    view = memoryview(data)
    crc = zlib.crc32(view[:_CRC_OFFSET])
    return zlib.crc32(view[_CRC_OFFSET + _CRC.size:], crc) & 0xFFFFFFFF


def stamp_checksum(data: bytearray) -> None:
    """Write the page's current CRC32 into its header field."""
    _CRC.pack_into(data, _CRC_OFFSET, compute_checksum(data))


def verify_checksum(data: bytes | bytearray) -> bool:
    """True when the stored CRC32 matches the page contents."""
    (stored,) = _CRC.unpack_from(data, _CRC_OFFSET)
    return stored == compute_checksum(data)

#: A slot with this offset marks a deleted record (offset 0 can never hold a
#: record because the header occupies it).
_TOMBSTONE = 0


class SlottedPage:
    """A mutable view over one page's bytes with slotted-record operations."""

    def __init__(self, data: bytearray | None = None, page_size: int = PAGE_SIZE):
        self.page_size = page_size
        if data is None:
            data = bytearray(page_size)
            _HEADER.pack_into(data, 0, 0, page_size, 0)
        if len(data) != page_size:
            raise StorageError(f"page of {len(data)} bytes; expected {page_size}")
        self.data = data

    # -- header accessors ---------------------------------------------------

    @property
    def num_slots(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[0]

    @property
    def free_end(self) -> int:
        """Offset one past the free region (records start here)."""
        return _HEADER.unpack_from(self.data, 0)[1]

    def _set_header(self, num_slots: int, free_end: int) -> None:
        # The crc field (bytes 4..8) is left alone: it is stamped by the
        # buffer pool at write-back time, not on every mutation.
        struct.pack_into("<HH", self.data, 0, num_slots, free_end)

    def _slot(self, slot_no: int) -> tuple[int, int]:
        if not 0 <= slot_no < self.num_slots:
            raise RecordNotFoundError(f"slot {slot_no} out of range")
        return _SLOT.unpack_from(self.data, _HEADER_SIZE + slot_no * _SLOT_SIZE)

    def _set_slot(self, slot_no: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self.data, _HEADER_SIZE + slot_no * _SLOT_SIZE, offset, length)

    # -- capacity -----------------------------------------------------------

    @property
    def free_space(self) -> int:
        """Bytes available for a new record *including* its new slot."""
        dir_end = _HEADER_SIZE + self.num_slots * _SLOT_SIZE
        return self.free_end - dir_end

    def can_fit(self, record_size: int) -> bool:
        # A new record may reuse a tombstone slot; be conservative and assume
        # a fresh slot is needed.
        return self.free_space >= record_size + _SLOT_SIZE

    @classmethod
    def max_record_size(cls, page_size: int = PAGE_SIZE) -> int:
        """Largest record a fresh page can hold."""
        return page_size - _HEADER_SIZE - _SLOT_SIZE

    # -- record operations ----------------------------------------------------

    def insert(self, record: bytes) -> int:
        """Insert ``record`` and return its slot number."""
        if len(record) == 0:
            raise StorageError("cannot store an empty record")
        if not self.can_fit(len(record)):
            raise PageFullError(
                f"record of {len(record)} bytes does not fit "
                f"({self.free_space} free)"
            )
        num_slots = self.num_slots
        new_end = self.free_end - len(record)
        self.data[new_end:self.free_end] = record
        # Reuse a tombstone slot when one exists, otherwise append.
        slot_no = num_slots
        for i in range(num_slots):
            if self._slot(i)[0] == _TOMBSTONE:
                slot_no = i
                break
        if slot_no == num_slots:
            num_slots += 1
        self._set_header(num_slots, new_end)
        self._set_slot(slot_no, new_end, len(record))
        return slot_no

    def read(self, slot_no: int) -> bytes:
        """Return the record stored at ``slot_no``."""
        offset, length = self._slot(slot_no)
        if offset == _TOMBSTONE:
            raise RecordNotFoundError(f"slot {slot_no} is deleted")
        return bytes(self.data[offset:offset + length])

    def delete(self, slot_no: int) -> None:
        """Tombstone ``slot_no`` and compact the record area."""
        offset, length = self._slot(slot_no)
        if offset == _TOMBSTONE:
            raise RecordNotFoundError(f"slot {slot_no} is already deleted")
        self._set_slot(slot_no, _TOMBSTONE, 0)
        self._compact_after_removal(offset, length)

    def update(self, slot_no: int, record: bytes) -> None:
        """Replace the record at ``slot_no`` in place (RID-stable)."""
        offset, length = self._slot(slot_no)
        if offset == _TOMBSTONE:
            raise RecordNotFoundError(f"slot {slot_no} is deleted")
        if len(record) == length:
            self.data[offset:offset + len(record)] = record
            return
        if self.free_space + length < len(record):
            # Reject before mutating so the caller can relocate the record.
            raise PageFullError(
                f"updated record of {len(record)} bytes does not fit"
            )
        # Remove then re-insert into the same slot.
        self._set_slot(slot_no, _TOMBSTONE, 0)
        self._compact_after_removal(offset, length)
        new_end = self.free_end - len(record)
        self.data[new_end:self.free_end] = record
        self._set_header(self.num_slots, new_end)
        self._set_slot(slot_no, new_end, len(record))

    def _compact_after_removal(self, gone_offset: int, gone_length: int) -> None:
        """Shift records below the removed one up to close the hole."""
        free_end = self.free_end
        moved = self.data[free_end:gone_offset]
        self.data[free_end + gone_length:gone_offset + gone_length] = moved
        new_end = free_end + gone_length
        self._set_header(self.num_slots, new_end)
        for i in range(self.num_slots):
            offset, length = self._slot(i)
            if offset != _TOMBSTONE and offset < gone_offset:
                self._set_slot(i, offset + gone_length, length)

    def records(self) -> list[tuple[int, bytes]]:
        """Return ``(slot_no, record)`` for every live record."""
        out = []
        for i in range(self.num_slots):
            offset, length = self._slot(i)
            if offset != _TOMBSTONE:
                out.append((i, bytes(self.data[offset:offset + length])))
        return out

    def live_count(self) -> int:
        """Number of live (non-tombstoned) records."""
        return sum(1 for i in range(self.num_slots) if self._slot(i)[0] != _TOMBSTONE)

    # -- integrity ----------------------------------------------------------

    def check(self) -> list[str]:
        """Verify slot/free-space accounting; returns problem descriptions.

        The invariants enforced (all guaranteed by insert/update/delete plus
        eager compaction):

        * header bounds: slot directory ends at or before ``free_end``,
          ``free_end`` within the page;
        * every live slot lies inside ``[free_end, page_size)``;
        * tombstones carry length 0;
        * live records exactly tile ``[free_end, page_size)`` — no overlap,
          no gaps.
        """
        problems: list[str] = []
        try:
            num_slots, free_end = struct.unpack_from("<HH", self.data, 0)
        except struct.error as exc:  # pragma: no cover - header always 8B
            return [f"unreadable header: {exc}"]
        dir_end = _HEADER_SIZE + num_slots * _SLOT_SIZE
        if free_end > self.page_size:
            return [f"free_end {free_end} beyond page size {self.page_size}"]
        if dir_end > free_end:
            return [
                f"slot directory ({num_slots} slots, ends {dir_end}) "
                f"overlaps record area (free_end {free_end})"
            ]
        live: list[tuple[int, int, int]] = []
        for i in range(num_slots):
            offset, length = _SLOT.unpack_from(
                self.data, _HEADER_SIZE + i * _SLOT_SIZE
            )
            if offset == _TOMBSTONE:
                if length != 0:
                    problems.append(f"tombstone slot {i} has length {length}")
                continue
            if offset < free_end or offset + length > self.page_size:
                problems.append(
                    f"slot {i} extent [{offset}, {offset + length}) outside "
                    f"record area [{free_end}, {self.page_size})"
                )
                continue
            live.append((offset, length, i))
        expected = free_end
        for offset, length, i in sorted(live):
            if offset != expected:
                kind = "overlaps" if offset < expected else "leaves a gap before"
                problems.append(
                    f"slot {i} at offset {offset} {kind} expected offset "
                    f"{expected} (records must tile the record area)"
                )
            expected = max(expected, offset + length)
        if expected != self.page_size:
            problems.append(
                f"record area ends at {expected}, not page size {self.page_size}"
            )
        return problems
