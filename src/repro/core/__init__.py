"""Public entry point: the :class:`Database` facade."""

from repro.core.database import Database

__all__ = ["Database"]
