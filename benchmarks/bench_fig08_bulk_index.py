"""Figure 8 — overhead of bulk index creation.

Paper: after loading the raw annotations and creating the summary
objects, building the Summary-BTree costs up to 35% less than the
Baseline scheme (which must also de-normalize into replica tables);
both are a small percentage of the data-loading time.
"""

import time

import pytest

from repro.bench import FigureTable, fresh_database


@pytest.mark.benchmark(group="fig08-bulk-index")
@pytest.mark.parametrize("density", [10, 25, 50, 100, 200])
def test_bulk_index_creation(benchmark, density, preset, figure_writer):
    if density not in preset.densities:
        pytest.skip(f"density {density} not in preset {preset.name}")

    def build_all():
        started = time.perf_counter()
        db = fresh_database(
            num_birds=preset.num_birds, annotations_per_tuple=density,
            indexes="none",
        )
        load_s = time.perf_counter() - started

        started = time.perf_counter()
        db.create_summary_index("birds", "ClassBird1")
        summary_s = time.perf_counter() - started

        started = time.perf_counter()
        db.create_baseline_index("birds", "ClassBird1")
        baseline_s = time.perf_counter() - started
        return load_s, summary_s, baseline_s

    load_s, summary_s, baseline_s = benchmark.pedantic(
        build_all, rounds=1, iterations=1
    )

    table = figure_writer.setdefault(
        "fig08_bulk_index",
        FigureTable(
            "Figure 8 — bulk index creation (% of data-loading time)",
            unit="% of load",
        ),
    )
    x = preset.label(density)
    table.add("Summary-BTree", x, 100.0 * summary_s / load_s)
    table.add("Baseline", x, 100.0 * baseline_s / load_s)
    if density == max(preset.densities):
        saving = 1 - table.mean_ratio("Summary-BTree", "Baseline")
        table.note(
            f"Summary-BTree creation is {saving:.0%} cheaper than Baseline"
            "  [paper: up to 35%]"
        )
