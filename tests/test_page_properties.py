"""Property-based tests for the slotted page (Hypothesis).

A random interleaving of inserts, updates, and deletes is applied both to a
:class:`SlottedPage` and to a plain dict oracle. After every step the page
must return exactly the oracle's records, its free-space/live-count
accounting must match first principles, and :meth:`SlottedPage.check` must
report zero problems — the same invariants the integrity checker enforces
engine-wide, exercised here at the single-page level.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.errors import PageFullError, RecordNotFoundError  # noqa: E402
from repro.storage.page import (  # noqa: E402
    SlottedPage,
    compute_checksum,
    stamp_checksum,
    verify_checksum,
)

PAGE_SIZE = 512  # small pages make fills/compaction frequent

_record = st.binary(min_size=1, max_size=120)
_op = st.one_of(
    st.tuples(st.just("insert"), _record),
    st.tuples(st.just("delete"), st.integers(min_value=0, max_value=40)),
    st.tuples(st.just("update"), st.integers(min_value=0, max_value=40),
              _record),
)


def _check_against_oracle(page: SlottedPage, oracle: dict[int, bytes]) -> None:
    assert page.check() == []
    assert dict(page.records()) == oracle
    assert page.live_count() == len(oracle)
    # Free space from first principles: the whole page minus header, slot
    # directory, and live payload bytes.
    payload = sum(len(r) for r in oracle.values())
    dir_bytes = 4 * page.num_slots
    assert page.free_space == PAGE_SIZE - 8 - dir_bytes - payload
    for slot_no, record in oracle.items():
        assert page.read(slot_no) == record


@given(ops=st.lists(_op, max_size=60))
@settings(max_examples=120, deadline=None)
def test_page_matches_oracle_through_dml(ops):
    page = SlottedPage(page_size=PAGE_SIZE)
    oracle: dict[int, bytes] = {}
    for op in ops:
        if op[0] == "insert":
            record = op[1]
            try:
                slot = page.insert(record)
            except PageFullError:
                assert not page.can_fit(len(record))
                continue
            assert slot not in oracle
            oracle[slot] = record
        elif op[0] == "delete":
            slot = op[1]
            if slot in oracle:
                page.delete(slot)
                del oracle[slot]
            else:
                with pytest.raises(RecordNotFoundError):
                    page.delete(slot)
        else:
            _, slot, record = op
            if slot in oracle:
                try:
                    page.update(slot, record)
                    oracle[slot] = record
                except PageFullError:
                    # Reject-before-mutate: the old record must survive.
                    assert page.read(slot) == oracle[slot]
            else:
                with pytest.raises(RecordNotFoundError):
                    page.update(slot, record)
        _check_against_oracle(page, oracle)


@given(records=st.lists(_record, min_size=1, max_size=10))
@settings(max_examples=60, deadline=None)
def test_tombstone_slots_are_reused(records):
    page = SlottedPage(page_size=PAGE_SIZE)
    slots = []
    for record in records:
        if not page.can_fit(len(record)):
            break
        slots.append(page.insert(record))
    page.delete(slots[0])
    refill = page.insert(b"x")
    assert refill == slots[0]  # first tombstone is recycled
    assert page.check() == []


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_checksum_roundtrip_and_sensitivity(data):
    page = SlottedPage(page_size=PAGE_SIZE)
    for record in data.draw(st.lists(_record, max_size=6)):
        if page.can_fit(len(record)):
            page.insert(record)
    stamp_checksum(page.data)
    assert verify_checksum(page.data)
    # Stamping is idempotent: the checksum field is excluded from itself.
    before = compute_checksum(page.data)
    stamp_checksum(page.data)
    assert compute_checksum(page.data) == before
    # Any single flipped bit outside the CRC field must be detected.
    bit = data.draw(st.integers(min_value=0, max_value=PAGE_SIZE * 8 - 1))
    if 4 * 8 <= bit < 8 * 8:
        bit += 4 * 8  # skip the CRC field itself (flips there also detect,
        # but via the stored-vs-computed side; keep the property crisp)
    page.data[bit // 8] ^= 1 << (bit % 8)
    assert not verify_checksum(page.data)
