"""Incremental summary maintenance (§2 + §4.1.2).

:class:`SummaryManager` owns the summary-instance registry, the per-table
``R_SummaryStorage`` tables, the per-tuple CluStream states, and the
annotation store. Every annotation mutation flows through it:

* **Adding an annotation on an un-annotated tuple** creates the tuple's
  storage row (the paper's *Insertion* case) and notifies index observers
  with the fresh classifier objects.
* **Adding on an already-annotated tuple** updates the affected summary
  objects in place (*Update* case); observers receive old/new label counts
  so a Summary-BTree can delete+re-insert only the modified keys.
* **Deleting an annotation / a tuple** reverses those effects.

Index structures and optimizer statistics both subscribe through the same
observer interface, matching the paper's "statistics are maintained whenever
a summary object is updated" (§5.2).

**Maintenance modes.**  ``async_mode`` selects how much of that work rides
the write path (set by the owning :class:`~repro.core.database.Database`
from ``REPRO_SUMMARY_ASYNC`` / ``Database(summary_async=)``; a bare
manager always runs synchronously):

* ``"off"`` — classic incremental maintenance inside the write.
* ``"coherent"`` — writes only append the raw annotation and mark the
  tuple stale in :class:`~repro.summaries.background.PendingSummaryWork`;
  the owning Database drains at every statement boundary and
  :meth:`storage_for` drains as a read barrier, so the mode is observably
  identical to ``"off"`` while routing all maintenance through
  :meth:`regenerate_tuple` (CI runs the whole suite this way as an
  equivalence proof of the regeneration path).
* ``"deferred"`` — fully asynchronous: a background
  :class:`~repro.summaries.background.MaintenanceWorker` regenerates
  stale tuples in batches; reads serve the last-generated objects and
  surface ``summary_status: fresh|stale`` instead of blocking.

Regeneration recomputes a tuple's summary objects from its raw
annotations in ``ann_id`` order, which reproduces the incremental
classifier/snippet results byte-for-byte; cluster objects are rebuilt
from scratch (canonical form — CluStream's incremental *remove* is
path-dependent, so regeneration defines the converged grouping).
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Protocol

from repro.annotations.annotation import Annotation, AnnotationTarget
from repro.annotations.store import AnnotationStore
from repro.cache import CacheInvalidator, SummaryCache, default_cache_bytes
from repro.errors import SummaryError, UnknownInstanceError
from repro.summaries.background import PendingSummaryWork
from repro.mining.clustream import CluStream
from repro.obs.metrics import MetricsRegistry
from repro.storage.buffer import BufferPool
from repro.summaries.functions import SummarySet
from repro.summaries.instances import (
    ClassifierInstance,
    ClusterInstance,
    SnippetInstance,
    SummaryInstance,
)
from repro.summaries.objects import (
    ClassifierObject,
    ClusterGroup,
    ClusterObject,
    SnippetObject,
    SummaryObject,
)
from repro.summaries.storage import SummaryStorage


class SummaryObserver(Protocol):
    """Observer notified of classifier summary-object changes."""

    def on_summary_insert(self, oid: int, obj: ClassifierObject) -> None:
        """A new storage row was created carrying ``obj``."""

    def on_summary_update(
        self, oid: int, old_counts: dict[str, int], new_counts: dict[str, int]
    ) -> None:
        """An existing classifier object changed label counts."""

    def on_tuple_delete(self, oid: int, counts: dict[str, int]) -> None:
        """The tuple (and its summary row) was deleted."""


class SummaryManager:
    """The summary subsystem's single entry point."""

    #: Class-level fallback for managers unpickled from pre-cache images.
    cache: SummaryCache | None = None
    #: Class-level fallbacks for managers unpickled from pre-async images.
    #: ``async_mode`` is only ever set by the owning Database — a bare
    #: manager (unit tests, tools) always maintains synchronously.
    async_mode: str = "off"
    pending: PendingSummaryWork | None = None
    #: (table, oid) -> live annotation ids attached there; None = lazily
    #: rebuilt from the annotation store on first use (old images).
    _targets_index: "dict[tuple[str, int], set[int]] | None" = None
    #: callback the owning Database installs so regeneration never
    #: resurrects a summary row for a deleted data tuple.
    tuple_exists = None
    #: callback that nudges the background worker when work goes pending.
    maint_wake = None

    def __init__(
        self,
        pool: BufferPool,
        metrics: MetricsRegistry | None = None,
        cache_bytes: int | None = None,
    ):
        #: maintenance-event counters (``maint.*``); shared with the owning
        #: Database's registry so EXPLAIN ANALYZE can report deltas.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: shared summary-set cache in front of every SummaryStorage;
        #: capacity defaults to the REPRO_CACHE_BYTES env var (0 = off).
        self.cache = SummaryCache(
            capacity_bytes=(
                default_cache_bytes() if cache_bytes is None else cache_bytes
            ),
            metrics=self.metrics,
        )
        self._cell_annotated: set[str] = set()
        #: black-box summary-set UDFs (§3.2): name -> callable(SummarySet)
        self.udfs: dict[str, object] = {}
        self.pool = pool
        self.annotations = AnnotationStore(pool)
        self._instances: dict[str, SummaryInstance] = {}
        self._links: dict[str, list[str]] = defaultdict(list)  # table -> names
        self._storages: dict[str, SummaryStorage] = {}
        self._clusterers: dict[tuple[str, int, str], CluStream] = {}
        #: (table, instance) -> observers
        self._observers: dict[tuple[str, str], list[SummaryObserver]] = defaultdict(list)
        #: staleness set for the async maintenance modes.
        self.pending = PendingSummaryWork()
        self._targets_index = {}
        #: serializes regeneration against foreground writers; the owning
        #: Database replaces it with its commit mutex.
        self.regen_lock = threading.RLock()
        self._regen_local = threading.local()

    # -- pickling ------------------------------------------------------------

    def __getstate__(self) -> dict:
        # Locks, thread-locals, and the Database-installed callbacks are
        # process state, never image state.
        state = self.__dict__.copy()
        for key in ("regen_lock", "_regen_local", "tuple_exists",
                    "maint_wake"):
            state.pop(key, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("pending", PendingSummaryWork())
        # None → rebuilt lazily from the annotation store on first use.
        self.__dict__.setdefault("_targets_index", None)
        self.regen_lock = threading.RLock()
        self._regen_local = threading.local()
        self.tuple_exists = None
        self.maint_wake = None

    # -- instance registry ---------------------------------------------------------

    def create_classifier_instance(
        self,
        name: str,
        labels: list[str],
        seed_examples: list[tuple[str, str]] | None = None,
    ) -> ClassifierInstance:
        """Define a Classifier summary instance and seed-train its model."""
        instance = ClassifierInstance(name=name, labels=list(labels))
        if seed_examples:
            instance.train(seed_examples)
        self._register(instance)
        return instance

    def create_hierarchical_classifier_instance(
        self,
        name: str,
        tree_spec: dict,
        seed_examples: list[tuple[str, str]] | None = None,
    ):
        """Define a multi-level Classifier instance (future-work §8): the
        Naive Bayes model classifies to the hierarchy's leaves; inner nodes
        roll up at query time."""
        from repro.summaries.hierarchy import (
            HierarchicalClassifierInstance,
            LabelTree,
        )

        tree = tree_spec if isinstance(tree_spec, LabelTree) else LabelTree(tree_spec)
        instance = HierarchicalClassifierInstance(
            name=name, labels=tree.leaves(), tree=tree
        )
        if seed_examples:
            instance.train(seed_examples)
        self._register(instance)
        return instance

    def create_snippet_instance(
        self, name: str, min_chars: int = 1000, max_chars: int = 400
    ) -> SnippetInstance:
        """Define a Snippet summary instance."""
        instance = SnippetInstance(name=name, min_chars=min_chars, max_chars=max_chars)
        self._register(instance)
        return instance

    def create_cluster_instance(self, name: str, **kwargs) -> ClusterInstance:
        """Define a Cluster summary instance."""
        instance = ClusterInstance(name=name, **kwargs)
        self._register(instance)
        return instance

    def _register(self, instance: SummaryInstance) -> None:
        if instance.name in self._instances:
            raise SummaryError(f"summary instance {instance.name!r} already exists")
        self._instances[instance.name] = instance

    def instance(self, name: str) -> SummaryInstance:
        if name not in self._instances:
            raise UnknownInstanceError(f"no summary instance named {name!r}")
        return self._instances[name]

    def has_instance(self, name: str) -> bool:
        return name in self._instances

    # -- table links (Alter Table ... Add <InstanceName>) -----------------------------

    def link(self, table: str, instance_name: str) -> None:
        """Link a summary instance to a relation (§2.1)."""
        self.instance(instance_name)  # validate
        table = table.lower()
        if instance_name in self._links[table]:
            raise SummaryError(
                f"instance {instance_name!r} already linked to {table!r}"
            )
        self._links[table].append(instance_name)

    def unlink(self, table: str, instance_name: str) -> None:
        """Drop the link (Alter Table ... Drop <InstanceName>)."""
        table = table.lower()
        if instance_name not in self._links[table]:
            raise SummaryError(f"instance {instance_name!r} not linked to {table!r}")
        self._links[table].remove(instance_name)

    def instances_for(self, table: str) -> list[SummaryInstance]:
        return [self._instances[n] for n in self._links[table.lower()]]

    def is_linked(self, table: str, instance_name: str) -> bool:
        return instance_name in self._links[table.lower()]

    def tables_with_instance(self, instance_name: str) -> list[str]:
        return [t for t, names in self._links.items() if instance_name in names]

    def storage_for(self, table: str) -> SummaryStorage:
        table = table.lower()
        if table not in self._storages:
            self._storages[table] = SummaryStorage(
                table, self.pool, cache=self.cache
            )
            if self.cache is not None:
                # Observer-driven invalidation: the "*" channel sees one
                # event per storage write/delete for this table.
                self.add_observer(
                    table, "*", CacheInvalidator(self.cache, table)
                )
        if (
            self.async_mode == "coherent"
            and self.pending is not None
            and not getattr(self._regen_local, "active", False)
            and self.pending.has_table(table)
        ):
            # Coherent-mode read barrier: whoever is about to read this
            # table's summary rows first converges them.  (Statement
            # boundaries drain too; this catches direct storage access and
            # pending work left over by WAL replay or an image load.)
            self.drain_pending(table=table)
        return self._storages[table]

    # -- observers ----------------------------------------------------------------

    def add_observer(
        self, table: str, instance_name: str, observer: SummaryObserver
    ) -> None:
        self._observers[(table.lower(), instance_name)].append(observer)

    def remove_observer(
        self, table: str, instance_name: str, observer: SummaryObserver
    ) -> None:
        """Detach one observer.  Idempotent: detaching an observer that is
        not (or no longer) registered is a no-op, so teardown paths that
        overlap — ``ALTER TABLE … DROP`` clearing a channel and
        ``drop_summary_index`` removing its index — compose safely."""
        observers = self._observers.get((table.lower(), instance_name))
        if observers is None:
            return
        try:
            observers.remove(observer)
        except ValueError:
            pass

    def clear_observers(self, table: str, instance_name: str) -> None:
        """Detach *every* observer on one ``(table, instance)`` channel.

        The DROP path needs this rather than identity-based removal:
        ``StatisticsCatalog.observer_for`` returns a fresh observer object
        per registration, so the exact instance registered at ADD time is
        not recoverable — and a dropped link must leave nothing behind
        that keeps mutating a zombie index or statistics entry."""
        self._observers.pop((table.lower(), instance_name), None)

    def _notify(self, table: str, instance_name: str, method: str, *args) -> None:
        self.metrics.inc(f"maint.{method}")
        for observer in self._observers.get((table.lower(), instance_name), []):
            getattr(observer, method)(*args)

    # -- annotation mutations ----------------------------------------------------------

    def register_udf(self, name: str, fn) -> None:
        """Register a black-box UDF usable in summary predicates (§3.2),
        e.g. ``Where diseaseHeavy(r.$)``.  ``fn`` receives the evaluated
        arguments (a bare ``alias.$`` evaluates to the SummarySet)."""
        self.udfs[name] = fn

    def has_cell_annotations(self, table: str) -> bool:
        """True when any annotation ever targeted specific columns of
        ``table``.  The planner's summary-index side condition: when False,
        projection-time annotation elimination is a no-op on classifier
        counts, so index probes (which see stored counts) stay equivalent
        to scan plans."""
        return table.lower() in self._cell_annotated

    def _record_targets(self, targets: list[AnnotationTarget]) -> None:
        for target in targets:
            if target.columns:
                self._cell_annotated.add(target.table.lower())

    def add_annotation(
        self, text: str, targets: list[AnnotationTarget],
        ann_id: int | None = None,
    ) -> Annotation:
        """Store a raw annotation and incrementally update every summary
        object it affects.  ``ann_id`` forces the assigned id (WAL replay).

        In an async mode the summary work is deferred: the annotation is
        appended, attachments are recorded, and each affected tuple is
        marked stale for :meth:`regenerate_tuple` to converge later."""
        self._record_targets(targets)
        self.metrics.inc("maint.annotation_add")
        annotation = self.annotations.create(text, targets, ann_id=ann_id)
        affected = self._affected_tuples(annotation)
        self._attach_targets(annotation.ann_id, affected)
        if self.async_mode != "off":
            for table, oid in affected:
                self._mark_stale(table, oid)
            return annotation
        for table, oid in affected:
            self._apply_to_tuple(annotation, table, oid)
        return annotation

    def add_annotations_bulk(
        self, items: list[tuple[str, list[AnnotationTarget]]],
        first_id: int | None = None,
    ) -> list[Annotation]:
        """Bulk-load many annotations (initial-upload mode, §6).

        Summary objects are written back once per affected tuple instead of
        once per annotation; observers see one consolidated event per tuple.
        ``first_id`` forces the ids of the whole batch (``first_id``,
        ``first_id + 1``, …) so WAL replay of a logged bulk load reproduces
        the original identities — see :meth:`Database.add_annotations_bulk`,
        which is the durable entry point.
        """
        for _text, targets in items:
            self._record_targets(targets)
        self.metrics.inc("maint.annotation_add", len(items))
        annotations = []
        for offset, (text, targets) in enumerate(items):
            ann_id = None if first_id is None else first_id + offset
            annotations.append(
                self.annotations.create(text, targets, ann_id=ann_id)
            )
        grouped: dict[tuple[str, int], list[Annotation]] = {}
        for annotation in annotations:
            keys = self._affected_tuples(annotation)
            self._attach_targets(annotation.ann_id, keys)
            for key in keys:
                grouped.setdefault(key, []).append(annotation)
        if self.async_mode != "off":
            for table, oid in grouped:
                self._mark_stale(table, oid)
            return annotations
        for (table, oid), batch in grouped.items():
            self._apply_batch_to_tuple(batch, table, oid)
        return annotations

    def _apply_batch_to_tuple(
        self, batch: list[Annotation], table: str, oid: int
    ) -> None:
        instances = self.instances_for(table)
        if not instances:
            return
        storage = self.storage_for(table)
        objects = storage.get(oid)
        created_row = objects is None
        if objects is None:
            objects = {}
        old_counts: dict[str, dict[str, int] | None] = {}
        for instance in instances:
            obj = objects.get(instance.name)
            if obj is None:
                old_counts[instance.name] = None
                objects[instance.name] = instance.new_object(oid)
            elif isinstance(obj, ClassifierObject):
                old_counts[instance.name] = dict(obj.rep())
        for annotation in batch:
            columns = annotation.columns_on(table, oid)
            for instance in instances:
                obj = objects[instance.name]
                if isinstance(instance, ClassifierInstance):
                    assert isinstance(obj, ClassifierObject)
                    label = instance.classify(annotation.text)
                    obj.add_annotation(annotation.ann_id, label, columns)
                elif isinstance(instance, SnippetInstance):
                    assert isinstance(obj, SnippetObject)
                    obj.add_annotation(
                        annotation.ann_id, columns,
                        instance.snippet_for(annotation.text),
                    )
                else:
                    assert isinstance(instance, ClusterInstance)
                    clusterer = self._clusterer_for(table, oid, instance, objects)
                    clusterer.insert(annotation.ann_id, annotation.text)
                    obj.ann_targets[annotation.ann_id] = columns
        for instance in instances:
            if isinstance(instance, ClusterInstance):
                clusterer = self._clusterers.get((table, oid, instance.name))
                if clusterer is not None:
                    self._rebuild_cluster_object(
                        objects[instance.name], clusterer  # type: ignore[arg-type]
                    )
        storage.put(oid, objects)
        self._notify(table, "*", "on_objects_write", oid, objects)
        for instance in instances:
            if not isinstance(instance, ClassifierInstance):
                continue
            obj = objects[instance.name]
            assert isinstance(obj, ClassifierObject)
            previous = old_counts.get(instance.name)
            if created_row or previous is None:
                self._notify(table, instance.name, "on_summary_insert", oid, obj)
            else:
                self._notify(
                    table, instance.name, "on_summary_update", oid, previous,
                    dict(obj.rep()),
                )

    def delete_annotation(self, ann_id: int) -> None:
        """Remove a raw annotation and subtract its effects (§4.1.2)."""
        self.metrics.inc("maint.annotation_delete")
        annotation = self.annotations.delete(ann_id)
        affected = self._affected_tuples(annotation)
        self._detach_targets(ann_id, affected)
        if self.async_mode != "off":
            for table, oid in affected:
                self._mark_stale(table, oid)
            return
        for table, oid in affected:
            self._remove_from_tuple(annotation, table, oid)

    def on_tuple_delete(self, table: str, oid: int) -> None:
        """The data tuple is gone: drop its summary row and index entries."""
        table = table.lower()
        # Sever the tuple's annotation attachments and cancel any queued
        # regeneration — a dropped row must never be resurrected by the
        # background worker.
        if self._targets_index is not None:
            self._targets_index.pop((table, oid), None)
        if self.pending is not None:
            self.pending.discard(table, oid)
        storage = self.storage_for(table)
        objects = storage.get(oid)
        if objects is None:
            return
        for name, obj in objects.items():
            if isinstance(obj, ClassifierObject):
                self._notify(table, name, "on_tuple_delete", oid,
                             dict(obj.rep()))
            self._clusterers.pop((table, oid, name), None)
        storage.delete(oid)
        self._notify(table, "*", "on_objects_delete", oid)

    # -- reads -------------------------------------------------------------------------

    def summary_set_for(self, table: str, oid: int) -> SummarySet:
        """The stored summary objects of one tuple as a :class:`SummarySet`.

        Objects are deserialized copies; callers may mutate them freely.
        """
        objects = self.storage_for(table).get(oid)
        return SummarySet(objects or {})

    def raw_texts_for(self, table: str, oid: int) -> list[str]:
        """Raw texts of every annotation attached to a tuple (keyword-search
        fallback of §3.1).

        Memoized per (table, oid): annotation texts are immutable and any
        change to *which* annotations a tuple carries rewrites its storage
        row, which invalidates both cache kinds for the OID.
        """
        table = table.lower()
        cache = self.cache
        if cache is not None and cache.enabled:
            hit, texts = cache.lookup(table, oid, kind="texts")
            if hit:
                return list(texts)
        objects = self.storage_for(table).get(oid)
        if not objects:
            texts = []
        else:
            ann_ids: set[int] = set()
            for obj in objects.values():
                ann_ids |= obj.all_annotation_ids()
            texts = self.annotations.texts(sorted(ann_ids))
        if cache is not None and cache.enabled:
            cache.store(
                table, oid, tuple(texts),
                sum(len(t) for t in texts), kind="texts",
            )
        return texts

    def zoom_in(
        self, table: str, oid: int, instance_name: str,
        selector: str | int | None = None,
    ) -> list[str]:
        """Zoom-in: raw annotation texts behind a summary (or one of its
        representatives).

        ``selector`` is a class label for Classifier objects, a Rep[]
        position for Snippet/Cluster objects, or None for everything.
        """
        objects = self.storage_for(table).get(oid)
        if not objects or instance_name not in objects:
            return []
        obj = objects[instance_name]
        if selector is None:
            ann_ids = sorted(obj.all_annotation_ids())
        elif isinstance(obj, ClassifierObject) and isinstance(selector, str):
            if selector not in obj.label_elements:
                from repro.summaries.hierarchy import (
                    HierarchicalClassifierInstance,
                )

                instance = self._instances.get(instance_name)
                if isinstance(instance, HierarchicalClassifierInstance) \
                        and selector in instance.tree:
                    # Multi-level zoom: an inner node unions its subtree.
                    ann_ids = instance.resolve_elements(obj, selector)
                    return self.annotations.texts(ann_ids)
                raise SummaryError(f"no label {selector!r} on {instance_name!r}")
            ann_ids = sorted(obj.label_elements[selector])
        elif isinstance(selector, int):
            element_lists = obj.elements()
            if not 0 <= selector < len(element_lists):
                raise SummaryError(f"representative {selector} out of range")
            ann_ids = element_lists[selector]
        else:
            raise SummaryError(f"bad zoom selector {selector!r}")
        return self.annotations.texts(ann_ids)

    # -- internals -----------------------------------------------------------------------

    @staticmethod
    def _affected_tuples(annotation: Annotation) -> list[tuple[str, int]]:
        seen: list[tuple[str, int]] = []
        for target in annotation.targets:
            key = (target.table.lower(), target.oid)
            if key not in seen:
                seen.append(key)
        return seen

    # -- async maintenance ---------------------------------------------------------------

    def _ensure_targets_index(self) -> dict[tuple[str, int], set[int]]:
        """The live attachment reverse-map: (table, oid) -> annotation ids.

        Maintained on every create/delete; rebuilt from the annotation
        store for managers unpickled from pre-async images.  Entries for
        deleted data tuples are pruned by :meth:`on_tuple_delete` (the
        live map) or filtered by ``tuple_exists`` (the rebuilt one)."""
        if self._targets_index is None:
            index: dict[tuple[str, int], set[int]] = {}
            for annotation in self.annotations.scan():
                for key in self._affected_tuples(annotation):
                    index.setdefault(key, set()).add(annotation.ann_id)
            self._targets_index = index
        return self._targets_index

    def _attach_targets(self, ann_id: int,
                        keys: list[tuple[str, int]]) -> None:
        index = self._ensure_targets_index()
        for key in keys:
            index.setdefault(key, set()).add(ann_id)

    def _detach_targets(self, ann_id: int,
                        keys: list[tuple[str, int]]) -> None:
        index = self._ensure_targets_index()
        for key in keys:
            members = index.get(key)
            if members is None:
                continue
            members.discard(ann_id)
            if not members:
                index.pop(key, None)

    def _ensure_pending(self) -> PendingSummaryWork:
        if self.pending is None:
            self.pending = PendingSummaryWork()
        return self.pending

    def _mark_stale(self, table: str, oid: int) -> None:
        """Async write path: record staleness instead of doing the work.

        Bumps the tuple's freshness marker (a precise cache invalidation —
        the PR-4 epoch machinery guarantees nothing stale outlives the
        regeneration that follows), publishes the backlog gauge, and
        nudges the background worker.  Deliberately avoids
        :meth:`storage_for`: the write path must never trip the coherent
        read barrier it is creating work for."""
        if not self._links.get(table):
            return  # no linked instances: nothing will ever regenerate
        pending = self._ensure_pending()
        storage = self._storages.get(table)
        generation = storage.generation(oid) if storage is not None else 0
        epoch = self.cache.epoch(table) if self.cache is not None else 0
        if pending.mark(table, oid, generation=generation, epoch=epoch):
            self.metrics.inc("maint.deferred")
        if self.cache is not None:
            self.cache.invalidate(table, oid)
        self.metrics.set_gauge("maint.backlog", len(pending))
        wake = self.maint_wake
        if wake is not None:
            wake()

    def summary_status(self, table: str, oid: int) -> str:
        """``"stale"`` while the tuple has queued maintenance work, else
        ``"fresh"`` — what deferred-mode query results surface per row."""
        pending = self.pending
        if pending is not None and (table.lower(), oid) in pending:
            return "stale"
        return "fresh"

    def has_pending(self) -> bool:
        return self.pending is not None and len(self.pending) > 0

    def pending_count(self) -> int:
        return len(self.pending) if self.pending is not None else 0

    def pending_lag_seconds(self) -> float:
        return self.pending.oldest_age() if self.pending is not None else 0.0

    def drain_pending(self, table: str | None = None,
                      limit: int | None = None) -> int:
        """Regenerate stale tuples (optionally one table's, up to
        ``limit``); returns how many were regenerated.

        Serialized against foreground writers by ``regen_lock`` (the
        engine's commit mutex when a Database owns this manager) and safe
        to call from anywhere — checkpoints, server drain, the background
        worker, the coherent read barrier — because it is idempotent over
        an empty set.  A tuple whose regeneration raises is re-marked
        before the error propagates, so no staleness is ever lost."""
        pending = self.pending
        if pending is None or not len(pending):
            return 0
        drained = 0
        with self.regen_lock:
            if getattr(self._regen_local, "active", False):
                return 0  # re-entered from inside a regeneration
            self._regen_local.active = True
            try:
                while limit is None or drained < limit:
                    item = pending.pop_next(table)
                    if item is None:
                        break
                    (item_table, oid), entry = item
                    try:
                        self.regenerate_tuple(item_table, oid)
                    except BaseException:
                        pending.mark(item_table, oid,
                                     generation=entry.generation,
                                     epoch=entry.epoch)
                        raise
                    drained += 1
            finally:
                self._regen_local.active = False
        if drained:
            self.metrics.inc("maint.regen", drained)
        self.metrics.set_gauge("maint.backlog", len(pending))
        self.metrics.set_gauge("maint.lag_seconds", pending.oldest_age())
        return drained

    def regenerate_tuple(self, table: str, oid: int) -> None:
        """Recompute one tuple's summary objects from its raw annotations.

        The converged result is definitionally what synchronous
        maintenance would have produced: annotations are applied in
        ``ann_id`` order (the incremental arrival order), objects of
        currently-unlinked instances are preserved but scrubbed to live
        attachments (matching the sync path, which leaves them behind on
        unlink), and an empty result drops the storage row with the same
        event sequence as a tuple delete.  Observers receive one
        consolidated write event plus per-classifier insert/update events
        whose *old* counts are the stored (still-indexed) ones, so
        derived structures converge no matter how many writes were folded
        into this one regeneration.
        """
        table = table.lower()
        storage = self.storage_for(table)
        old = storage.get(oid)
        ann_ids = sorted(self._ensure_targets_index().get((table, oid), ()))
        exists = self.tuple_exists is None or self.tuple_exists(table, oid)
        instances = self.instances_for(table) if exists else []
        linked = {instance.name for instance in instances}
        objects: dict[str, SummaryObject] = {}
        if instances and ann_ids:
            annotations = self.annotations.get_many(ann_ids)
            for instance in instances:
                obj = instance.new_object(oid)
                objects[instance.name] = obj
                if isinstance(instance, ClassifierInstance):
                    assert isinstance(obj, ClassifierObject)
                    for annotation in annotations:
                        obj.add_annotation(
                            annotation.ann_id,
                            instance.classify(annotation.text),
                            annotation.columns_on(table, oid),
                        )
                elif isinstance(instance, SnippetInstance):
                    assert isinstance(obj, SnippetObject)
                    for annotation in annotations:
                        obj.add_annotation(
                            annotation.ann_id,
                            annotation.columns_on(table, oid),
                            instance.snippet_for(annotation.text),
                        )
                else:
                    assert isinstance(instance, ClusterInstance)
                    # Canonical form: rebuild the clustering from scratch
                    # in ann_id order (incremental removes are
                    # path-dependent; regeneration defines convergence).
                    clusterer = instance.new_clusterer()
                    for annotation in annotations:
                        clusterer.insert(annotation.ann_id, annotation.text)
                        obj.ann_targets[annotation.ann_id] = \
                            annotation.columns_on(table, oid)
                    self._rebuild_cluster_object(obj, clusterer)
                    self._clusterers[(table, oid, instance.name)] = clusterer
        if old and exists and ann_ids:
            # Preserve leftover objects of instances unlinked since the
            # row was written (sync semantics), scrubbed of annotations
            # that no longer exist.
            live = set(ann_ids)
            for name, obj in old.items():
                if name in linked:
                    continue
                doomed = obj.all_annotation_ids() - live
                if doomed:
                    obj.remove_annotations(doomed)
                objects[name] = obj
            # Keep the stored object order stable across regenerations:
            # previously-present instances stay in place, new ones append.
            ordered: dict[str, SummaryObject] = {}
            for name in old:
                if name in objects:
                    ordered[name] = objects.pop(name)
            ordered.update(objects)
            objects = ordered
        if not objects or all(
            not obj.all_annotation_ids() for obj in objects.values()
        ):
            if old is not None:
                for name, obj in old.items():
                    if isinstance(obj, ClassifierObject):
                        self._notify(table, name, "on_tuple_delete", oid,
                                     dict(obj.rep()))
                    self._clusterers.pop((table, oid, name), None)
                storage.delete(oid)
                self._notify(table, "*", "on_objects_delete", oid)
            return
        storage.put(oid, objects)
        self._notify(table, "*", "on_objects_write", oid, objects)
        for instance in instances:
            if not isinstance(instance, ClassifierInstance):
                continue
            obj = objects.get(instance.name)
            if not isinstance(obj, ClassifierObject):
                continue
            previous = old.get(instance.name) if old else None
            if isinstance(previous, ClassifierObject):
                self._notify(table, instance.name, "on_summary_update", oid,
                             dict(previous.rep()), dict(obj.rep()))
            else:
                self._notify(table, instance.name, "on_summary_insert", oid,
                             obj)

    def _apply_to_tuple(self, annotation: Annotation, table: str, oid: int) -> None:
        instances = self.instances_for(table)
        if not instances:
            return
        storage = self.storage_for(table)
        objects = storage.get(oid)
        created_row = objects is None
        if objects is None:
            objects = {}
        columns = annotation.columns_on(table, oid)
        updates: list[tuple[str, dict[str, int] | None, ClassifierObject]] = []
        for instance in instances:
            obj = objects.get(instance.name)
            fresh = obj is None
            if obj is None:
                obj = instance.new_object(oid)
                objects[instance.name] = obj
            if isinstance(instance, ClassifierInstance):
                assert isinstance(obj, ClassifierObject)
                old_counts = None if fresh else dict(obj.rep())
                label = instance.classify(annotation.text)
                obj.add_annotation(annotation.ann_id, label, columns)
                updates.append((instance.name, old_counts, obj))
            elif isinstance(instance, SnippetInstance):
                assert isinstance(obj, SnippetObject)
                obj.add_annotation(
                    annotation.ann_id, columns, instance.snippet_for(annotation.text)
                )
            else:
                assert isinstance(instance, ClusterInstance)
                clusterer = self._clusterer_for(table, oid, instance, objects)
                clusterer.insert(annotation.ann_id, annotation.text)
                self._rebuild_cluster_object(obj, clusterer)  # type: ignore[arg-type]
                obj.ann_targets[annotation.ann_id] = columns
        storage.put(oid, objects)
        self._notify(table, "*", "on_objects_write", oid, objects)
        for name, old_counts, obj in updates:
            if created_row or old_counts is None:
                self._notify(table, name, "on_summary_insert", oid, obj)
            else:
                self._notify(
                    table, name, "on_summary_update", oid, old_counts,
                    dict(obj.rep()),
                )

    def _remove_from_tuple(self, annotation: Annotation, table: str, oid: int) -> None:
        storage = self.storage_for(table)
        objects = storage.get(oid)
        if objects is None:
            return
        ann_id = annotation.ann_id
        for name, obj in objects.items():
            if isinstance(obj, ClassifierObject):
                if ann_id not in obj.all_annotation_ids():
                    continue
                old_counts = dict(obj.rep())
                obj.remove_annotations({ann_id})
                self._notify(
                    table, name, "on_summary_update", oid, old_counts,
                    dict(obj.rep()),
                )
            elif isinstance(obj, ClusterObject):
                key = (table, oid, name)
                clusterer = self._clusterers.get(key)
                if clusterer is not None and clusterer.cluster_of(ann_id):
                    clusterer.remove(ann_id)
                    self._rebuild_cluster_object(obj, clusterer)
                else:
                    obj.remove_annotations({ann_id})
                obj.ann_targets.pop(ann_id, None)
            else:
                obj.remove_annotations({ann_id})
        if all(not obj.all_annotation_ids() for obj in objects.values()):
            # The tuple's last annotation is gone: a row of all-empty
            # objects must not linger for caches/indexes to keep serving.
            # Drop it with the same event sequence as a tuple delete (the
            # classifier channel already saw the update to zero counts, so
            # on_tuple_delete's zero-count keys match what is indexed).
            for name, obj in objects.items():
                if isinstance(obj, ClassifierObject):
                    self._notify(table, name, "on_tuple_delete", oid,
                                 dict(obj.rep()))
                self._clusterers.pop((table, oid, name), None)
            storage.delete(oid)
            self._notify(table, "*", "on_objects_delete", oid)
            return
        storage.put(oid, objects)
        self._notify(table, "*", "on_objects_write", oid, objects)

    def _clusterer_for(
        self,
        table: str,
        oid: int,
        instance: ClusterInstance,
        objects: dict[str, SummaryObject],
    ) -> CluStream:
        key = (table, oid, instance.name)
        clusterer = self._clusterers.get(key)
        if clusterer is None:
            clusterer = instance.new_clusterer()
            existing = objects.get(instance.name)
            if isinstance(existing, ClusterObject) and existing.groups:
                # Rebuild in-memory state from the raw annotations (e.g.
                # after the engine restarts or the state was evicted).
                for group in existing.groups:
                    for member in sorted(group.members):
                        clusterer.insert(
                            member, self.annotations.get(member).text
                        )
            self._clusterers[key] = clusterer
        return clusterer

    @staticmethod
    def _rebuild_cluster_object(obj: ClusterObject, clusterer: CluStream) -> None:
        obj.groups = [
            ClusterGroup(rep_id, set(members),
                         {m: clusterer.cluster_of(m).excerpts[m] for m in members})
            for (rep_id, _), _, members in clusterer.groups()
        ]
