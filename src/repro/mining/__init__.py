"""Mining and summarization substrates.

InsightNotes integrates three families of summarization techniques (paper
§2.1 / §6): Naive Bayes classification [10], CluStream incremental
clustering [2], and LSA text summarization [18]. This package implements all
three from scratch, each with the incremental insert/remove hooks the
summary-maintenance layer needs.
"""

from repro.mining.text import (
    hashed_tf_vector,
    sentences,
    tokenize,
)
from repro.mining.naive_bayes import NaiveBayesClassifier
from repro.mining.clustream import CluStream, MicroCluster
from repro.mining.lsa import LsaSummarizer

__all__ = [
    "tokenize",
    "sentences",
    "hashed_tf_vector",
    "NaiveBayesClassifier",
    "CluStream",
    "MicroCluster",
    "LsaSummarizer",
]
