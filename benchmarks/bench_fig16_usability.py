"""Figure 16 — the InsightNotes vs. InsightNotes+ usability study (§6).

Paper: with the new summary-based operators the "+" group answers all
three queries in 40–54 s at 100% accuracy; the basic group needs minutes
of manual post-processing for Q1/Q2 and cannot feasibly answer Q3 at all
(45,000 reported tuples).
"""

import pytest

from repro.bench import FigureTable
from repro.study import simulate_usability_study
from repro.study.dataset import StudyConfig, build_study_database

CONFIG = StudyConfig(num_birds=100, scale=0.25, seed=7)


@pytest.mark.benchmark(group="fig16-usability")
def test_usability_study(benchmark, figure_writer):
    db = build_study_database(CONFIG)
    report = benchmark.pedantic(
        lambda: simulate_usability_study(db, config=CONFIG),
        rounds=1, iterations=1,
    )

    table = figure_writer.setdefault(
        "fig16_usability",
        FigureTable(
            "Figure 16 — usability study (InsightNotes vs. InsightNotes+)",
            unit="s",
        ),
    )
    for r in report.results:
        if r.feasible:
            table.add(r.group, r.query, r.total_s)
        else:
            table.note(f"{r.group} {r.query}: infeasible — {r.notes}")

    for q in ("Q1", "Q2"):
        gap = table.ratio("InsightNotes", "InsightNotes+", q)
        table.note(
            f"InsightNotes+ is {gap:.1f}x faster on {q}"
            "  [paper: minutes vs seconds]"
        )
    for q in ("Q1", "Q2", "Q3"):
        assert report.result("InsightNotes+", q).accuracy == 1.0
    assert not report.result("InsightNotes", "Q3").feasible
