"""The WAL writer.

One :class:`WALWriter` sits between the database's mutating statement
paths and a log device. It owns the LSN counter (byte offsets into the
logical log stream), frames records, and tracks the *flushed* LSN — the
boundary the buffer pool's log-before-data rule compares page LSNs
against: a dirty page whose ``page_lsn`` exceeds ``flushed_lsn`` must not
be written back until the log has been flushed past it.
"""

from __future__ import annotations

from repro.errors import WALError
from repro.obs.metrics import MetricsRegistry
from repro.wal.record import WALRecordType, encode_record


class WALWriter:
    """Appends framed records to a log device and tracks durability."""

    def __init__(self, device, metrics: MetricsRegistry | None = None):
        self.device = device
        self.metrics = metrics
        #: LSN the next record will be assigned (device append position).
        self._next_lsn = device.base_lsn + device.total_len
        #: LSN up to which the log is durable (device sync position).
        self._flushed_lsn = device.base_lsn + device.durable_len

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def flushed_lsn(self) -> int:
        return self._flushed_lsn

    def _inc(self, key: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(key, amount)

    def append(self, rtype: int, payload: dict, stmt_id: int = 0,
               txn_id: int = 0) -> int:
        """Frame and append one record; returns its LSN.

        The record is buffered, not durable — call :meth:`sync` (or rely
        on the statement-boundary sync) to force it to the device.
        ``txn_id`` stamps the record as part of an explicit transaction's
        commit group (0 = autocommit).
        """
        if rtype not in WALRecordType.ALL:
            raise WALError(f"unknown WAL record type {rtype}")
        lsn = self._next_lsn
        frame = encode_record(lsn, rtype, stmt_id, payload, txn_id=txn_id)
        self.device.append(frame)
        self._next_lsn = lsn + len(frame)
        self._inc("wal.records")
        self._inc(f"wal.records.{WALRecordType.NAMES[rtype]}")
        self._inc("wal.bytes", len(frame))
        return lsn

    def sync(self) -> None:
        """fsync the log: every appended record becomes durable."""
        self.device.sync()
        self._flushed_lsn = self._next_lsn
        self._inc("wal.syncs")

    def flush(self, upto_lsn: int | None = None) -> None:
        """Force the log durable at least through ``upto_lsn``.

        This is the buffer pool's log-before-data hook: called before
        writing back a dirty page whose ``page_lsn`` is beyond the
        flushed tail. Counted separately (``wal.forced_flushes``) so the
        observability layer can show how often data pressure forces log
        I/O ahead of the statement-boundary sync.
        """
        if upto_lsn is None:
            upto_lsn = self._next_lsn
        if upto_lsn <= self._flushed_lsn:
            return
        self.device.sync()
        self._flushed_lsn = self._next_lsn
        self._inc("wal.forced_flushes")

    def truncate(self, new_base: int) -> None:
        """Discard the log through ``new_base`` (checkpoint protocol).

        ``new_base`` must be at the current append position — checkpoints
        truncate the *whole* log after the image rename lands, so the new
        base is exactly ``next_lsn``.
        """
        if new_base != self._next_lsn:
            raise WALError(
                f"checkpoint truncation must land at next_lsn="
                f"{self._next_lsn}, not {new_base}"
            )
        self.device.truncate(new_base)
        self._flushed_lsn = new_base
        self._inc("wal.truncations")
