"""Expression evaluation over runtime tuples.

Summary expressions are evaluated by walking their call chain starting at
the tuple's ``$`` summary set; each link dispatches on the receiver type
(SummarySet / Classifier / Snippet / Cluster object) to the §3.1
manipulation functions. Keyword-search functions consult the snippets first
and fall back to the raw annotations through the
:class:`EvalContext` — the accuracy/performance tradeoff studied in [16].
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.query.ast import (
    UdfCall,
    AggCall,
    And,
    ColumnRef,
    Comparison,
    Expr,
    Literal,
    Not,
    ObjectFunc,
    Or,
    SummaryExpr,
)
from repro.query.tuples import QTuple
from repro.summaries.functions import SummarySet
from repro.summaries.objects import (
    ClassifierObject,
    ClusterObject,
    SnippetObject,
    SummaryObject,
)


@dataclass
class EvalContext:
    """Execution-wide services the evaluator may need.

    ``manager`` resolves raw annotation texts for keyword-search fallback;
    ``search_raw`` can be disabled to search snippets only (faster, possibly
    less complete — the [16] tradeoff).
    """

    manager: object | None = None  # SummaryManager, typed loosely to avoid cycles
    search_raw: bool = True
    #: registered black-box UDFs over summary sets (§3.2): name -> callable
    udfs: dict = field(default_factory=dict)
    #: memoized raw annotation texts, FIFO-bounded so keyword-fallback-heavy
    #: workloads can't grow the context without limit.
    raw_cache_max: int = 4096
    _raw_cache: dict[int, str] = field(default_factory=dict)

    def raw_texts(self, ann_ids: list[int]) -> list[str]:
        if self.manager is None:
            return []
        missing = [a for a in ann_ids if a not in self._raw_cache]
        if missing:
            for ann_id, text in zip(
                missing, self.manager.annotations.texts(missing)
            ):
                self._raw_cache[ann_id] = text
        out = [self._raw_cache[a] for a in ann_ids]
        while len(self._raw_cache) > self.raw_cache_max:
            del self._raw_cache[next(iter(self._raw_cache))]
        return out


def compile_like(pattern: str) -> "re.Pattern":
    """Compiled SQL LIKE matcher with ``%`` and ``_`` wildcards (also
    accepts ``*`` as a convenience alias for ``%``, matching the paper's
    "Swan*" example).

    DOTALL because SQL's % and _ match any character, including newlines —
    annotations are multi-line text.
    """
    regex = "".join(
        ".*" if ch in "%*" else "." if ch == "_" else re.escape(ch)
        for ch in pattern
    )
    return re.compile(regex, re.IGNORECASE | re.DOTALL)


def like_match(value: str, pattern: str) -> bool:
    """SQL LIKE; see :func:`compile_like` for the wildcard rules."""
    return compile_like(pattern).fullmatch(value) is not None


def evaluate(expr: Expr, row: QTuple, ctx: EvalContext | None = None) -> object:
    """Evaluate ``expr`` against one tuple. Comparison with NULL is False."""
    ctx = ctx or EvalContext()
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        name = f"{expr.alias}.{expr.column}" if expr.alias else expr.column
        return row.get(name)
    if isinstance(expr, SummaryExpr):
        return evaluate_summary_expr(expr, row, ctx)
    if isinstance(expr, Comparison):
        return _compare(expr, row, ctx)
    if isinstance(expr, And):
        return all(bool(evaluate(i, row, ctx)) for i in expr.items)
    if isinstance(expr, Or):
        return any(bool(evaluate(i, row, ctx)) for i in expr.items)
    if isinstance(expr, Not):
        return not bool(evaluate(expr.item, row, ctx))
    if isinstance(expr, UdfCall):
        fn = ctx.udfs.get(expr.name)
        if fn is None:
            raise QueryError(f"unknown UDF {expr.name!r}")
        return fn(*[evaluate(a, row, ctx) for a in expr.args])
    if isinstance(expr, AggCall):
        raise QueryError(
            f"aggregate {expr.func} outside GROUP BY evaluation"
        )
    raise QueryError(f"cannot evaluate expression {expr!r}")


def _compare(expr: Comparison, row: QTuple, ctx: EvalContext) -> bool:
    left = evaluate(expr.left, row, ctx)
    right = evaluate(expr.right, row, ctx)
    if left is None or right is None:
        return False
    if expr.op == "LIKE":
        return like_match(str(left), str(right))
    if expr.op == "=":
        return left == right
    if expr.op == "<>":
        return left != right
    try:
        if expr.op == "<":
            return left < right
        if expr.op == "<=":
            return left <= right
        if expr.op == ">":
            return left > right
        if expr.op == ">=":
            return left >= right
    except TypeError as exc:
        raise QueryError(f"cannot compare {left!r} {expr.op} {right!r}") from exc
    raise QueryError(f"unknown operator {expr.op!r}")


def evaluate_object_predicate(
    expr: Expr, obj: SummaryObject, ctx: EvalContext | None = None
) -> bool:
    """Evaluate a FILTER SUMMARIES predicate against one summary object.

    :class:`~repro.query.ast.ObjectFunc` leaves dispatch on ``obj``; the
    boolean/comparison structure is shared with row evaluation.
    """
    ctx = ctx or EvalContext()

    def ev(e: Expr) -> object:
        if isinstance(e, Literal):
            return e.value
        if isinstance(e, ObjectFunc):
            return _dispatch_object(obj, e.name, e.args, ctx)
        if isinstance(e, Comparison):
            left, right = ev(e.left), ev(e.right)
            if left is None or right is None:
                return False
            if e.op == "LIKE":
                return like_match(str(left), str(right))
            return {
                "=": left == right,
                "<>": left != right,
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }[e.op]
        if isinstance(e, And):
            return all(bool(ev(i)) for i in e.items)
        if isinstance(e, Or):
            return any(bool(ev(i)) for i in e.items)
        if isinstance(e, Not):
            return not bool(ev(e.item))
        raise QueryError(f"invalid FILTER SUMMARIES expression {e!r}")

    return bool(ev(expr))


def is_structural_predicate(expr: Expr) -> bool:
    """True when a FILTER SUMMARIES predicate touches only the InstanceID /
    SummaryType of the objects — the paper's *structural* predicates, which
    Rule 8 may push to both join sides."""
    structural_funcs = {"getSummaryType", "getSummaryName"}
    for node in expr.walk():
        if isinstance(node, ObjectFunc) and node.name not in structural_funcs:
            return False
    return True


def _rollup_value(
    obj: ClassifierObject, node: str, ctx: EvalContext
) -> int | None:
    """Resolve an inner hierarchy node by summing its subtree's leaves
    (multi-level summarization); None when the instance is flat or the
    node is unknown — the caller then raises the flat-label error."""
    if ctx.manager is None:
        return None
    from repro.summaries.hierarchy import HierarchicalClassifierInstance

    try:
        instance = ctx.manager.instance(obj.instance_name)
    except Exception:
        return None
    if isinstance(instance, HierarchicalClassifierInstance) \
            and node in instance.tree:
        return instance.resolve_value(obj, node)
    return None


# -- summary-expression dispatch ----------------------------------------------------


def evaluate_summary_expr(
    expr: SummaryExpr, row: QTuple, ctx: EvalContext
) -> object:
    receiver: object = row.summary_set(expr.alias)
    for call in expr.chain:
        if receiver is None:
            return None  # a missing summary object nullifies the chain
        receiver = _dispatch(receiver, call.name, call.args, ctx)
    return receiver


def _dispatch(receiver: object, name: str, args: tuple, ctx: EvalContext) -> object:
    if isinstance(receiver, SummarySet):
        return _dispatch_set(receiver, name, args)
    if isinstance(receiver, SummaryObject):
        return _dispatch_object(receiver, name, args, ctx)
    raise QueryError(f"cannot call {name}() on {type(receiver).__name__}")


def _dispatch_set(s: SummarySet, name: str, args: tuple) -> object:
    if name == "getSize":
        return s.get_size()
    if name == "getSummaryObject":
        if len(args) != 1:
            raise QueryError("getSummaryObject takes exactly one argument")
        return s.get_summary_object(args[0])
    raise QueryError(f"unknown summary-set function {name!r}")


def _dispatch_object(
    obj: SummaryObject, name: str, args: tuple, ctx: EvalContext
) -> object:
    # Functions common to all summary types (§3.1).
    if name == "getSummaryType":
        return obj.get_summary_type()
    if name == "getSummaryName":
        return obj.get_summary_name()
    if name == "getSize":
        return obj.get_size()

    if isinstance(obj, ClassifierObject):
        if name == "getLabelName":
            return obj.get_label_name(int(args[0]))
        if name == "getLabelValue":
            arg = args[0]
            if isinstance(arg, str) and arg not in obj.label_elements:
                rolled = _rollup_value(obj, arg, ctx)
                if rolled is not None:
                    return rolled
            return obj.get_label_value(arg)
    if isinstance(obj, SnippetObject):
        if name == "getSnippet":
            return obj.get_snippet(int(args[0]))
        if name in ("containsSingle", "containsUnion"):
            keywords = [str(a) for a in args]
            method = (
                obj.contains_single if name == "containsSingle"
                else obj.contains_union
            )
            if method(keywords):
                return True
            if ctx.search_raw and ctx.manager is not None:
                raws = ctx.raw_texts(sorted(obj.all_annotation_ids()))
                return method(keywords, raw_texts=raws)
            return False
    if isinstance(obj, ClusterObject):
        if name == "getGroupSize":
            return obj.get_group_size(int(args[0]))
        if name == "getRepresentative":
            return obj.get_representative(int(args[0]))
    raise QueryError(
        f"unknown function {name!r} for {obj.get_summary_type()} objects"
    )


# -- vectorized (batch-mode) predicate evaluation -----------------------------------
#
# A predicate mask is built column-at-a-time where the expression shape
# allows it (comparisons over data columns, LIKE against a constant
# pattern, two-link classifier summary chains) and row-at-a-time —
# plain :func:`evaluate` on a row view — everywhere else, so batch mode
# can never answer differently from tuple mode. AND evaluates its
# conjuncts left-to-right over the surviving row set, mirroring tuple
# mode's short-circuit; OR only evaluates later disjuncts on rows still
# undecided.


def batch_predicate_mask(expr: Expr, batch, ctx: EvalContext | None = None):
    """Boolean numpy mask of the rows of ``batch`` satisfying ``expr``."""
    import numpy as np

    ctx = ctx or EvalContext()
    active = np.ones(len(batch), dtype=bool)
    return _batch_mask(expr, batch, ctx, active)


def _batch_mask(expr, batch, ctx, active):
    import numpy as np

    if isinstance(expr, And):
        mask = active
        for item in expr.items:
            if not mask.any():
                return mask
            mask = _batch_mask(item, batch, ctx, mask)
        return mask
    if isinstance(expr, Or):
        result = np.zeros(len(active), dtype=bool)
        undecided = active.copy()
        for item in expr.items:
            if not undecided.any():
                break
            hit = _batch_mask(item, batch, ctx, undecided)
            result |= hit
            undecided &= ~hit
        return result
    if isinstance(expr, Not):
        return active & ~_batch_mask(expr.item, batch, ctx, active)
    if isinstance(expr, Comparison):
        return _batch_compare(expr, batch, ctx, active)
    return _rowwise_mask(expr, batch, ctx, active)


def _rowwise_mask(expr, batch, ctx, active):
    """Fallback: plain per-row evaluation on the active rows."""
    import numpy as np

    out = np.zeros(len(active), dtype=bool)
    for i in np.flatnonzero(active):
        i = int(i)
        out[i] = bool(evaluate(expr, batch.row(i), ctx))
    return out


def _batch_operand(expr, batch, ctx, active):
    """``("scalar", v)`` / ``("col", values)`` for a vectorizable operand,
    None when only whole-row evaluation can produce it."""
    import numpy as np

    if isinstance(expr, Literal):
        return ("scalar", expr.value)
    if isinstance(expr, ColumnRef):
        name = f"{expr.alias}.{expr.column}" if expr.alias else expr.column
        return ("col", batch.column_values(name))
    if isinstance(expr, SummaryExpr):
        values = batch.label_values(
            expr, ctx, [int(i) for i in np.flatnonzero(active)]
        )
        if values is None:
            return None
        return ("col", values)
    return None


_ORDER_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _batch_compare(expr, batch, ctx, active):
    import numpy as np

    left = _batch_operand(expr.left, batch, ctx, active)
    right = _batch_operand(expr.right, batch, ctx, active)
    if left is None or right is None:
        return _rowwise_mask(expr, batch, ctx, active)
    op = expr.op
    n = len(active)
    out = np.zeros(n, dtype=bool)

    def at(operand, i):
        kind, payload = operand
        return payload if kind == "scalar" else payload[i]

    if op == "LIKE":
        if right[0] == "scalar":
            if right[1] is None:
                return out
            matcher = compile_like(str(right[1])).fullmatch
            for i in np.flatnonzero(active):
                i = int(i)
                value = at(left, i)
                out[i] = value is not None and \
                    matcher(str(value)) is not None
        else:
            for i in np.flatnonzero(active):
                i = int(i)
                value, pattern = at(left, i), at(right, i)
                out[i] = value is not None and pattern is not None and \
                    like_match(str(value), str(pattern))
        return out

    # Numeric column <op> numeric constant: one numpy comparison when the
    # column is cleanly numeric (no Nones, no objects) — otherwise the
    # elementwise loop below reproduces _compare exactly.
    if (op in _ORDER_OPS or op in ("=", "<>")) and left[0] == "col" \
            and right[0] == "scalar" \
            and isinstance(right[1], (int, float)) \
            and not isinstance(right[1], bool):
        try:
            arr = np.asarray(left[1])
        except (ValueError, TypeError):
            arr = None
        if arr is not None and arr.dtype.kind in "iuf":
            if op == "=":
                cmp = arr == right[1]
            elif op == "<>":
                cmp = arr != right[1]
            else:
                cmp = _ORDER_OPS[op](arr, right[1])
            return active & cmp

    if op == "=":
        for i in np.flatnonzero(active):
            i = int(i)
            a, b = at(left, i), at(right, i)
            out[i] = a is not None and b is not None and a == b
        return out
    if op == "<>":
        for i in np.flatnonzero(active):
            i = int(i)
            a, b = at(left, i), at(right, i)
            out[i] = a is not None and b is not None and a != b
        return out
    fn = _ORDER_OPS.get(op)
    if fn is None:
        raise QueryError(f"unknown operator {op!r}")
    for i in np.flatnonzero(active):
        i = int(i)
        a, b = at(left, i), at(right, i)
        if a is None or b is None:
            continue
        try:
            out[i] = fn(a, b)
        except TypeError as exc:
            raise QueryError(f"cannot compare {a!r} {op} {b!r}") from exc
    return out
