"""Summary instances: configured summarization techniques bound to tables.

A summary instance customizes one of the three summary types for a domain
(§2.1): e.g. ``ClassBird1`` is a Classifier instance with labels
{Disease, Anatomy, Behavior, Other}; ``TextSummary1`` is a Snippet instance
summarizing annotations larger than 1,000 characters into 400-character
snippets. Each user relation can be linked to any number of instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SummaryError
from repro.mining.clustream import CluStream
from repro.mining.lsa import LsaSummarizer
from repro.mining.naive_bayes import NaiveBayesClassifier
from repro.summaries.objects import (
    ClassifierObject,
    ClusterObject,
    SnippetObject,
    SummaryObject,
    SummaryType,
)


@dataclass
class SummaryInstance:
    """Base class; use the concrete factories below."""

    name: str

    @property
    def summary_type(self) -> SummaryType:
        raise NotImplementedError

    def new_object(self, tuple_id: int) -> SummaryObject:
        """An empty summary object of this instance for one data tuple."""
        raise NotImplementedError


@dataclass
class ClassifierInstance(SummaryInstance):
    """Naive-Bayes-backed Classifier instance with a closed label set."""

    labels: list[str] = field(default_factory=list)
    classifier: NaiveBayesClassifier | None = None

    def __post_init__(self) -> None:
        if not self.labels:
            raise SummaryError(f"classifier instance {self.name!r} needs labels")
        if self.classifier is None:
            self.classifier = NaiveBayesClassifier(self.labels)

    @property
    def summary_type(self) -> SummaryType:
        return SummaryType.CLASSIFIER

    def train(self, examples: list[tuple[str, str]]) -> None:
        """Seed-train the backing Naive Bayes model."""
        assert self.classifier is not None
        self.classifier.train(examples)

    def classify(self, text: str) -> str:
        assert self.classifier is not None
        if not self.classifier.is_trained:
            return self.classifier.fallback_label
        return self.classifier.classify(text)

    def new_object(self, tuple_id: int) -> ClassifierObject:
        return ClassifierObject(
            instance_name=self.name, tuple_id=tuple_id, labels=list(self.labels)
        )


@dataclass
class SnippetInstance(SummaryInstance):
    """LSA-backed Snippet instance.

    Annotations longer than ``min_chars`` are summarized to at most
    ``max_chars`` characters (the paper's experiments use 1,000 → 400).
    """

    min_chars: int = 1000
    max_chars: int = 400
    summarizer: LsaSummarizer | None = None

    def __post_init__(self) -> None:
        if self.summarizer is None:
            self.summarizer = LsaSummarizer(max_chars=self.max_chars)

    @property
    def summary_type(self) -> SummaryType:
        return SummaryType.SNIPPET

    def snippet_for(self, text: str) -> str | None:
        """Snippet for ``text``, or None when it is below the threshold."""
        if len(text) <= self.min_chars:
            return None
        assert self.summarizer is not None
        return self.summarizer.summarize(text)

    def new_object(self, tuple_id: int) -> SnippetObject:
        return SnippetObject(instance_name=self.name, tuple_id=tuple_id)


@dataclass
class ClusterInstance(SummaryInstance):
    """CluStream-backed Cluster instance (per-tuple micro-clustering)."""

    dim: int = 64
    max_clusters: int = 8
    radius_factor: float = 2.0
    excerpt_chars: int = 120

    @property
    def summary_type(self) -> SummaryType:
        return SummaryType.CLUSTER

    def new_clusterer(self) -> CluStream:
        """A fresh per-tuple CluStream state."""
        return CluStream(
            dim=self.dim,
            max_clusters=self.max_clusters,
            radius_factor=self.radius_factor,
            excerpt_chars=self.excerpt_chars,
        )

    def new_object(self, tuple_id: int) -> ClusterObject:
        return ClusterObject(instance_name=self.name, tuple_id=tuple_id)
