"""Bounded, versioned cache of decoded summary sets (and derived artifacts).

Every summary-aware operator ends in the same hot path: find a tuple's
``R_SummaryStorage`` row through the OID index, read it, and JSON-decode the
full de-normalized summary set — even when the same OID is touched hundreds
of times per query or per propagation batch.  :class:`SummaryCache` memoizes
that work in front of :class:`~repro.summaries.storage.SummaryStorage`.

Design, in the order the invariants matter:

* **Keying.**  Entries are keyed ``(table, oid, kind)``; ``kind`` is
  ``"set"`` for the decoded ``{instance -> SummaryObject}`` mapping (a
  ``None`` value is a *negative* entry: the tuple has no storage row) and
  ``"texts"`` for the tuple's raw annotation texts (the §3.1 keyword-search
  fallback re-reads the same texts per keyword per query).

* **Epochs.**  Each table has a monotonically increasing epoch counter;
  every entry is stamped with the epoch current at store time and an entry
  whose stamp trails the table's epoch is dead on arrival at lookup.  Writes
  that name an OID invalidate precisely (``invalidate``); events whose blast
  radius is a whole table or the whole database — OID-index rebuilds,
  ``repair()``, WAL replay, image load — bump epochs
  (``bump_epoch``/``bump_all``), which is O(1) regardless of entry count.

* **Isolation.**  The cache owns private copies of everything it stores and
  hands out copies on every hit; callers may mutate what they get back
  (``project_to_columns`` and ``merge`` do) without poisoning the cache.

* **Bounds.**  Capacity is configured in bytes (``0`` disables the cache
  entirely); entries carry a size estimate, eviction is LRU, and an
  admission guard rejects any single entry larger than
  ``max_entry_fraction`` of the capacity so one oversized summary set
  cannot wipe the working set.

* **Durability.**  The cache is process state, not database state: pickling
  keeps the configuration but drops every entry, so a loaded image starts
  cold (and cannot resurrect entries from before a crash).

Counters (``cache.*``) are mirrored into the owning database's
:class:`~repro.obs.metrics.MetricsRegistry`, so ``EXPLAIN ANALYZE`` metric
deltas and :meth:`Database.metrics_snapshot` report them with no extra
wiring.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Any

from repro.obs.metrics import MetricsRegistry

#: Environment variable holding the default capacity for new databases.
CACHE_BYTES_ENV = "REPRO_CACHE_BYTES"

#: Fixed per-entry bookkeeping charge added to every size estimate, so a
#: flood of tiny (e.g. negative) entries still hits the byte bound.
ENTRY_OVERHEAD = 64

#: No single entry may exceed this fraction of the capacity.
MAX_ENTRY_FRACTION = 0.125


def default_cache_bytes() -> int:
    """Capacity for databases that don't pass one explicitly: the
    ``REPRO_CACHE_BYTES`` environment variable, else 0 (disabled)."""
    raw = os.environ.get(CACHE_BYTES_ENV, "").strip()
    if not raw:
        return 0
    try:
        return max(int(raw), 0)
    except ValueError:
        return 0


class SummaryCache:
    """LRU cache of decoded summary sets, versioned by per-table epochs."""

    def __init__(
        self,
        capacity_bytes: int = 0,
        metrics: MetricsRegistry | None = None,
        max_entry_fraction: float = MAX_ENTRY_FRACTION,
    ) -> None:
        self.capacity_bytes = max(int(capacity_bytes), 0)
        self.max_entry_fraction = max_entry_fraction
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: (table, oid, kind) -> (value, size_bytes, epoch); OrderedDict in
        #: LRU order (least-recent first).
        self._entries: "OrderedDict[tuple[str, int, str], tuple[Any, int, int]]" = (
            OrderedDict()
        )
        self._epochs: dict[str, int] = {}
        self.used_bytes = 0
        # One mutex over entries, epochs, occupancy, and the lifetime
        # counters: lookup's hit path mutates LRU order and an epoch bump
        # racing a store could otherwise admit an entry stamped with the
        # *pre*-bump epoch after the bump — a stale value served as fresh.
        # Reentrant because bump_all calls bump_epoch under it.
        self._mutex = threading.RLock()
        # Lifetime counters (survive MetricsRegistry.reset; the registry
        # mirror is what EXPLAIN ANALYZE diffs).
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0
        self.rejections = 0
        self.epoch_bumps = 0

    # -- configuration --------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.capacity_bytes > 0

    @property
    def max_entry_bytes(self) -> int:
        return int(self.capacity_bytes * self.max_entry_fraction)

    def __len__(self) -> int:
        return len(self._entries)

    def resize(self, capacity_bytes: int) -> None:
        """Change the capacity; shrinking evicts LRU entries to fit and
        resizing to 0 disables the cache (dropping everything)."""
        with self._mutex:
            self.capacity_bytes = max(int(capacity_bytes), 0)
            if self.capacity_bytes == 0:
                self.clear()
                return
            self._evict_to_fit()

    def clear(self) -> None:
        """Drop every entry (capacity and epochs are untouched)."""
        with self._mutex:
            self._entries.clear()
            self.used_bytes = 0
        self.metrics.inc("cache.clears")

    # -- epochs ---------------------------------------------------------------

    def epoch(self, table: str) -> int:
        return self._epochs.get(table, 0)

    def bump_epoch(self, table: str, reason: str = "write") -> None:
        """Coarse per-table invalidation: every existing entry of ``table``
        becomes stale in O(1); they are reaped lazily on lookup/eviction."""
        with self._mutex:
            self._epochs[table] = self._epochs.get(table, 0) + 1
            self.epoch_bumps += 1
        self.metrics.inc("cache.epoch_bumps")
        self.metrics.inc(f"cache.epoch_bumps.{reason}")

    def bump_all(self, reason: str) -> None:
        """Whole-database invalidation (recover / repair / load)."""
        with self._mutex:
            tables = set(self._epochs) | {key[0] for key in self._entries}
            for table in tables:
                self.bump_epoch(table, reason)
        if not tables:
            # Still leave a trace that the event happened.
            self.metrics.inc(f"cache.epoch_bumps.{reason}", 0)

    # -- lookup / store -------------------------------------------------------

    def lookup(self, table: str, oid: int, kind: str = "set"
               ) -> tuple[bool, Any]:
        """Return ``(hit, value)``.  The value is the cache's private copy —
        callers must copy before mutating (the storage/manager read paths
        do).  A stale entry (epoch behind the table's) counts as a miss and
        is dropped on the spot."""
        key = (table, oid, kind)
        with self._mutex:
            entry = self._entries.get(key)
            if entry is not None:
                value, size, epoch = entry
                if epoch == self.epoch(table):
                    self._entries.move_to_end(key)
                    self.hits += 1
                    self.metrics.inc("cache.hits")
                    return True, value
                del self._entries[key]
                self.used_bytes -= size
                self.invalidations += 1
                self.metrics.inc("cache.invalidations")
            self.misses += 1
        self.metrics.inc("cache.misses")
        return False, None

    def store(self, table: str, oid: int, value: Any, size_hint: int,
              kind: str = "set") -> bool:
        """Admit ``value`` (which the cache now owns) under the table's
        current epoch.  Returns False when the entry was rejected by the
        admission guard or the cache is disabled."""
        if not self.enabled:
            return False
        size = int(size_hint) + ENTRY_OVERHEAD
        if size > self.max_entry_bytes:
            with self._mutex:
                self.rejections += 1
            self.metrics.inc("cache.rejections")
            return False
        key = (table, oid, kind)
        with self._mutex:
            old = self._entries.pop(key, None)
            if old is not None:
                self.used_bytes -= old[1]
            self._entries[key] = (value, size, self.epoch(table))
            self.used_bytes += size
            self.stores += 1
            self.metrics.inc("cache.stores")
            self._evict_to_fit()
        return True

    def invalidate(self, table: str, oid: int) -> None:
        """Precise invalidation: drop every kind of entry for one tuple."""
        with self._mutex:
            for kind in ("set", "texts"):
                entry = self._entries.pop((table, oid, kind), None)
                if entry is not None:
                    self.used_bytes -= entry[1]
                    self.invalidations += 1
                    self.metrics.inc("cache.invalidations")

    def _evict_to_fit(self) -> None:
        # Caller holds self._mutex.
        while self.used_bytes > self.capacity_bytes and self._entries:
            _key, (_value, size, _epoch) = self._entries.popitem(last=False)
            self.used_bytes -= size
            self.evictions += 1
            self.metrics.inc("cache.evictions")

    # -- reporting ------------------------------------------------------------

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        """Lifetime counters + current occupancy (the ``\\cache`` view)."""
        with self._mutex:
            return {
                "capacity_bytes": self.capacity_bytes,
                "used_bytes": self.used_bytes,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate(),
                "stores": self.stores,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "rejections": self.rejections,
                "epoch_bumps": self.epoch_bumps,
            }

    # -- pickling -------------------------------------------------------------

    def __getstate__(self) -> dict:
        # Entries are process state: a loaded image starts cold, so replayed
        # or repaired history can never resurface through the cache.  The
        # mutex is process state too (unpicklable by construction).
        with self._mutex:
            state = self.__dict__.copy()
        state["_entries"] = OrderedDict()
        state["used_bytes"] = 0
        state["_epochs"] = {}
        del state["_mutex"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Caches pickled before the concurrency era carried entries but no
        # mutex; either way the restored cache starts cold with a fresh one.
        self.__dict__.setdefault("_entries", OrderedDict())
        self.__dict__.setdefault("_epochs", {})
        self.__dict__.setdefault("used_bytes", 0)
        self._mutex = threading.RLock()


class CacheInvalidator:
    """Per-table maintenance observer that turns every summary mutation
    event into a precise cache invalidation.

    Registered on the ``(table, "*")`` channel (which sees one
    ``on_objects_write``/``on_objects_delete`` per storage write) *and*
    implementing the classifier-channel :class:`SummaryObserver` protocol,
    so a cache entry cannot outlive the storage row it mirrors no matter
    which hook fires first.
    """

    def __init__(self, cache: SummaryCache, table: str) -> None:
        self.cache = cache
        self.table = table

    # consolidated per-storage-write events ("*" channel)
    def on_objects_write(self, oid: int, objects: dict) -> None:
        self.cache.invalidate(self.table, oid)

    def on_objects_delete(self, oid: int) -> None:
        self.cache.invalidate(self.table, oid)

    # classifier-channel events (SummaryObserver protocol)
    def on_summary_insert(self, oid: int, obj) -> None:
        self.cache.invalidate(self.table, oid)

    def on_summary_update(self, oid: int, old_counts, new_counts) -> None:
        self.cache.invalidate(self.table, oid)

    def on_tuple_delete(self, oid: int, counts) -> None:
        self.cache.invalidate(self.table, oid)
