"""EXPLAIN [ANALYZE] observability: the annotated plan tree, the
per-operator attribution invariant (exclusive counters sum exactly to the
run's totals), index-probe counters, and maintenance-event counters."""

import pytest

from repro import Column, Database, ValueType
from repro.core.database import QueryReport
from repro.errors import QueryError

SEEDS = [
    ("flu virus infection outbreak", "Disease"),
    ("survey checklist volunteer", "Other"),
]
DISEASE = "$.getSummaryObject('C').getLabelValue('Disease')"


def build(buffer_pages: int = 64) -> Database:
    db = Database(buffer_pages=buffer_pages)
    db.create_table("t", [
        Column("name", ValueType.TEXT), Column("blob", ValueType.TEXT),
    ])
    db.create_classifier_instance("C", ["Disease", "Other"], SEEDS)
    db.sql("Alter Table t Add Indexable C")
    for i in range(30):
        oid = db.insert("t", {"name": f"n{i:02d}", "blob": "x" * 400})
        for _ in range(i % 5):
            db.add_annotation(
                "flu virus infection outbreak " + "filler " * 20,
                table="t", oid=oid,
            )
    db.analyze("t")
    return db


class TestExplain:
    def test_plain_explain_plans_without_executing(self):
        db = build()
        io_before = db.disk.stats.snapshot()
        pages_before = db.pool.hits + db.pool.misses
        report = db.sql(f"Explain Select name From t r Where r.{DISEASE} >= 2")
        assert isinstance(report, QueryReport)
        assert report.analyzed is None
        assert report.execution == {}
        assert "-- logical --" not in ""  # guard against accidental run:
        # planning may touch catalog pages, but must not scan the heap
        assert db.disk.stats.delta(io_before).writes == 0
        text = str(report)
        assert "-- logical --" in text and "-- physical --" in text
        assert "-- analyze --" not in text

    def test_explain_rejects_non_select(self):
        db = build()
        with pytest.raises(Exception):
            db.sql("Explain Insert Into t (name, blob) Values ('x', 'y')")

    def test_explain_method_rejects_ddl(self):
        db = build()
        with pytest.raises(QueryError):
            db.explain("Create Table u (a int)")


class TestExplainAnalyze:
    def test_single_predicate_io_attribution_sums_to_run_totals(self):
        # The acceptance invariant: on a Figure-10-style single-predicate
        # summary query, the per-operator exclusive counters sum exactly to
        # the run's deltas (pool page accesses and disk reads/writes).
        db = build(buffer_pages=8)  # tiny pool so real disk reads happen
        db.pool.clear()  # cold cache: the first touches must hit disk
        query = f"Select name From t r Where r.{DISEASE} >= 2"
        io_before = db.disk.stats.snapshot()
        pages_before = db.pool.hits + db.pool.misses
        report = db.sql(f"Explain Analyze {query}")
        io = db.disk.stats.delta(io_before)
        pages = db.pool.hits + db.pool.misses - pages_before
        ops = report.execution["operators"]
        assert ops and all(op["next_calls"] > 0 for op in ops)
        assert sum(op["self_pages"] for op in ops) == pages
        assert sum(op["self_reads"] for op in ops) == io.reads
        assert sum(op["self_writes"] for op in ops) == io.writes
        assert io.reads > 0  # the tiny pool forced actual disk traffic
        # inclusive time of the root bounds every child's
        assert all(op["self_time_s"] >= 0 for op in ops)

    def test_analyze_results_match_plain_execution(self):
        db = build()
        query = f"Select name From t r Where r.{DISEASE} >= 2 Order By name"
        expected = db.sql(query).column("name")
        report = db.sql(f"Explain Analyze {query}")
        assert report.result.column("name") == expected
        assert report.execution["rows"] == len(expected)
        root = report.execution["operators"][0]
        assert root["rows"] == len(expected)

    def test_analyze_renders_annotated_tree(self):
        db = build()
        report = db.sql(f"Explain Analyze Select name From t r Where r.{DISEASE} >= 2")
        text = str(report)
        assert "-- analyze --" in text
        assert "rows=" in report.analyzed and "pages=" in report.analyzed
        # the annotated tree mirrors the physical plan's operators
        physical_ops = [
            line.strip().split("(")[0]
            for line in report.physical.splitlines()
        ]
        for op in physical_ops:
            assert op in report.analyzed

    def test_summary_join_attribution(self):
        db = build(buffer_pages=16)
        db.create_table("syn", [
            Column("bird", ValueType.TEXT), Column("alias", ValueType.TEXT),
        ])
        db.create_index("syn", "bird")
        for i in range(30):
            db.insert("syn", {"bird": f"n{i:02d}", "alias": f"a{i}"})
        db.analyze("syn")
        query = (
            f"Select r.name, s.alias From t r, syn s "
            f"Where r.name = s.bird And r.{DISEASE} >= 2"
        )
        io_before = db.disk.stats.snapshot()
        pages_before = db.pool.hits + db.pool.misses
        report = db.sql(f"Explain Analyze {query}")
        io = db.disk.stats.delta(io_before)
        pages = db.pool.hits + db.pool.misses - pages_before
        ops = report.execution["operators"]
        assert any("Join" in op["label"] for op in ops)
        assert sum(op["self_pages"] for op in ops) == pages
        assert sum(op["self_reads"] for op in ops) == io.reads
        assert report.execution["rows"] == len(report.result)

    def test_profiler_detaches_after_run(self):
        # A profiled run must not leave instrumentation behind: the next
        # plain execution runs unwrapped (no stale attribution).
        db = build()
        query = f"Select name From t r Where r.{DISEASE} >= 2"
        db.sql(f"Explain Analyze {query}")
        result = db.sql(query)
        assert "plan_analyzed" not in result.stats


class TestCounters:
    def test_summary_index_probe_counter(self):
        db = build()
        query = f"Select name From t r Where r.{DISEASE} >= 2"
        db.options.force_access = "index"
        try:
            before = db.metrics_snapshot()
            db.sql(query)
            delta = db.metrics_snapshot()
        finally:
            db.options.force_access = None
        probes = delta["index.summary.t.C.probes"] - before[
            "index.summary.t.C.probes"
        ]
        assert probes >= 1

    def test_maintenance_event_counters(self):
        db = build()
        before = db.metrics_snapshot()
        oid = db.insert("t", {"name": "late", "blob": "y"})
        db.add_annotation("flu virus infection", table="t", oid=oid)
        db.add_annotation("flu virus outbreak", table="t", oid=oid)
        after = db.metrics_snapshot()
        assert after["maint.annotation_add"] - before.get(
            "maint.annotation_add", 0
        ) == 2
        assert after["maint.on_summary_insert"] > before.get(
            "maint.on_summary_insert", 0
        )
        assert after["maint.on_summary_update"] > before.get(
            "maint.on_summary_update", 0
        )

    def test_reset_metrics_zeroes_everything(self):
        db = build()
        db.sql(f"Select name From t r Where r.{DISEASE} >= 2")
        db.reset_metrics()
        snap = db.metrics_snapshot()
        assert snap["pool.pages"] == 0
        assert snap["disk.reads"] == 0
        assert snap["index.summary.t.C.probes"] == 0

    def test_explain_analyze_reports_metric_delta(self):
        db = build()
        db.options.force_access = "index"
        try:
            report = db.sql(
                f"Explain Analyze Select name From t r Where r.{DISEASE} >= 2"
            )
        finally:
            db.options.force_access = None
        assert report.execution["metrics"].get(
            "index.summary.t.C.probes", 0
        ) >= 1
