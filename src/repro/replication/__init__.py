"""WAL-streaming replication: hot standbys over the redo log.

The primary serves its WAL as a byte stream through two ops on the
existing JSON protocol (:mod:`repro.replication.primary`); a replica
bootstraps from a snapshot image and applies the stream through the
recovery redo interpreter (:mod:`repro.replication.applier`), re-serving
it read-only (:mod:`repro.replication.replica`). The link between them
(:mod:`repro.replication.link`) polls, resumes from the last-applied LSN
after any failure, and re-bootstraps on divergence.
"""

from repro.replication.applier import ApplyResult, WALApplier
from repro.replication.link import ReplicationLink
from repro.replication.primary import ReplicationEndpoint
from repro.replication.replica import ReplicaServer

__all__ = [
    "ApplyResult",
    "WALApplier",
    "ReplicationLink",
    "ReplicationEndpoint",
    "ReplicaServer",
]
