"""Fuzz queries under injected transient read faults.

The fail-safe property the acceptance criteria demand: a query running
while the disk throws scheduled transient errors must either return exactly
the fault-free result or raise a typed :class:`~repro.errors.StorageError`
— it may never return a silently partial or corrupted result set.

Hypothesis drives both the query shape (reusing test_plan_fuzz's predicate
space) and the fault schedule (first faulted read + recurrence period).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.errors import StorageError  # noqa: E402
from repro.faults import (  # noqa: E402
    FaultPlan,
    install_faults,
    installed_faults,
    remove_faults,
)
from repro.workload.generator import WorkloadConfig, build_database  # noqa: E402

LABELS = ["Disease", "Anatomy", "Behavior", "Other"]
OPS = ["=", "<", "<=", ">", ">="]
EXPR = "$.getSummaryObject('ClassBird1').getLabelValue"


@pytest.fixture(scope="module")
def db():
    return build_database(WorkloadConfig(
        num_birds=30, annotations_per_tuple=20, indexes="both",
        cell_fraction=0.0, seed=6,
    ))


predicates = st.lists(
    st.tuples(
        st.sampled_from(LABELS),
        st.sampled_from(OPS),
        st.integers(0, 15),
    ),
    min_size=1,
    max_size=2,
)


def build_query(preds):
    where = " And ".join(
        f"r.{EXPR}('{label}') {op} {constant}"
        for label, op, constant in preds
    )
    return f"Select common_name From birds r Where {where}"


def run(db, sql):
    return sorted(t.get("common_name") for t in db.sql(sql).tuples)


class TestFuzzUnderFault:
    @given(
        preds=predicates,
        first=st.integers(min_value=0, max_value=40),
        period=st.one_of(st.none(), st.integers(min_value=1, max_value=13)),
        scheme=st.sampled_from(["none", "summary_btree", "baseline"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_transient_reads_never_yield_partial_results(
        self, db, preds, first, period, scheme
    ):
        sql = build_query(preds)
        db.options.index_scheme = scheme
        try:
            reference = run(db, sql)
            faulty = install_faults(
                db, FaultPlan(seed=first).transient_read(at=first, period=period)
            )
            try:
                db.pool.clear()  # cold cache: the query must actually read
                try:
                    got = run(db, sql)
                except StorageError:
                    got = None  # typed failure is an acceptable outcome
            finally:
                remove_faults(db)
            if got is not None:
                assert got == reference, sql
        finally:
            db.options.index_scheme = "summary_btree"
        # The faults were transient: the database is fully usable after.
        assert run(db, sql) == reference

    @given(first=st.integers(min_value=0, max_value=60))
    @settings(max_examples=15, deadline=None)
    def test_fail_stop_mid_query_is_typed(self, db, first):
        sql = build_query([("Disease", ">", 0)])
        reference = run(db, sql)
        faulty = install_faults(db, FaultPlan().fail_read(at=first))
        try:
            db.pool.clear()
            try:
                got = run(db, sql)
                # With a large `first` the query may finish before the
                # fault's read index is ever reached.
                assert got == reference
            except StorageError:
                pass  # typed, never garbage
        finally:
            remove_faults(db)
        assert run(db, sql) == reference


class TestTransparentRecovery:
    """With the resilience layer in place, the fail-safe property has a
    stronger sibling: a transient-only schedule whose firings each leave a
    clean retry slot (``period`` None or >= 2 — a retry advances the read
    index by one, which such schedules never fault twice in a row) must
    now produce *exactly* the fault-free result, transparently, with every
    injection matched by a counted, recovered retry."""

    @given(
        preds=predicates,
        first=st.integers(min_value=0, max_value=40),
        period=st.one_of(st.none(), st.integers(min_value=2, max_value=13)),
    )
    @settings(max_examples=25, deadline=None)
    def test_transient_within_budget_recovers_transparently(
        self, db, preds, first, period
    ):
        db.guard.policy.base_delay = 0  # immediate retries: no test sleeps
        sql = build_query(preds)
        reference = run(db, sql)
        before = db.metrics.snapshot()
        with installed_faults(
            db, FaultPlan(seed=first).transient_read(at=first, period=period)
        ):
            db.pool.clear()  # cold cache: the query must actually read
            got = run(db, sql)  # no StorageError escape hatch anymore
        delta = db.metrics.delta(db.metrics.snapshot(), before)
        assert got == reference, sql
        injected = delta.get("faults.injected", 0)
        assert delta.get("resilience.retries", 0) == injected
        assert delta.get("resilience.recovered", 0) == injected
        assert delta.get("resilience.failures", 0) == 0
