"""Concurrency test battery: the proof obligations of ISSUE 7.

Three layers, cheapest first:

* **Hypothesis stateful machine** — several persistent sessions over one
  engine, driven through randomized BEGIN/DML/COMMIT/ABORT interleavings
  on a single thread, against a dict model that encodes the documented
  semantics exactly: buffered redo (no read-your-writes), strict 2PL at
  table granularity with timeout-as-deadlock-victim, monotonic OID
  pre-assignment.  Every statement's return value and every lock-table
  entry is checked against the model after every step.

* **Threaded serializability stress** — N worker threads of real
  transactions over one WAL-attached database.  The serialization order
  is read back from the WAL (commit groups land contiguously under the
  commit mutex while the committing transaction still holds its table
  locks, so log order *is* the serial order); the oracle replays each
  committed transaction's logical ops in that order on a dict model and
  must land exactly on the engine's final state.  Recorded per-statement
  row counts are replayed too — a lost update or phantom write shows up
  as a count mismatch at the exact transaction that observed it.

* **Transaction crash matrix** — the workload of explicit transactions
  is run against a WAL device that fail-stops at *every* append index
  and *every* sync index in turn; recovery from the surviving durable
  bytes must land on exactly the acked-commit prefix (the crashing
  commit may round up to durable when the fault hit at-or-after its
  commit sync — never a torn or partial transaction).

Example counts honour the conftest Hypothesis profiles; the slow-CI leg
raises them via ``HYPOTHESIS_PROFILE=ci-slow``.
"""

from __future__ import annotations

import threading

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import strategies as st  # noqa: E402
from hypothesis.stateful import (  # noqa: E402
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.catalog.schema import Column  # noqa: E402
from repro.core.database import Database  # noqa: E402
from repro.errors import (  # noqa: E402
    InjectedFaultError,
    LockTimeoutError,
    ReproError,
    TransactionError,
)
from repro.faults import FaultPlan  # noqa: E402
from repro.storage.record import ValueType  # noqa: E402
from repro.txn.locks import ANNOTATION_RESOURCE  # noqa: E402
from repro.wal.device import MemoryWALDevice  # noqa: E402
from repro.wal.record import WALRecordType, scan_records  # noqa: E402

NUM_SESSIONS = 3


def fresh_db(device=None, **kwargs) -> Database:
    db = Database(buffer_pages=32, **kwargs)
    if device is not None:
        db.attach_wal(device)  # before DDL so recovery can rebuild 't'
    db.create_table("t", [Column("name", ValueType.TEXT),
                          Column("v", ValueType.INT)])
    return db


def table_rows(db: Database) -> dict[int, tuple]:
    if not db.catalog.has_table("t"):
        return {}  # a crash can land before the logged CREATE TABLE
    return {oid: tuple(values)
            for oid, values in db.catalog.table("t").scan()}


# ---------------------------------------------------------------------------
# Layer 1: Hypothesis stateful machine (single-threaded interleavings)
# ---------------------------------------------------------------------------


class ConcurrentTxnMachine(RuleBasedStateMachine):
    """Dict-model oracle for multi-session transaction semantics."""

    def __init__(self):
        super().__init__()
        self.db = fresh_db()
        # Sub-second deadlock detection keeps conflicting steps cheap.
        self.db.lock_manager.timeout = 0.05
        self.sessions = [self.db.session() for _ in range(NUM_SESSIONS)]
        # Committed state: oid -> (name, v); OIDs are a monotone counter.
        self.rows: dict[int, tuple[str, int]] = {}
        self.next_oid = 1
        # Per-session transaction state (None = autocommit).
        self.open = [False] * NUM_SESSIONS
        #: buffered effects, applied to self.rows at COMMIT:
        #: ("ins", oid, row) | ("del", oid) | ("upd", oid, row)
        self.pending: list[list[tuple]] = [[] for _ in range(NUM_SESSIONS)]
        self.pending_inserts = [0] * NUM_SESSIONS
        self.pending_deleted: list[set[int]] = [set()
                                                for _ in range(NUM_SESSIONS)]
        #: model lock table: per session, resource -> "S" | "X".
        self.locks: list[dict[str, str]] = [{} for _ in range(NUM_SESSIONS)]
        self.counter = 0

    # -- model helpers -------------------------------------------------------

    def _conflicts(self, k: int, resource: str, exclusive: bool) -> bool:
        for j in range(NUM_SESSIONS):
            if j == k:
                continue
            mode = self.locks[j].get(resource)
            if mode is None:
                continue
            if exclusive or mode == "X":
                return True
        return False

    def _acquire(self, k: int, resources: list[str], exclusive: bool) -> bool:
        """Model a statement's lock acquisition; returns False when the
        real engine must raise LockTimeoutError."""
        if any(self._conflicts(k, r, exclusive) for r in resources):
            return False
        if self.open[k]:
            mode = "X" if exclusive else "S"
            for r in resources:
                if self.locks[k].get(r) != "X":
                    self.locks[k][r] = mode
        return True

    def _victim(self, k: int) -> None:
        """Timeout: the session's transaction dies and its locks drop."""
        if self.open[k]:
            self.open[k] = False
            self.pending[k] = []
            self.pending_inserts[k] = 0
            self.pending_deleted[k] = set()
        self.locks[k] = {}

    def _matching(self, k: int, threshold: int) -> list[int]:
        """OIDs a predicate ``v < threshold`` sees: committed state minus
        the session's own buffered deletes (never its buffered inserts)."""
        return [oid for oid, (_n, v) in sorted(self.rows.items())
                if v < threshold and oid not in self.pending_deleted[k]]

    # -- rules ---------------------------------------------------------------

    sess = st.integers(min_value=0, max_value=NUM_SESSIONS - 1)

    @rule(k=sess)
    def begin(self, k):
        if self.open[k]:
            with pytest.raises(TransactionError):
                self.sessions[k].execute("BEGIN")
        else:
            self.sessions[k].execute("BEGIN")
            self.open[k] = True

    @rule(k=sess, v=st.integers(min_value=0, max_value=9))
    def insert(self, k, v):
        self.counter += 1
        name = f"s{k}-{self.counter}"
        stmt = f"Insert Into t Values ('{name}', {v})"
        if not self._acquire(k, ["t"], exclusive=True):
            with pytest.raises(LockTimeoutError):
                self.sessions[k].execute(stmt)
            self._victim(k)
            return
        self.sessions[k].execute(stmt)
        if self.open[k]:
            oid = self.next_oid + self.pending_inserts[k]
            self.pending_inserts[k] += 1
            self.pending[k].append(("ins", oid, (name, v)))
        else:
            self.rows[self.next_oid] = (name, v)
            self.next_oid += 1

    @rule(k=sess, threshold=st.integers(min_value=0, max_value=10))
    def delete(self, k, threshold):
        stmt = f"Delete From t r Where r.v < {threshold}"
        if not self._acquire(k, [ANNOTATION_RESOURCE, "t"], exclusive=True):
            with pytest.raises(LockTimeoutError):
                self.sessions[k].execute(stmt)
            self._victim(k)
            return
        count = self.sessions[k].execute(stmt)
        victims = self._matching(k, threshold)
        assert count == len(victims)
        if self.open[k]:
            for oid in victims:
                self.pending[k].append(("del", oid))
                self.pending_deleted[k].add(oid)
        else:
            for oid in victims:
                del self.rows[oid]

    @rule(k=sess, threshold=st.integers(min_value=0, max_value=10),
          v=st.integers(min_value=0, max_value=9))
    def update(self, k, threshold, v):
        stmt = f"Update t r Set v = {v} Where r.v < {threshold}"
        if not self._acquire(k, ["t"], exclusive=True):
            with pytest.raises(LockTimeoutError):
                self.sessions[k].execute(stmt)
            self._victim(k)
            return
        count = self.sessions[k].execute(stmt)
        targets = self._matching(k, threshold)
        assert count == len(targets)
        for oid in targets:
            row = (self.rows[oid][0], v)
            if self.open[k]:
                self.pending[k].append(("upd", oid, row))
            else:
                self.rows[oid] = row

    @rule(k=sess)
    def read(self, k):
        stmt = "Select name, v From t"
        if not self._acquire(k, ["t"], exclusive=False):
            with pytest.raises(LockTimeoutError):
                self.sessions[k].execute(stmt)
            self._victim(k)
            return
        result = self.sessions[k].execute(stmt)
        got = sorted(tuple(t.values) for t in result.tuples)
        # No read-your-writes: every session sees committed state only.
        assert got == sorted(self.rows.values())

    @rule(k=sess)
    def commit(self, k):
        if not self.open[k]:
            with pytest.raises(TransactionError):
                self.sessions[k].execute("COMMIT")
            return
        self.sessions[k].execute("COMMIT")
        for effect in self.pending[k]:
            if effect[0] == "ins":
                _tag, oid, row = effect
                self.rows[oid] = row
                self.next_oid = max(self.next_oid, oid + 1)
            elif effect[0] == "del":
                del self.rows[effect[1]]
            else:
                self.rows[effect[1]] = effect[2]
        self.open[k] = False
        self.pending[k] = []
        self.pending_inserts[k] = 0
        self.pending_deleted[k] = set()
        self.locks[k] = {}

    @rule(k=sess)
    def abort(self, k):
        if not self.open[k]:
            with pytest.raises(TransactionError):
                self.sessions[k].execute("ABORT")
            return
        self.sessions[k].execute("ABORT")
        self.open[k] = False
        self.pending[k] = []
        self.pending_inserts[k] = 0
        self.pending_deleted[k] = set()
        self.locks[k] = {}

    # -- invariants ----------------------------------------------------------

    @invariant()
    def committed_state_matches_model(self):
        assert {oid: tuple(row) for oid, row in table_rows(self.db).items()} \
            == {oid: tuple(row) for oid, row in self.rows.items()}

    @invariant()
    def lock_table_matches_model(self):
        for k, session in enumerate(self.sessions):
            held = self.db.lock_manager.held_by(session)
            assert held == set(self.locks[k]), (
                f"session {k}: engine holds {held}, model {set(self.locks[k])}"
            )

    @invariant()
    def no_leaked_transactions(self):
        assert len(self.db.txn_manager.active) == sum(self.open)

    def teardown(self):
        for session in self.sessions:
            session.close()


TestConcurrentTxnMachine = ConcurrentTxnMachine.TestCase


# ---------------------------------------------------------------------------
# Layer 2: threaded serializability stress (real parallelism)
# ---------------------------------------------------------------------------


def _committed_order_from_wal(device) -> list[int]:
    """Transaction ids in serialization order: the order their commit
    groups landed in the log."""
    records = scan_records(device.durable(), base_lsn=device.base_lsn).records
    return [r.txn_id for r in records if r.type == WALRecordType.TXN_COMMIT]


class _Model:
    """Dict replay of one transaction with buffered-redo semantics."""

    def __init__(self):
        self.rows: dict[int, tuple[str, int]] = {}
        self.next_oid = 1

    def apply_txn(self, ops: list[tuple]) -> list[int]:
        """Apply one committed transaction's logical ops; returns the
        per-op row counts the live statements must have reported."""
        counts = []
        inserts = 0
        deleted: set[int] = set()
        effects: list[tuple] = []
        for op in ops:
            if op[0] == "insert":
                _tag, name, v = op
                effects.append(("ins", self.next_oid + inserts, (name, v)))
                inserts += 1
                counts.append(1)
            elif op[0] == "delete_lt":
                victims = [oid for oid, (_n, v) in sorted(self.rows.items())
                           if v < op[1] and oid not in deleted]
                deleted.update(victims)
                effects.extend(("del", oid) for oid in victims)
                counts.append(len(victims))
            elif op[0] == "update_lt":
                _tag, threshold, v = op
                targets = [oid for oid, (_n, val) in sorted(self.rows.items())
                           if val < threshold and oid not in deleted]
                effects.extend(
                    ("upd", oid, (self.rows[oid][0], v)) for oid in targets
                )
                counts.append(len(targets))
        for effect in effects:
            if effect[0] == "ins":
                self.rows[effect[1]] = effect[2]
                self.next_oid = max(self.next_oid, effect[1] + 1)
            elif effect[0] == "del":
                self.rows.pop(effect[1], None)
            else:
                self.rows[effect[1]] = effect[2]
        return counts


class TestThreadedSerializability:
    THREADS = 4
    TXNS_PER_THREAD = 12

    def _worker(self, db, worker_id, log, failures):
        """Run a deterministic-per-thread mix of transactions; record
        (txn_id, logical ops, returned counts, outcome) for the oracle."""
        session = db.session()
        try:
            for i in range(self.TXNS_PER_THREAD):
                session.execute("BEGIN")
                txn_id = session.txn.txn_id
                ops: list[tuple] = []
                counts: list[int] = []
                try:
                    name = f"w{worker_id}-{i}"
                    v = (worker_id + i) % 8
                    session.execute(f"Insert Into t Values ('{name}', {v})")
                    ops.append(("insert", name, v))
                    counts.append(1)
                    if i % 3 == 1:
                        threshold = (worker_id * 2 + i) % 5
                        counts.append(session.execute(
                            f"Delete From t r Where r.v < {threshold}"
                        ))
                        ops.append(("delete_lt", threshold))
                    elif i % 3 == 2:
                        threshold = (worker_id + i) % 6
                        newv = 7
                        counts.append(session.execute(
                            f"Update t r Set v = {newv} "
                            f"Where r.v < {threshold}"
                        ))
                        ops.append(("update_lt", threshold, newv))
                    if i % 5 == 4:
                        session.execute("ABORT")
                        log.append((txn_id, ops, counts, "aborted"))
                    else:
                        session.execute("COMMIT")
                        log.append((txn_id, ops, counts, "committed"))
                except LockTimeoutError:
                    # Deadlock victim: the session auto-aborted the txn.
                    log.append((txn_id, ops, counts, "victim"))
        except Exception as exc:  # pragma: no cover - failure reporting
            failures.append((worker_id, repr(exc)))
        finally:
            session.close()

    def test_wal_order_replay_matches_engine(self):
        device = MemoryWALDevice()
        db = fresh_db(device)
        db.lock_manager.timeout = 0.5
        log: list[tuple] = []
        failures: list[tuple] = []
        threads = [
            threading.Thread(
                target=self._worker, args=(db, w, log, failures)
            )
            for w in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
        assert failures == []
        db.wal.flush()

        by_txn = {txn_id: (ops, counts, outcome)
                  for txn_id, ops, counts, outcome in log}
        order = _committed_order_from_wal(device)
        committed = {txn_id for txn_id, (_o, _c, out) in by_txn.items()
                     if out == "committed"}
        # The durable commit groups are exactly the acked commits.
        assert set(order) == committed
        assert len(order) == len(committed)

        # Replay the committed transactions in log order; both the final
        # state and every recorded statement count must match.
        model = _Model()
        for txn_id in order:
            ops, counts, _outcome = by_txn[txn_id]
            assert model.apply_txn(ops) == counts, (
                f"txn {txn_id} observed different row counts than the "
                "serial replay — lost update or phantom"
            )
        assert table_rows(db) == model.rows

        # And the whole thing survives a crash: recovery over the durable
        # log lands on the same committed state.
        survivor = MemoryWALDevice.from_durable(
            device.durable(), base_lsn=device.base_lsn
        )
        recovered, report = Database.recover(None, survivor)
        assert table_rows(recovered) == model.rows
        assert report.committed_txns == len(order)

    def test_concurrent_readers_share_the_lock(self):
        db = fresh_db()
        for i in range(50):
            db.insert("t", [f"r{i}", i])
        barrier = threading.Barrier(4)
        errors: list[str] = []

        def reader():
            session = db.session()
            try:
                barrier.wait(10)
                for _ in range(20):
                    result = session.execute("Select name, v From t")
                    if len(result) != 50:
                        errors.append(f"saw {len(result)} rows")
            except Exception as exc:
                errors.append(repr(exc))
            finally:
                session.close()

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert errors == []
        assert db.metrics.get("lock.timeouts") == 0


# ---------------------------------------------------------------------------
# Layer 3: transaction crash matrix
# ---------------------------------------------------------------------------


def txn_script() -> list[list[str]]:
    """Deterministic workload units: each inner list is one explicit
    transaction (an ``["<stmt>"]`` singleton models autocommit)."""
    units: list[list[str]] = []
    for i in range(4):
        units.append([
            f"Insert Into t Values ('a{i}', {i})",
            f"Insert Into t Values ('b{i}', {i + 10})",
        ])
        units.append([f"Insert Into t Values ('auto{i}', {i})"])
        if i % 2 == 1:
            units.append([
                f"Delete From t r Where r.v < {i}",
                f"Update t r Set v = 99 Where r.v > 9",
            ])
    return units


def run_units(db: Database) -> None:
    session = db.session(locking=False)
    for unit in txn_script():
        if len(unit) == 1:
            session.execute(unit[0])
        else:
            session.execute("BEGIN")
            for stmt in unit:
                session.execute(stmt)
            session.execute("COMMIT")
    session.close()


def crash_units(plan) -> tuple:
    """Run the unit script against a faulted device until the injected
    crash; returns (device, acked-unit-count)."""
    device = MemoryWALDevice(plan=plan)
    acked = 0
    try:
        db = fresh_db(device)  # the logged DDL can crash too
        session = db.session(locking=False)
        for unit in txn_script():
            if len(unit) == 1:
                session.execute(unit[0])
            else:
                session.execute("BEGIN")
                for stmt in unit:
                    session.execute(stmt)
                session.execute("COMMIT")
            acked += 1
    except (InjectedFaultError, ReproError):
        pass
    return device, acked


class TestTxnCrashMatrix:
    @classmethod
    def setup_class(cls):
        # Oracle: logical state after each acked unit.
        db = fresh_db()
        session = db.session(locking=False)
        cls.oracle = [tuple(sorted(table_rows(db).items()))]
        for unit in txn_script():
            if len(unit) == 1:
                session.execute(unit[0])
            else:
                session.execute("BEGIN")
                for stmt in unit:
                    session.execute(stmt)
                session.execute("COMMIT")
            cls.oracle.append(tuple(sorted(table_rows(db).items())))
        session.close()
        # Probe: count device ops over a no-fault WAL run.
        probe = MemoryWALDevice()
        probe_db = fresh_db(probe)
        run_units(probe_db)
        cls.total_appends = probe.append_ops
        cls.total_syncs = probe.sync_ops
        assert cls.total_appends > len(txn_script())
        assert cls.total_syncs >= len(txn_script())

    def check(self, device, acked):
        survivor = MemoryWALDevice.from_durable(
            device.durable(), base_lsn=device.base_lsn
        )
        recovered, report = Database.recover(None, survivor)
        state = tuple(sorted(table_rows(recovered).items()))
        # Exactly the acked prefix; the crashing unit may round up to
        # durable when the fault hit at-or-after its commit sync. Either
        # way no partial transaction: the discarded groups carried no
        # durable TXN_COMMIT.
        allowed = self.oracle[acked:min(acked + 2, len(self.oracle))]
        assert state in allowed, (
            f"crash after {acked} acked units recovered to a state "
            f"outside the committed prefix "
            f"({report.committed_txns} committed txns replayed, "
            f"{report.discarded_txn_records} txn records discarded)"
        )

    def test_crash_at_every_append(self):
        for at in range(self.total_appends):
            device, acked = crash_units(FaultPlan().fail_append(at=at))
            assert device.dead, f"append fault #{at} never fired"
            self.check(device, acked)

    def test_crash_at_every_sync(self):
        for at in range(self.total_syncs):
            device, acked = crash_units(FaultPlan().fail_sync(at=at))
            assert device.dead, f"sync fault #{at} never fired"
            self.check(device, acked)

    def test_no_fault_full_replay(self):
        device, acked = crash_units(FaultPlan())
        assert acked == len(txn_script())
        self.check(device, acked)

    def test_mid_txn_crash_discards_whole_group(self):
        """A fault landing inside a commit group (after TXN_BEGIN, before
        the commit sync) must discard the *whole* group on recovery."""
        # The first explicit txn's TXN_BEGIN is the first append of a
        # commit group; crashing on its second op record leaves a durable
        # prefix of the group without its commit frame.
        device, acked = crash_units(FaultPlan().fail_append(at=2))
        survivor = MemoryWALDevice.from_durable(
            device.durable(), base_lsn=device.base_lsn
        )
        recovered, report = Database.recover(None, survivor)
        state = tuple(sorted(table_rows(recovered).items()))
        assert state == self.oracle[acked]
        assert report.committed_txns == 0
